//! Sample-preparation benchmark: cold tensorization vs. the persistent
//! CRC-guarded sample store, plus the pipelined prefetch path.
//!
//! ```text
//! cargo run --release -p amdgcnn-bench --bin sample_bench
//! ```
//!
//! Enclosing-subgraph preparation (k-hop extraction, DRNL labeling,
//! tensorization) is a pure function of the dataset and feature config,
//! yet every run, tuning trial, and resume used to pay it again. The
//! sample store ([`am_dgcnn::SampleStore`]) materializes that work once
//! into a checksummed `AMSS` file; a warm run replays it with a single
//! footer-CRC sweep plus linear decode — no k-hop walk, no sort.
//!
//! The benchmark measures, on the paper's WN18-like default graph:
//! 1. cold serial preparation of a fixed link batch,
//! 2. the same batch through the bounded prefetch pipeline,
//! 3. store flush cost and file size,
//! 4. warm-store open + decode of every sample, asserted field-for-field
//!    bit-identical to the cold batch,
//! 5. an experiment-level cold-vs-warm session build with prep-amortized
//!    epoch times, asserted bit-identical on evaluation metrics, with
//!    store hit/miss counters proving the warm run prepared nothing.
//!
//! Gates on the warm store beating cold preparation by >=3x and writes
//! the snapshot to `BENCH_pr10.json` (or `AMDGCNN_SAMPLE_BENCH_OUT`).
//! The pipeline's timing report (`pipeline/*` spans and counters) goes to
//! `AMDGCNN_TIMING_OUT` when set.

use am_dgcnn::{
    prepare_batch, prepare_batch_pipelined, Experiment, FeatureConfig, GnnKind, Hyperparams,
    PrefetchConfig, PreparedSample, SampleStore, StoreKey,
};
use amdgcnn_bench::obs_report::{timing_out_from_env, write_timing_report};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_obs::Obs;
use std::io::Write;
use std::time::{Duration, Instant};

/// Links prepared in the micro comparison (a training-epoch-sized batch).
const PREP_SAMPLES: usize = 600;
/// Prefetch workers for the pipelined measurement.
const WORKERS: usize = 4;
/// Training subset for the experiment-level comparison.
const TRAIN_SUBSET: usize = 120;
/// Epochs the experiment-level comparison amortizes preparation over.
const EPOCHS: usize = 2;
/// The gate: warm-store preparation must beat cold by this factor.
const GATE: f64 = 3.0;
/// Timing repetitions per phase; the minimum is reported (standard
/// microbenchmark practice — the minimum is the run least disturbed by
/// the scheduler, and both sides get the same treatment).
const REPS: usize = 5;

/// Smallest elapsed time of `REPS` runs of `f` (the last run's output is
/// returned so callers can assert on it).
fn best_of<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed());
        out = Some(v);
    }
    (best, out.expect("REPS >= 1"))
}

fn samples_equal(a: &PreparedSample, b: &PreparedSample) -> bool {
    a.features == b.features
        && a.label == b.label
        && a.num_nodes == b.num_nodes
        && a.num_edges == b.num_edges
        && a.edges == b.edges
        && a.drnl == b.drnl
        && a.graph.csr().src_ids() == b.graph.csr().src_ids()
        && a.graph.csr().dst_ids() == b.graph.csr().dst_ids()
        && a.graph.relations() == b.graph.relations()
        && a.graph.edge_attrs().map(|m| m.data()) == b.graph.edge_attrs().map(|m| m.data())
}

fn main() {
    am_dgcnn::runtime::tune_allocator_for_batching();
    let ds = wn18_like(&Wn18Config::default());
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    println!(
        "dataset: {} — {} nodes, {} edges, feature dim {}",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        fcfg.dim()
    );
    let links = &ds.train[..PREP_SAMPLES];
    let scratch = std::env::temp_dir().join(format!("amdgcnn-samplebench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    // 1. Cold serial preparation — the baseline every run used to pay.
    let (cold_prep, cold_samples) = best_of(|| prepare_batch(&ds, links, &fcfg));
    println!("\ncold serial prep   : {cold_prep:>9.2?} ({PREP_SAMPLES} samples, best of {REPS})");

    // 2. Persist the batch.
    let store_path = scratch.join("samples.amss");
    let key = StoreKey::for_dataset(&ds, &fcfg, 0);
    let mut store = SampleStore::open(&store_path, key).expect("open fresh store");
    for (l, s) in links.iter().zip(&cold_samples) {
        store.insert(l, s);
    }
    let t = Instant::now();
    store.flush(None).expect("flush");
    let flush = t.elapsed();
    let file_bytes = std::fs::metadata(&store_path).expect("store file").len();
    drop(store);
    println!("store flush        : {flush:>9.2?} ({file_bytes} bytes on disk)");

    // 3. Warm path: one footer-CRC sweep, then linear decode of every
    // record — asserted bit-identical to the cold batch.
    let (warm_open, warm_store) = best_of(|| SampleStore::open(&store_path, key).expect("open"));
    assert_eq!(warm_store.len(), PREP_SAMPLES);
    assert!(warm_store.damage().is_empty(), "clean file must scan clean");
    let (warm_decode, decoded) = best_of(|| {
        links
            .iter()
            .map(|l| warm_store.get(&ds, l).expect("warm hit"))
            .collect::<Vec<_>>()
    });
    let warm_prep = warm_open + warm_decode;
    for (c, d) in cold_samples.iter().zip(&decoded) {
        assert!(
            samples_equal(c, d),
            "decoded sample differs from cold preparation"
        );
    }
    let speedup = cold_prep.as_secs_f64() / warm_prep.as_secs_f64().max(1e-12);
    println!(
        "warm store prep    : {warm_prep:>9.2?} (open {warm_open:.2?} + decode {warm_decode:.2?}) \
         — {speedup:.2}x vs cold"
    );
    drop(decoded);
    drop(cold_samples);
    drop(warm_store);

    // 4. The bounded prefetch pipeline (bit-identical by the determinism
    // harness; here we just time it — on a single hardware thread it
    // tracks the serial path, on real machines it overlaps producers).
    let (pipelined_prep, pipelined) = best_of(|| {
        prepare_batch_pipelined(
            &ds,
            links,
            &fcfg,
            &Obs::disabled(),
            PrefetchConfig {
                workers: WORKERS,
                capacity: 8,
            },
            None,
            None,
        )
    });
    assert_eq!(pipelined.len(), PREP_SAMPLES);
    drop(pipelined);
    println!("pipelined prep     : {pipelined_prep:>9.2?} ({WORKERS} workers)");

    // 5. Experiment-level: cold session build (prepares and persists every
    // train + eval sample) vs. warm session build (hits the store for all
    // of them), both trained for EPOCHS and compared on metrics.
    let exp_path = scratch.join("experiment.amss");
    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 8,
        sort_k: 10,
    };
    let build = |obs: Obs| {
        Experiment::builder()
            .gnn(GnnKind::am_dgcnn())
            .hyper(hyper)
            .seed(17)
            .sample_store(&exp_path)
            .prefetch(2)
            .observe(obs)
            .build()
    };
    let total_samples = (TRAIN_SUBSET + ds.test.len()) as u64;

    let cold_obs = Obs::enabled();
    let exp = build(cold_obs.clone());
    let t = Instant::now();
    let session = exp.session(&ds, Some(TRAIN_SUBSET)).expect("cold session");
    let cold_build = t.elapsed();
    let t = Instant::now();
    let cold_metrics = exp.run_session(session, &[EPOCHS]).expect("cold run");
    let cold_train = t.elapsed();
    assert_eq!(
        cold_obs.counter("pipeline/prefetch/store_miss").get(),
        total_samples,
        "cold run must prepare every sample"
    );

    let warm_obs = Obs::enabled();
    let exp = build(warm_obs.clone());
    let t = Instant::now();
    let session = exp.session(&ds, Some(TRAIN_SUBSET)).expect("warm session");
    let warm_build = t.elapsed();
    let t = Instant::now();
    let warm_metrics = exp.run_session(session, &[EPOCHS]).expect("warm run");
    let warm_train = t.elapsed();
    let hits = warm_obs.counter("pipeline/prefetch/store_hit").get();
    let misses = warm_obs.counter("pipeline/prefetch/store_miss").get();
    assert_eq!(hits, total_samples, "warm run must hit for every sample");
    assert_eq!(misses, 0, "warm run must prepare nothing");
    assert_eq!(
        cold_metrics, warm_metrics,
        "warm-store training must be bit-identical to the cold run"
    );

    let amortized = |build: Duration, train: Duration| (build + train) / EPOCHS as u32;
    let cold_epoch = amortized(cold_build, cold_train);
    let warm_epoch = amortized(warm_build, warm_train);
    println!(
        "\nexperiment cold    : session {cold_build:>9.2?} + {EPOCHS} epochs {cold_train:.2?} \
         ({cold_epoch:.2?}/epoch amortized)"
    );
    println!(
        "experiment warm    : session {warm_build:>9.2?} + {EPOCHS} epochs {warm_train:.2?} \
         ({warm_epoch:.2?}/epoch amortized, {hits} store hits, {misses} misses)"
    );
    println!("warm-store speedup : {speedup:.2}x on preparation (gate >= {GATE:.1}x)");
    let pass = speedup >= GATE;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sample_bench\",\n",
            "  \"prep_samples\": {},\n",
            "  \"prefetch_workers\": {},\n",
            "  \"train_subset\": {},\n",
            "  \"epochs\": {},\n",
            "  \"cold_prep_ns\": {},\n",
            "  \"pipelined_prep_ns\": {},\n",
            "  \"store\": {{ \"flush_ns\": {}, \"file_bytes\": {}, ",
            "\"warm_open_ns\": {}, \"warm_decode_ns\": {} }},\n",
            "  \"experiment\": {{ \"cold_session_ns\": {}, \"warm_session_ns\": {}, ",
            "\"cold_epoch_amortized_ns\": {}, \"warm_epoch_amortized_ns\": {}, ",
            "\"warm_store_hits\": {}, \"warm_store_misses\": {} }},\n",
            "  \"warm_speedup\": {:.3},\n",
            "  \"gate\": {:.1},\n",
            "  \"bit_identical\": true,\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        PREP_SAMPLES,
        WORKERS,
        TRAIN_SUBSET,
        EPOCHS,
        cold_prep.as_nanos(),
        pipelined_prep.as_nanos(),
        flush.as_nanos(),
        file_bytes,
        warm_open.as_nanos(),
        warm_decode.as_nanos(),
        cold_build.as_nanos(),
        warm_build.as_nanos(),
        cold_epoch.as_nanos(),
        warm_epoch.as_nanos(),
        hits,
        misses,
        speedup,
        GATE,
        pass
    );
    let out =
        std::env::var("AMDGCNN_SAMPLE_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr10.json".into());
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");

    if let Some(path) = timing_out_from_env() {
        let report = warm_obs.report();
        write_timing_report(&path, &report).expect("write sample timing report");
        println!("wrote sample timing report to {}", path.display());
    }
    std::fs::remove_dir_all(&scratch).ok();

    assert!(
        pass,
        "warm sample store must beat cold preparation by >={GATE:.1}x (got {speedup:.2}x)"
    );
}
