//! Fleet-serving benchmark: a consistent-hash fleet of replicas vs. one
//! [`BatchServer`], under concurrent simulated clients.
//!
//! ```text
//! cargo run --release -p amdgcnn-bench --bin fleet_bench
//! ```
//!
//! The workload is the deployment shape the fleet tier exists for: the
//! distinct-key working set is larger than one replica's subgraph cache.
//! A single server thrashes its LRU on every pass; consistent hashing
//! gives each fleet replica a stable key shard that *does* fit its cache,
//! so the fleet's aggregate cache absorbs the working set with zero
//! coordination. Both paths serve the same per-replica resources
//! (identical cache capacity and batch policy) — the fleet simply has N
//! replicas of them.
//!
//! Reports sustained qps and latency quantiles for both paths, asserts
//! the fleet's answers are bit-identical to a clean single engine's,
//! gates on >=2x sustained qps at no worse p99, and writes the snapshot
//! to `BENCH_pr7.json` (or `AMDGCNN_FLEET_BENCH_OUT`). The fleet's obs
//! timing report (fleet/* spans and counters) goes to
//! `AMDGCNN_TIMING_OUT` when set.

use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_bench::obs_report::{timing_out_from_env, write_timing_report};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_obs::Obs;
use amdgcnn_serve::{
    save_model, ArtifactMeta, BatchConfig, BatchServer, Fleet, FleetConfig, InferenceEngine,
    LinkQuery,
};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet replicas (and the cache-capacity multiple the fleet enjoys).
const REPLICAS: usize = 4;
/// Distinct link pairs in the workload — chosen to overflow one replica's
/// cache but fit comfortably in `REPLICAS` shards.
const DISTINCT_PAIRS: usize = 360;
/// Per-replica (and single-server) subgraph cache capacity.
const CACHE_CAPACITY: usize = 180;
/// Concurrent simulated clients per path.
const CLIENTS: usize = 8;
/// Timed passes over the distinct pairs (after one untimed warmup pass).
const PASSES: usize = 4;

struct PathResult {
    elapsed: Duration,
    qps: f64,
    p50: Duration,
    p99: Duration,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drive `CLIENTS` threads over interleaved slices of `workload` for
/// `PASSES` passes, timing each query. `query` is the per-path call.
fn drive<F>(workload: &[LinkQuery], query: F) -> PathResult
where
    F: Fn(LinkQuery) -> Vec<f32> + Send + Sync,
{
    let query = &query;
    let started = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    for _ in 0..PASSES {
                        for q in workload.iter().skip(c).step_by(CLIENTS) {
                            let t = Instant::now();
                            let probs = query(*q);
                            lats.push(t.elapsed());
                            assert!(!probs.is_empty());
                        }
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    let total = latencies.len();
    latencies.sort_unstable();
    PathResult {
        elapsed,
        qps: total as f64 / elapsed.as_secs_f64(),
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
    }
}

fn main() {
    am_dgcnn::runtime::tune_allocator_for_batching();
    let ds = wn18_like(&Wn18Config::default());
    println!(
        "dataset: {} — {} nodes, {} edges, {} link classes",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );

    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 16,
        sort_k: 20,
    };
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(17)
        .build();
    let mut session = exp.session(&ds, Some(200)).expect("session");
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 2)
        .expect("train");
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 2).expect("meta");
    let mut artifact = Vec::new();
    save_model(&meta, &session.ps, &mut artifact).expect("save");
    println!("artifact: {} bytes", artifact.len());

    let workload: Vec<LinkQuery> = ds
        .test
        .iter()
        .take(DISTINCT_PAIRS)
        .map(|l| (l.u, l.v))
        .collect();
    assert_eq!(workload.len(), DISTINCT_PAIRS, "dataset too small");
    println!(
        "workload: {DISTINCT_PAIRS} distinct pairs x {PASSES} passes x {CLIENTS} clients, \
         per-server cache {CACHE_CAPACITY}\n"
    );

    // Ground truth: a clean uncached engine, one query at a time.
    let reference = InferenceEngine::load(artifact.as_slice(), ds.clone(), 0).expect("engine");
    let expected: Vec<Vec<f32>> = workload.iter().map(|&q| reference.predict_one(q)).collect();

    let batch = BatchConfig {
        max_batch: 32,
        max_wait: Duration::from_micros(200),
    };

    // Path A: one micro-batched server whose cache the working set
    // overflows.
    let engine =
        InferenceEngine::load(artifact.as_slice(), ds.clone(), CACHE_CAPACITY).expect("engine");
    let server = Arc::new(BatchServer::start(engine, batch));
    {
        let server = Arc::clone(&server);
        drive(&workload, move |q| {
            server
                .submit(q)
                .expect("admitted")
                .wait()
                .expect("answered")
        }); // warmup (the thrashing cache makes this nearly moot, which is the point)
    }
    let single = {
        let server = Arc::clone(&server);
        drive(&workload, move |q| {
            server
                .submit(q)
                .expect("admitted")
                .wait()
                .expect("answered")
        })
    };
    println!(
        "single server : {} queries in {:.2?}  ({:.0} qps, p50 {:.2?}, p99 {:.2?})",
        DISTINCT_PAIRS * PASSES,
        single.elapsed,
        single.qps,
        single.p50,
        single.p99
    );
    let single_stats = server.stats();
    println!("                {single_stats}");
    server.begin_shutdown();
    drop(server);

    // Path B: the fleet — same batch policy and per-replica cache, with
    // consistent hashing sharding the working set across replicas.
    let obs = Obs::enabled();
    let fleet = Arc::new(
        Fleet::start_with(
            artifact.clone(),
            ds.clone(),
            FleetConfig {
                replicas: REPLICAS,
                cache_capacity: CACHE_CAPACITY,
                batch,
                hedge_after: Duration::from_millis(50),
                ..FleetConfig::default()
            },
            obs.clone(),
            Vec::new(),
        )
        .expect("fleet"),
    );
    // Bit-identity check doubles as cache warmup.
    for (i, &q) in workload.iter().enumerate() {
        let probs = fleet.query(q).expect("fleet answers");
        assert_eq!(
            probs, expected[i],
            "fleet answer for {q:?} diverged from the single-engine reference"
        );
    }
    let fleet_res = {
        let fleet = Arc::clone(&fleet);
        drive(&workload, move |q| fleet.query(q).expect("fleet answers"))
    };
    println!(
        "fleet ({REPLICAS} rep) : {} queries in {:.2?}  ({:.0} qps, p50 {:.2?}, p99 {:.2?})",
        DISTINCT_PAIRS * PASSES,
        fleet_res.elapsed,
        fleet_res.qps,
        fleet_res.p50,
        fleet_res.p99
    );
    let fleet_stats = fleet.stats();
    println!("                {fleet_stats}");

    let speedup = fleet_res.qps / single.qps;
    let p99_ratio = fleet_res.p99.as_secs_f64() / single.p99.as_secs_f64().max(1e-12);
    println!("\nspeedup       : {speedup:.2}x sustained qps");
    println!("p99 ratio     : {p99_ratio:.2} (fleet/single, <=1 is better)");
    let pass = speedup >= 2.0 && p99_ratio <= 1.10;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_bench\",\n",
            "  \"replicas\": {},\n",
            "  \"distinct_pairs\": {},\n",
            "  \"cache_capacity\": {},\n",
            "  \"clients\": {},\n",
            "  \"passes\": {},\n",
            "  \"single\": {{ \"qps\": {:.1}, \"elapsed_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"fleet\": {{ \"qps\": {:.1}, \"elapsed_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, ",
            "\"failovers\": {}, \"hedges\": {}, \"hedge_wins\": {} }},\n",
            "  \"speedup\": {:.3},\n",
            "  \"p99_ratio\": {:.3},\n",
            "  \"bit_identical\": true,\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        REPLICAS,
        DISTINCT_PAIRS,
        CACHE_CAPACITY,
        CLIENTS,
        PASSES,
        single.qps,
        single.elapsed.as_nanos(),
        single.p50.as_nanos(),
        single.p99.as_nanos(),
        fleet_res.qps,
        fleet_res.elapsed.as_nanos(),
        fleet_res.p50.as_nanos(),
        fleet_res.p99.as_nanos(),
        fleet_stats.failovers,
        fleet_stats.hedges,
        fleet_stats.hedge_wins,
        speedup,
        p99_ratio,
        pass
    );
    let out = std::env::var("AMDGCNN_FLEET_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr7.json".into());
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");

    if let Some(path) = timing_out_from_env() {
        let report = obs.report();
        write_timing_report(&path, &report).expect("write fleet timing report");
        println!("wrote fleet timing report to {}", path.display());
    }

    fleet.shutdown();
    assert!(
        pass,
        "fleet must sustain >=2x single-server qps at no worse p99 \
         (got {speedup:.2}x, p99 ratio {p99_ratio:.2})"
    );
}
