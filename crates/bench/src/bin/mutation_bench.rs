//! Live-mutation benchmark: incremental k-hop cache invalidation vs. a
//! full cache flush, across a sequence of graph-generation rolls.
//!
//! ```text
//! cargo run --release -p amdgcnn-bench --bin mutation_bench
//! ```
//!
//! The workload is the dynamic-graph deployment shape: a warm serving
//! cache over a large graph, hit by a stream of small edge mutations.
//! Each committed batch touches a handful of endpoints whose 2-hop
//! region covers a few percent of the graph — so almost every cached
//! enclosing subgraph is provably unaffected. The incremental path
//! carries those survivors across the generation roll
//! ([`InferenceEngine::migrate_cache_from`]) and recomputes only the
//! invalidated entries; the flush path starts every generation cold and
//! re-extracts everything, which is what a cache without the k-hop
//! invalidation rule would be forced to do.
//!
//! Both paths answer every query on every generation; a per-round
//! bit-identity assertion proves the survivors were safe to keep. The
//! WAL is replayed at the end and its digest checked against the live
//! graph. Reports per-round serve times, the invalidated/migrated
//! split, gates on the incremental path beating the flush path by >=1.5x
//! total serve time, and writes the snapshot to `BENCH_pr8.json` (or
//! `AMDGCNN_MUTATION_BENCH_OUT`). The graph store's timing report
//! (graph/* spans and counters) goes to `AMDGCNN_TIMING_OUT` when set.

use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_bench::obs_report::{timing_out_from_env, write_timing_report};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_graph::{GraphMutation, MutableGraph};
use amdgcnn_serve::{save_model, ArtifactMeta, GraphStore, InferenceEngine, LinkQuery};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::io::Write;
use std::time::{Duration, Instant};

/// Committed mutation batches (generation rolls) in the run.
const ROUNDS: usize = 8;
/// Edge appends per committed batch.
const OPS_PER_BATCH: u32 = 2;
/// Distinct link pairs served on every generation.
const WORKLOAD: usize = 300;
/// Subgraph-cache capacity — comfortably holds the workload, so the
/// flush path's cost is pure re-extraction, not LRU thrash.
const CACHE_CAPACITY: usize = 512;

fn main() {
    am_dgcnn::runtime::tune_allocator_for_batching();
    let ds = wn18_like(&Wn18Config::default());
    println!(
        "dataset: {} — {} nodes, {} edges, extraction radius {} hops",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.subgraph.hops
    );

    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 16,
        sort_k: 20,
    };
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(17)
        .build();
    let mut session = exp.session(&ds, Some(120)).expect("session");
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 1)
        .expect("train");
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 1).expect("meta");
    let mut artifact = Vec::new();
    save_model(&meta, &session.ps, &mut artifact).expect("save");
    println!("artifact: {} bytes", artifact.len());

    let workload: Vec<LinkQuery> = ds.test.iter().take(WORKLOAD).map(|l| (l.u, l.v)).collect();
    assert_eq!(workload.len(), WORKLOAD, "dataset too small");
    println!(
        "workload: {WORKLOAD} pairs x {ROUNDS} generation rolls, \
         {OPS_PER_BATCH} edge appends per roll, cache {CACHE_CAPACITY}\n"
    );

    let wal_path =
        std::env::temp_dir().join(format!("amdgcnn-mutbench-{}.wal", std::process::id()));
    let store = GraphStore::create(ds.clone(), &wal_path).expect("graph store");

    // Warm the incremental path's cache on generation 0. The flush path
    // by definition starts cold every round, so it gets no warm start.
    let mut inc = InferenceEngine::load(artifact.as_slice(), ds.clone(), CACHE_CAPACITY)
        .expect("engine")
        .with_graph_generation(0);
    for &q in &workload {
        inc.predict_one(q);
    }

    let num_nodes = ds.graph.num_nodes() as u32;
    let mut rng = StdRng::seed_from_u64(0xbe4c_0008);
    let mut inc_serve = Duration::ZERO;
    let mut flush_serve = Duration::ZERO;
    let mut total_invalidated = 0usize;
    let mut total_migrated = 0usize;

    for round in 0..ROUNDS {
        let batch: Vec<GraphMutation> = (0..OPS_PER_BATCH)
            .map(|_| GraphMutation::AddEdge {
                u: rng.random_range(0..num_nodes),
                v: rng.random_range(0..num_nodes),
                etype: rng.random_range(0u16..4),
            })
            .collect();
        let commit = store.apply(&batch, None).expect("valid batch commits");

        // Incremental: build on the new generation, carry survivors
        // across, recompute only what the region invalidated.
        let t = Instant::now();
        let next = InferenceEngine::load(
            artifact.as_slice(),
            (*commit.dataset).clone(),
            CACHE_CAPACITY,
        )
        .expect("engine")
        .with_graph_generation(commit.generation);
        let (invalidated, migrated) = next.migrate_cache_from(&inc, &commit.region);
        let inc_answers: Vec<Vec<f32>> = workload.iter().map(|&q| next.predict_one(q)).collect();
        let inc_elapsed = t.elapsed();
        inc = next;

        // Flush: same generation, cold cache — every entry re-extracted.
        let t = Instant::now();
        let cold = InferenceEngine::load(
            artifact.as_slice(),
            (*commit.dataset).clone(),
            CACHE_CAPACITY,
        )
        .expect("engine")
        .with_graph_generation(commit.generation);
        let flush_answers: Vec<Vec<f32>> = workload.iter().map(|&q| cold.predict_one(q)).collect();
        let flush_elapsed = t.elapsed();

        assert_eq!(
            inc_answers, flush_answers,
            "round {round}: migrated survivors must answer bit-identically \
             to a cold engine on the same generation"
        );
        inc_serve += inc_elapsed;
        flush_serve += flush_elapsed;
        total_invalidated += invalidated;
        total_migrated += migrated;
        println!(
            "gen {:>2}: region {:>4} nodes | incremental {:>9.2?} ({invalidated:>3} dropped, \
             {migrated:>3} kept) | flush {:>9.2?}",
            commit.generation,
            commit.region.len(),
            inc_elapsed,
            flush_elapsed
        );
    }

    // Durability sanity: the WAL replays to the live graph's digest.
    let recovery = amdgcnn_graph::mutable::replay_log(&wal_path).expect("replay log");
    assert_eq!(recovery.batches.len(), ROUNDS);
    assert_eq!(recovery.dropped_bytes, 0);
    let rebuilt = MutableGraph::replay(ds.graph.clone(), &recovery.batches).expect("replay");
    assert_eq!(rebuilt.digest(), store.digest(), "WAL replay digest");
    let _ = std::fs::remove_file(&wal_path);

    let speedup = flush_serve.as_secs_f64() / inc_serve.as_secs_f64().max(1e-12);
    let kept_frac = total_migrated as f64 / (total_migrated + total_invalidated).max(1) as f64;
    println!(
        "\nincremental   : {inc_serve:.2?} total serve across {ROUNDS} rolls \
         ({total_invalidated} entries recomputed, {total_migrated} carried, \
         {:.1}% kept)",
        kept_frac * 100.0
    );
    println!("full flush    : {flush_serve:.2?} total serve across {ROUNDS} rolls");
    println!("speedup       : {speedup:.2}x (incremental over flush)");
    let pass = speedup >= 1.5 && total_migrated > 0;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"mutation_bench\",\n",
            "  \"rounds\": {},\n",
            "  \"ops_per_batch\": {},\n",
            "  \"workload\": {},\n",
            "  \"cache_capacity\": {},\n",
            "  \"incremental\": {{ \"serve_ns\": {}, \"invalidated\": {}, \"migrated\": {} }},\n",
            "  \"flush\": {{ \"serve_ns\": {} }},\n",
            "  \"kept_fraction\": {:.4},\n",
            "  \"speedup\": {:.3},\n",
            "  \"replay_digest_matches\": true,\n",
            "  \"bit_identical\": true,\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        ROUNDS,
        OPS_PER_BATCH,
        WORKLOAD,
        CACHE_CAPACITY,
        inc_serve.as_nanos(),
        total_invalidated,
        total_migrated,
        flush_serve.as_nanos(),
        kept_frac,
        speedup,
        pass
    );
    let out =
        std::env::var("AMDGCNN_MUTATION_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr8.json".into());
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("wrote {out}");

    if let Some(path) = timing_out_from_env() {
        let report = store.obs().report();
        write_timing_report(&path, &report).expect("write mutation timing report");
        println!("wrote mutation timing report to {}", path.display());
    }

    assert!(
        pass,
        "incremental invalidation must beat a full cache flush by >=1.5x \
         total serve time (got {speedup:.2}x, {total_migrated} migrated)"
    );
}
