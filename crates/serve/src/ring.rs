//! Consistent-hash ring routing `(src, dst)` link queries to replicas.
//!
//! Each replica owns [`HashRing::vnodes_per_replica`] *virtual nodes*:
//! pseudo-random points on a `u64` circle. A query key hashes to a point
//! and is owned by the first virtual node clockwise from it. Virtual nodes
//! smooth the load (one physical replica's share is the union of many
//! small arcs, not one big one) and give consistent hashing its defining
//! property: adding or removing a replica only remaps the keys that land
//! on that replica's arcs — every other key keeps its owner. Both
//! properties are proptested in `tests/ring_props.rs`.
//!
//! The ring is routing policy only: it never learns about replica health.
//! The fleet walks [`HashRing::route_order`] — the full failover sequence
//! for a key — and skips replicas it knows to be down, so a crashed
//! replica's keys spill to their ring successors and spring back the
//! moment the replica is respawned, with no rehashing in either direction.

use std::collections::BTreeMap;

/// FNV-1a, the 64-bit offset-basis/prime pair. A keyed hash is not needed
/// here (queries are internal node-id pairs, not attacker-controlled
/// strings); what matters is determinism across processes and a uniform
/// spread, both of which FNV-1a provides without any dependency.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Ring position of one virtual node of `replica`.
fn vnode_point(replica: usize, vnode: usize) -> u64 {
    let mut bytes = [0u8; 17];
    bytes[0] = 0x52; // 'R': domain-separate vnode points from query keys
    bytes[1..9].copy_from_slice(&(replica as u64).to_le_bytes());
    bytes[9..17].copy_from_slice(&(vnode as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// Ring position of a `(src, dst)` query key.
pub fn key_point(src: u32, dst: u32) -> u64 {
    let mut bytes = [0u8; 9];
    bytes[0] = 0x51; // 'Q'
    bytes[1..5].copy_from_slice(&src.to_le_bytes());
    bytes[5..9].copy_from_slice(&dst.to_le_bytes());
    fnv1a(&bytes)
}

/// A consistent-hash ring over replica indices `0..n`.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual-node point → owning replica. BTreeMap gives the clockwise
    /// successor lookup (`range(point..)`) directly.
    points: BTreeMap<u64, usize>,
    vnodes: usize,
    replicas: usize,
}

impl HashRing {
    /// Default virtual nodes per replica: enough that with a handful of
    /// replicas the largest share stays within a small factor of fair (see
    /// the balance proptest), cheap enough that ring construction is
    /// negligible next to replica startup.
    pub const DEFAULT_VNODES: usize = 128;

    /// Ring over `replicas` replicas with [`Self::DEFAULT_VNODES`] virtual
    /// nodes each.
    pub fn new(replicas: usize) -> Self {
        Self::with_vnodes(replicas, Self::DEFAULT_VNODES)
    }

    /// Ring with an explicit virtual-node count (tests dial it down to
    /// exercise imbalance, up to tighten it).
    pub fn with_vnodes(replicas: usize, vnodes: usize) -> Self {
        assert!(replicas > 0, "a ring needs at least one replica");
        assert!(vnodes > 0, "each replica needs at least one virtual node");
        let mut ring = Self {
            points: BTreeMap::new(),
            vnodes,
            replicas: 0,
        };
        for r in 0..replicas {
            ring.add_replica(r);
        }
        ring
    }

    /// Number of physical replicas currently on the ring.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Virtual nodes per replica.
    pub fn vnodes_per_replica(&self) -> usize {
        self.vnodes
    }

    /// Place `replica`'s virtual nodes on the ring (idempotent: re-adding
    /// re-inserts the same deterministic points).
    pub fn add_replica(&mut self, replica: usize) {
        let mut added = false;
        for v in 0..self.vnodes {
            // On the astronomically unlikely event two vnodes collide on a
            // point, first writer keeps it; the loser just has one fewer
            // arc, which the balance bound absorbs.
            added |= *self
                .points
                .entry(vnode_point(replica, v))
                .or_insert(replica)
                == replica;
        }
        if added {
            self.replicas += 1;
        }
    }

    /// Remove `replica`'s virtual nodes. Keys owned by other replicas are
    /// untouched — the minimal-remap property under proptest.
    pub fn remove_replica(&mut self, replica: usize) {
        let before = self.points.len();
        self.points.retain(|_, r| *r != replica);
        if self.points.len() != before {
            self.replicas -= 1;
        }
        assert!(
            !self.points.is_empty(),
            "removing the last replica leaves the ring unroutable"
        );
    }

    /// The replica owning `(src, dst)`: the first virtual node clockwise
    /// from the key's point, wrapping at the top of the `u64` circle.
    pub fn route(&self, src: u32, dst: u32) -> usize {
        let point = key_point(src, dst);
        *self
            .points
            .range(point..)
            .next()
            .or_else(|| self.points.iter().next())
            .expect("ring is never empty")
            .1
    }

    /// Failover order for `(src, dst)`: every replica exactly once, primary
    /// first, then ring successors in clockwise order. The fleet walks this
    /// sequence skipping dead replicas, so the spill target of a down
    /// primary is deterministic for a given key.
    pub fn route_order(&self, src: u32, dst: u32) -> Vec<usize> {
        let point = key_point(src, dst);
        let mut order = Vec::with_capacity(self.replicas);
        let mut seen = vec![false; self.points.values().copied().max().unwrap_or(0) + 1];
        for (_, &r) in self.points.range(point..).chain(self.points.iter()) {
            if !seen[r] {
                seen[r] = true;
                order.push(r);
                if order.len() == self.replicas {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_deterministic_and_in_range() {
        let ring = HashRing::new(4);
        for k in 0..200u32 {
            let r = ring.route(k, k.wrapping_mul(7));
            assert!(r < 4);
            assert_eq!(r, ring.route(k, k.wrapping_mul(7)));
        }
    }

    #[test]
    fn route_order_is_a_permutation_starting_at_primary() {
        let ring = HashRing::new(5);
        for k in 0..50u32 {
            let order = ring.route_order(k, k + 1);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order[0], ring.route(k, k + 1));
        }
    }

    #[test]
    fn single_replica_owns_everything() {
        let ring = HashRing::new(1);
        for k in 0..64u32 {
            assert_eq!(ring.route(k, 1000 - k), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_ring_is_rejected() {
        let _ = HashRing::new(0);
    }
}
