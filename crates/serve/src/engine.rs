//! The inference engine: a loaded model plus the dataset graph, answering
//! `(u, v)` link queries by extracting the enclosing subgraph on the fly —
//! exactly the training-time [`prepare_sample`] path — with an LRU cache of
//! prepared subgraphs (and their memoized, deterministic answers) in front
//! of the extractor.

use crate::artifact::{instantiate, load_model, ArtifactMeta};
use crate::stats::{ServerStats, StatsCollector};
use am_dgcnn::fault::{EngineFault, FaultInjector, TransientFault};
use am_dgcnn::{prepare_sample, DgcnnModel, FeatureConfig, LinkModel, PreparedSample};
use amdgcnn_data::{Dataset, LabeledLink};
use amdgcnn_graph::AffectedRegion;
use amdgcnn_tensor::{ParamStore, Tape};
use rayon::prelude::*;
use std::collections::HashMap;
use std::io::{self, Read};
use std::sync::{Arc, Mutex, OnceLock};

/// A link query: classify the relation between two node ids of the served
/// graph.
pub type LinkQuery = (u32, u32);

/// Class-probability answer for one query (`num_classes` entries, sums
/// to 1).
pub type ClassProbs = Vec<f32>;

/// One cached unit of serving work: the prepared subgraph, plus the
/// forward-pass answer once some batch has computed it.
///
/// The engine's parameters are immutable and the forward pass is
/// deterministic, so a pair's probabilities never change for the lifetime
/// of the engine — memoizing them next to the subgraph is sound and lets a
/// repeat query skip the forward pass entirely, not just the extraction.
struct CacheEntry {
    sample: PreparedSample,
    probs: OnceLock<ClassProbs>,
}

/// One cached slot: the entry, its LRU stamp, and the graph generation it
/// was extracted on. The generation tag is what makes live graph mutation
/// safe: an entry whose generation predates the engine's is *stale* and
/// must never be served.
struct CacheSlot {
    entry: Arc<CacheEntry>,
    stamp: u64,
    generation: u64,
}

/// Bounded map from query to [`CacheEntry`], evicting the
/// least-recently-used entry when full.
///
/// Subgraph extraction + DRNL + feature building + the forward pass make
/// up essentially all of single-query latency, so re-serving a recently
/// seen pair from this cache is the main throughput lever on repeat-heavy
/// workloads.
struct LruCache {
    capacity: usize,
    map: HashMap<LinkQuery, CacheSlot>,
    clock: u64,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1024)),
            clock: 0,
        }
    }

    fn get(&mut self, key: &LinkQuery) -> Option<(Arc<CacheEntry>, u64)> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|slot| {
            slot.stamp = clock;
            (Arc::clone(&slot.entry), slot.generation)
        })
    }

    fn insert(&mut self, key: LinkQuery, value: Arc<CacheEntry>, generation: u64) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(n) victim scan: capacities are small (hundreds), and this
            // only runs on misses that already paid a full extraction.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            CacheSlot {
                entry: value,
                stamp: self.clock,
                generation,
            },
        );
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A loaded model bound to the graph it serves.
///
/// The engine is immutable once constructed (the cache and counters use
/// interior mutability), so it can be shared behind an `Arc` between a
/// request thread and the batching worker.
pub struct InferenceEngine {
    meta: ArtifactMeta,
    model: DgcnnModel,
    ps: ParamStore,
    ds: Dataset,
    fcfg: FeatureConfig,
    cache: Mutex<LruCache>,
    injector: Option<Arc<FaultInjector>>,
    /// Graph generation this engine's dataset snapshot belongs to. Cache
    /// entries carry the generation they were extracted on; a hit from an
    /// older generation is stale and is recomputed, never served.
    generation: u64,
    pub(crate) stats: StatsCollector,
}

impl InferenceEngine {
    /// Bind a loaded artifact to the dataset graph it will serve.
    ///
    /// # Errors
    /// `InvalidData` when the artifact was trained on a different dataset
    /// (by name) or its class count disagrees with the graph's.
    pub fn new(
        meta: ArtifactMeta,
        loaded: &ParamStore,
        ds: Dataset,
        cache_capacity: usize,
    ) -> io::Result<Self> {
        if meta.dataset != ds.name {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "artifact was trained on dataset {:?} but the engine was \
                     given {:?}",
                    meta.dataset, ds.name
                ),
            ));
        }
        if meta.model.num_classes != ds.num_classes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "artifact predicts {} classes but the dataset defines {}",
                    meta.model.num_classes, ds.num_classes
                ),
            ));
        }
        let (model, ps) = instantiate(&meta, loaded)?;
        let fcfg = meta.features.to_config();
        Ok(Self {
            meta,
            model,
            ps,
            ds,
            fcfg,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            injector: None,
            generation: 0,
            stats: StatsCollector::default(),
        })
    }

    /// Tag this engine with the graph generation its dataset snapshot was
    /// built on (0 for a static graph). Call right after construction,
    /// before any queries.
    pub fn with_graph_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The graph generation this engine serves.
    pub fn graph_generation(&self) -> u64 {
        self.generation
    }

    /// Adopt the surviving cache entries of `old` (an engine serving an
    /// earlier graph generation): entries whose query endpoints fall inside
    /// `region` are dropped — the mutation may have changed their enclosing
    /// subgraphs — and the rest are migrated to this engine's generation,
    /// prepared subgraphs and memoized answers intact. Sound because an
    /// unaffected query's extraction inputs are identical on both
    /// snapshots, so its prepared sample and probabilities are
    /// bit-identical too. Returns `(invalidated, migrated)`.
    pub fn migrate_cache_from(
        &self,
        old: &InferenceEngine,
        region: &AffectedRegion,
    ) -> (usize, usize) {
        let old_cache = lock_cache(&old.cache);
        let mut cache = lock_cache(&self.cache);
        let (mut invalidated, mut migrated) = (0usize, 0usize);
        for (key, slot) in old_cache.map.iter() {
            if region.affects(key.0, key.1) {
                invalidated += 1;
            } else {
                cache.insert(*key, Arc::clone(&slot.entry), self.generation);
                migrated += 1;
            }
        }
        drop(cache);
        drop(old_cache);
        self.stats.record_cache_invalidated(invalidated as u64);
        self.stats.record_cache_migrated(migrated as u64);
        (invalidated, migrated)
    }

    /// Attach an observability registry: the engine's `serve/*` counters
    /// and span timers register there, so one report covers serving
    /// alongside any pipeline stages sharing the handle. Call right after
    /// construction, before any queries. A disabled handle is upgraded to
    /// a private enabled registry — [`stats`](InferenceEngine::stats) must
    /// always count.
    pub fn with_obs(mut self, obs: amdgcnn_obs::Obs) -> Self {
        self.stats = StatsCollector::with_obs(obs);
        self
    }

    /// The observability registry behind this engine's counters.
    pub fn obs(&self) -> &amdgcnn_obs::Obs {
        self.stats.obs()
    }

    /// Attach a deterministic fault injector: [`try_predict`] calls will
    /// panic, fail transiently, or run slow on the schedule of the
    /// injector's plan. Direct [`predict`] calls bypass injection.
    ///
    /// [`try_predict`]: InferenceEngine::try_predict
    /// [`predict`]: InferenceEngine::predict
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Read an artifact from `r` and bind it to `ds` in one step.
    pub fn load<R: Read>(r: R, ds: Dataset, cache_capacity: usize) -> io::Result<Self> {
        let (meta, loaded) = load_model(r)?;
        Self::new(meta, &loaded, ds, cache_capacity)
    }

    /// Artifact metadata this engine was built from.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The served dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Current number of cached prepared subgraphs.
    pub fn cache_len(&self) -> usize {
        lock_cache(&self.cache).len()
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Forward pass for a chunk of prepared subgraphs, packed into one
    /// block-diagonal sparse forward ([`LinkModel::forward_batch`]). The
    /// packed kernels are bit-identical per sample to the per-sample path,
    /// so answers still match training-time [`am_dgcnn::predict_probs`]
    /// bit-for-bit regardless of how queries are chunked.
    fn forward_chunk(&self, samples: &[&PreparedSample]) -> Vec<ClassProbs> {
        let mut tape = Tape::new();
        let logits = self.model.forward_batch(&mut tape, &self.ps, samples, None);
        logits
            .into_iter()
            .map(|l| {
                let probs = tape.softmax_rows(l);
                tape.value(probs).row(0).to_vec()
            })
            .collect()
    }

    /// Fallible batch prediction: [`predict`](InferenceEngine::predict)
    /// plus fault injection, the path the batch worker drives.
    ///
    /// Consults the attached [`FaultInjector`] (if any) before doing real
    /// work: a scheduled panic propagates as a panic (the worker's
    /// `catch_unwind` isolates it), a transient fault returns `Err` for the
    /// worker's retry-with-backoff loop, and injected latency sleeps before
    /// answering. Without an injector this never fails.
    ///
    /// # Errors
    /// [`TransientFault`] when the injector schedules a transient failure
    /// for this call.
    pub fn try_predict(&self, queries: &[LinkQuery]) -> Result<Vec<ClassProbs>, TransientFault> {
        if let Some(inj) = &self.injector {
            match inj.next_engine_fault() {
                Some(EngineFault::Panic) => panic!(
                    "injected fault: worker panic at engine call {}",
                    inj.engine_calls()
                ),
                Some(EngineFault::Transient) => {
                    return Err(TransientFault {
                        call: inj.engine_calls(),
                    })
                }
                Some(EngineFault::Latency(d)) => std::thread::sleep(d),
                None => {}
            }
        }
        Ok(self.predict(queries))
    }

    /// Answer a batch of link queries: per-query class probabilities, in
    /// query order.
    ///
    /// Duplicate pairs inside the batch are answered once; cache hits skip
    /// extraction, and hits whose answer was already computed by an earlier
    /// batch skip the forward pass too. Fresh work fans out across the
    /// batch. Answers match [`am_dgcnn::predict_probs`] on the same links
    /// bit-for-bit.
    pub fn predict(&self, queries: &[LinkQuery]) -> Vec<ClassProbs> {
        // Dedup while preserving first-seen order.
        let mut index_of: HashMap<LinkQuery, usize> = HashMap::new();
        let mut unique: Vec<LinkQuery> = Vec::new();
        for &q in queries {
            index_of.entry(q).or_insert_with(|| {
                unique.push(q);
                unique.len() - 1
            });
        }

        // Resolve cache hits under one short lock; extraction happens
        // outside it. A hit tagged with an older graph generation is a
        // *stale* entry that incremental invalidation should have dropped:
        // it is counted (the chaos harness asserts this stays 0) and then
        // discarded, so the answer is always recomputed on the engine's
        // own snapshot — staleness is detected, never served.
        let resolved: Vec<Option<Arc<CacheEntry>>> = {
            let mut cache = lock_cache(&self.cache);
            unique
                .iter()
                .map(|q| match cache.get(q) {
                    Some((entry, gen)) if gen == self.generation => Some(entry),
                    Some(_) => {
                        self.stats.record_stale_serves(1);
                        None
                    }
                    None => None,
                })
                .collect()
        };

        // LRU hits and intra-batch dedup both skip extraction but are
        // counted separately: cache_hit_rate measures the LRU alone, while
        // dedup_hits credits duplicates that never probed the cache.
        let lru_hits = resolved.iter().filter(|r| r.is_some()).count() as u64;
        let fresh = unique.len() as u64 - lru_hits;
        self.stats.record_cache_misses(fresh);
        self.stats.record_cache_hits(lru_hits);
        self.stats
            .record_dedup_hits((queries.len() - unique.len()) as u64);

        // Extract the missing subgraphs in parallel.
        let entries: Vec<Arc<CacheEntry>> = resolved
            .into_par_iter()
            .zip(unique.par_iter())
            .map(|(hit, q)| {
                hit.unwrap_or_else(|| {
                    // The label field is unused at inference; extraction
                    // depends only on the endpoints.
                    let link = LabeledLink {
                        u: q.0,
                        v: q.1,
                        class: 0,
                    };
                    Arc::new(CacheEntry {
                        sample: prepare_sample(&self.ds, &link, &self.fcfg),
                        probs: OnceLock::new(),
                    })
                })
            })
            .collect();
        {
            let mut cache = lock_cache(&self.cache);
            for (q, e) in unique.iter().zip(&entries) {
                cache.insert(*q, Arc::clone(e), self.generation);
            }
        }

        // Forward pass only where no earlier batch has answered already.
        // Chunks of subgraphs are packed block-diagonally and answered by
        // one sparse forward each; chunks fan out across rayon.
        const FORWARD_CHUNK: usize = 32;
        let need: Vec<&Arc<CacheEntry>> =
            entries.iter().filter(|e| e.probs.get().is_none()).collect();
        let chunks: Vec<&[&Arc<CacheEntry>]> = need.chunks(FORWARD_CHUNK).collect();
        let answers: Vec<ClassProbs> = chunks
            .par_iter()
            .map(|chunk| {
                let samples: Vec<&PreparedSample> = chunk.iter().map(|e| &e.sample).collect();
                self.forward_chunk(&samples)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        for (e, probs) in need.into_iter().zip(answers) {
            // A concurrent batch may have raced us to the same entry; both
            // computed identical values, so losing the race is harmless.
            let _ = e.probs.set(probs);
        }

        self.stats.record_queries(queries.len() as u64);
        queries
            .iter()
            .map(|q| {
                entries[index_of[q]]
                    .probs
                    .get()
                    .expect("answer just computed")
                    .clone()
            })
            .collect()
    }

    /// Answer one query (no batching, still cached).
    pub fn predict_one(&self, q: LinkQuery) -> ClassProbs {
        self.predict(std::slice::from_ref(&q))
            .pop()
            .expect("one answer per query")
    }
}

/// Lock the LRU cache, recovering from poisoning: a worker that panicked
/// mid-`predict` (between the probe and insert phases) leaves the cache
/// structurally intact — every entry is either fully inserted or absent —
/// so continuing with the inner value is sound and keeps one crash from
/// wedging every future query.
fn lock_cache(cache: &Mutex<LruCache>) -> std::sync::MutexGuard<'_, LruCache> {
    cache.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        let s = |n: usize| {
            Arc::new(CacheEntry {
                probs: OnceLock::new(),
                sample: PreparedSample {
                    features: amdgcnn_tensor::Matrix::zeros(1, 1),
                    graph: amdgcnn_nn::MessageGraph::from_undirected(1, &[]),
                    label: n,
                    num_nodes: 1,
                    num_edges: 0,
                    edges: Vec::new(),
                    drnl: vec![0],
                },
            })
        };
        lru.insert((0, 1), s(0), 0);
        lru.insert((0, 2), s(1), 0);
        assert!(lru.get(&(0, 1)).is_some()); // freshen (0,1)
        lru.insert((0, 3), s(2), 0); // evicts (0,2)
        assert!(lru.get(&(0, 2)).is_none());
        assert!(lru.get(&(0, 1)).is_some());
        assert!(lru.get(&(0, 3)).is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn cache_slots_carry_their_graph_generation() {
        let mut lru = LruCache::new(4);
        lru.insert(
            (3, 4),
            Arc::new(CacheEntry {
                probs: OnceLock::new(),
                sample: PreparedSample {
                    features: amdgcnn_tensor::Matrix::zeros(1, 1),
                    graph: amdgcnn_nn::MessageGraph::from_undirected(1, &[]),
                    label: 0,
                    num_nodes: 1,
                    num_edges: 0,
                    edges: Vec::new(),
                    drnl: vec![0],
                },
            }),
            7,
        );
        let (_, gen) = lru.get(&(3, 4)).expect("hit");
        assert_eq!(gen, 7, "the generation tag must survive the round trip");
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut lru = LruCache::new(0);
        lru.insert(
            (1, 2),
            Arc::new(CacheEntry {
                probs: OnceLock::new(),
                sample: PreparedSample {
                    features: amdgcnn_tensor::Matrix::zeros(1, 1),
                    graph: amdgcnn_nn::MessageGraph::from_undirected(1, &[]),
                    label: 0,
                    num_nodes: 1,
                    num_edges: 0,
                    edges: Vec::new(),
                    drnl: vec![0],
                },
            }),
            0,
        );
        assert_eq!(lru.len(), 0);
        assert!(lru.get(&(1, 2)).is_none());
    }
}
