//! Micro-batching front-end: queries accumulate in a queue until either
//! `max_batch` of them are waiting or the oldest has waited `max_wait`,
//! then the whole batch runs through the engine at once.
//!
//! Batching amortizes the per-call fixed costs (cache lock, forward-pass
//! setup) and lets subgraph preparation fan out across the batch, while
//! `max_wait` bounds the latency a lone query can be held hostage for.

use crate::engine::{ClassProbs, InferenceEngine, LinkQuery};
use crate::stats::ServerStats;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Execute as soon as this many queries are queued.
    pub max_batch: usize,
    /// Execute a partial batch once its oldest query has waited this long.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
        }
    }
}

struct Request {
    query: LinkQuery,
    reply: mpsc::Sender<ClassProbs>,
    /// When the request entered the queue; the batch deadline is computed
    /// from the oldest of these, so time spent waiting behind a busy worker
    /// counts against `max_wait`.
    enqueued: Instant,
}

#[derive(Default)]
struct Queue {
    requests: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    engine: Arc<InferenceEngine>,
    cfg: BatchConfig,
}

/// Handle on an answer that has been queued but possibly not yet computed.
pub struct PendingQuery {
    rx: mpsc::Receiver<ClassProbs>,
}

impl PendingQuery {
    /// Block until the batch containing this query has executed.
    ///
    /// # Panics
    /// Panics if the server was shut down before answering — possible only
    /// when `shutdown` races a still-pending caller, which the API
    /// discourages by consuming the server.
    pub fn wait(self) -> ClassProbs {
        self.rx.recv().expect("server dropped pending query")
    }
}

/// A running batch server: one worker thread draining the queue through an
/// [`InferenceEngine`].
pub struct BatchServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl BatchServer {
    /// Start the worker thread over `engine`.
    pub fn start(engine: InferenceEngine, cfg: BatchConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            engine: Arc::new(engine),
            cfg,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || worker_loop(&worker_shared));
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueue a link query; the returned handle blocks on [`PendingQuery::wait`].
    pub fn submit(&self, query: LinkQuery) -> PendingQuery {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.requests.push_back(Request {
                query,
                reply: tx,
                enqueued: Instant::now(),
            });
        }
        self.shared.wakeup.notify_one();
        PendingQuery { rx }
    }

    /// Convenience: submit every query, then wait for all answers (in
    /// query order). Queries submitted together land in as few batches as
    /// the policy allows.
    pub fn submit_all(&self, queries: &[LinkQuery]) -> Vec<ClassProbs> {
        let pending: Vec<PendingQuery> = queries.iter().map(|&q| self.submit(q)).collect();
        pending.into_iter().map(PendingQuery::wait).collect()
    }

    /// Counter snapshot (shared with the underlying engine).
    pub fn stats(&self) -> ServerStats {
        self.shared.engine.stats()
    }

    /// The engine being served.
    pub fn engine(&self) -> &InferenceEngine {
        &self.shared.engine
    }

    /// Stop the worker after it drains the queue.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.shared.wakeup.notify_all();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            return; // shutdown with a drained queue
        }
        let started = Instant::now();
        let queries: Vec<LinkQuery> = batch.iter().map(|r| r.query).collect();
        let answers = shared.engine.predict(&queries);
        shared.engine.stats.record_batch(started.elapsed());
        for (req, probs) in batch.into_iter().zip(answers) {
            // A caller that dropped its PendingQuery just discards the
            // answer; that is not a server error.
            let _ = req.reply.send(probs);
        }
    }
}

/// Block until a batch is ready: `max_batch` queued, or `max_wait` elapsed
/// since the oldest queued request was *enqueued* (not since the worker
/// noticed it — a query that waited behind a busy worker gets that time
/// credited), or shutdown (which flushes whatever is queued). Returns empty
/// only on shutdown with an empty queue.
fn collect_batch(shared: &Shared) -> Vec<Request> {
    let mut q = shared.queue.lock().expect("queue lock");
    // Sleep until there is at least one request (or we are told to stop).
    while q.requests.is_empty() {
        if q.shutdown {
            return Vec::new();
        }
        q = shared.wakeup.wait(q).expect("queue lock");
    }
    // A batch is forming: wait for it to fill, but never past the oldest
    // request's deadline. The queue is FIFO and this worker is the only
    // consumer, so the front entry stays the oldest until we drain it.
    let deadline = q.requests.front().expect("non-empty queue").enqueued + shared.cfg.max_wait;
    while q.requests.len() < shared.cfg.max_batch && !q.shutdown {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, _timeout) = shared
            .wakeup
            .wait_timeout(q, deadline - now)
            .expect("queue lock");
        q = guard;
    }
    let take = q.requests.len().min(shared.cfg.max_batch);
    q.requests.drain(..take).collect()
}
