//! The fleet tier: a consistent-hash router over N [`BatchServer`]
//! replicas, each a full single-server stack (engine + cache + breaker +
//! supervised worker) loaded from the *same* model artifact.
//!
//! ## Why a router over replicas
//!
//! A single `BatchServer` is internally hardened but remains one engine on
//! one thread — a single point of failure and a throughput ceiling.
//! Enclosing-subgraph inference shards naturally by `(src, dst)` key: a
//! query's entire working set (the extracted subgraph, its cached answer)
//! is keyed by the pair, so consistent-hash routing gives each replica a
//! disjoint hot set. Each replica's LRU then holds its own shard — the
//! aggregate cache is N× larger with zero coordination — and a replica
//! loss only reshuffles the keys it owned.
//!
//! ## Guarantees
//!
//! - **Correctness under failover.** Every replica loads identical
//!   parameters and the engine forward pass is deterministic, so *any*
//!   replica's answer for a query is bit-identical to a single server's.
//!   Failover and hedging can therefore never produce a wrong answer —
//!   only an answer or a typed [`Error`].
//! - **The fleet invariant.** For any chaos schedule (crashes, drains,
//!   tripped breakers, engine faults) that leaves at least one replica
//!   healthy, every submitted query resolves: correct probabilities or a
//!   typed error, never a hang. Proven under seeded schedules in
//!   `tests/fleet_chaos.rs`.
//! - **Drain without dropped queries.** [`Fleet::drain_replica`] moves a
//!   replica's still-queued requests (reply channels intact) onto ring
//!   successors before shutting it down, so a planned removal completes
//!   without failing a single admitted query.
//!
//! ## Mechanics
//!
//! A query walks its ring order ([`HashRing::route_order`]): submit to the
//! first routable replica, fail over to the next on any typed error, and
//! *hedge* — submit a backup to the next replica while the primary keeps
//! running — when the primary has not answered within
//! [`FleetConfig::hedge_after`]. First successful answer wins; duplicated
//! work is wasted compute, never wrong output.

use crate::engine::{ClassProbs, InferenceEngine, LinkQuery};
use crate::error::Error;
use crate::health::{FleetHealth, ReplicaHealth};
use crate::ring::HashRing;
use crate::server::{BatchConfig, BatchServer, PendingQuery, Request, RobustnessConfig};
use crate::stats::ServerStats;
use am_dgcnn::fault::{FaultInjector, FleetAction};
use amdgcnn_data::Dataset;
use amdgcnn_graph::AffectedRegion;
use amdgcnn_obs::{Counter, Obs, Timer};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

/// Fleet sizing and policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of replicas (each a full [`BatchServer`] over its own engine).
    pub replicas: usize,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// Per-replica LRU capacity (prepared subgraphs + memoized answers).
    pub cache_capacity: usize,
    /// Batching policy for every replica.
    pub batch: BatchConfig,
    /// Per-replica fault-tolerance policy (queue bound, retries, breaker).
    pub robust: RobustnessConfig,
    /// How long to wait on the primary before hedging the query to the
    /// next ring replica. Bounds tail latency: a replica stuck behind an
    /// injected (or real) slow call stops being the only path to an
    /// answer after this long.
    pub hedge_after: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            replicas: 3,
            vnodes: HashRing::DEFAULT_VNODES,
            cache_capacity: 256,
            batch: BatchConfig::default(),
            robust: RobustnessConfig::default(),
            hedge_after: Duration::from_millis(20),
        }
    }
}

/// One replica slot: the live server (if any) plus drain/generation state.
struct Slot {
    server: Option<Arc<BatchServer>>,
    /// Set while a graceful drain is redistributing this replica's queue;
    /// the router skips draining replicas for new queries.
    draining: bool,
    /// Bumped on every respawn, so reports can distinguish incarnations.
    generation: u64,
}

/// Fleet-level counters and the end-to-end query timer, registered under
/// `fleet/*` in the shared observability registry so a single timing
/// report covers the router alongside pipeline and per-stage spans.
struct FleetCounters {
    queries: Counter,
    answered: Counter,
    failed: Counter,
    failovers: Counter,
    hedges: Counter,
    hedge_wins: Counter,
    crashes: Counter,
    respawns: Counter,
    drains: Counter,
    redistributed: Counter,
    health_transitions: Counter,
    graph_rolls: Counter,
    query_latency: Timer,
}

impl FleetCounters {
    fn new(obs: &Obs) -> Self {
        Self {
            queries: obs.counter("fleet/queries"),
            answered: obs.counter("fleet/answered"),
            failed: obs.counter("fleet/failed"),
            failovers: obs.counter("fleet/failovers"),
            hedges: obs.counter("fleet/hedges"),
            hedge_wins: obs.counter("fleet/hedge_wins"),
            crashes: obs.counter("fleet/replica_crashes"),
            respawns: obs.counter("fleet/replica_respawns"),
            drains: obs.counter("fleet/replica_drains"),
            redistributed: obs.counter("fleet/redistributed"),
            health_transitions: obs.counter("fleet/health_transitions"),
            graph_rolls: obs.counter("fleet/graph_rolls"),
            query_latency: obs.timer("fleet/query"),
        }
    }
}

/// A fault-tolerant serving fleet: consistent-hash routing, automatic
/// failover, hedged retries, and live drain/respawn of replicas.
///
/// The fleet owns the artifact bytes and dataset, so a crashed replica can
/// be rebuilt from scratch ([`respawn_replica`](Fleet::respawn_replica))
/// under live traffic. All replica servers reuse the existing supervisor
/// machinery — each replica's worker is respawned by its own supervisor on
/// panics; the fleet only adds the tier above.
pub struct Fleet {
    artifact: Arc<Vec<u8>>,
    /// The served dataset generation. Swapped by
    /// [`roll_graph`](Fleet::roll_graph); respawns and graph rolls always
    /// bind replicas to the current generation.
    ds: RwLock<Arc<Dataset>>,
    /// Graph generation the current dataset belongs to (0 for a static
    /// graph); engines are tagged with it so stale cache hits are
    /// detectable.
    graph_generation: AtomicU64,
    cfg: FleetConfig,
    ring: HashRing,
    slots: Vec<Mutex<Slot>>,
    injectors: Vec<Option<Arc<FaultInjector>>>,
    obs: Obs,
    counters: FleetCounters,
    last_health: Mutex<FleetHealth>,
}

/// Polling granularity while racing a primary against its hedge. Small
/// enough that the winner's extra latency is negligible next to a forward
/// pass, large enough not to spin.
const RACE_POLL: Duration = Duration::from_micros(200);

impl Fleet {
    /// Start `cfg.replicas` replicas, each loading `artifact` against `ds`.
    ///
    /// # Errors
    /// Propagates artifact/engine construction failures (corrupt artifact,
    /// dataset mismatch) from any replica; no fleet is left half-started.
    pub fn start(artifact: Vec<u8>, ds: Dataset, cfg: FleetConfig) -> io::Result<Self> {
        Self::start_with(artifact, ds, cfg, Obs::disabled(), Vec::new())
    }

    /// Start with an observability registry and per-replica fault
    /// injectors (index-aligned; shorter vectors leave the remaining
    /// replicas clean). The injectors persist across respawns: a rebuilt
    /// replica continues its schedule where the crashed incarnation left
    /// off, keeping chaos runs deterministic.
    pub fn start_with(
        artifact: Vec<u8>,
        ds: Dataset,
        cfg: FleetConfig,
        obs: Obs,
        injectors: Vec<Arc<FaultInjector>>,
    ) -> io::Result<Self> {
        assert!(cfg.replicas > 0, "a fleet needs at least one replica");
        let mut padded: Vec<Option<Arc<FaultInjector>>> = injectors.into_iter().map(Some).collect();
        padded.resize(cfg.replicas, None);
        // FleetStats reads from these counters, so a disabled handle is
        // upgraded to a private enabled registry — fleet accounting must
        // always count, observability or not.
        let obs = if obs.is_enabled() {
            obs
        } else {
            Obs::enabled()
        };
        let counters = FleetCounters::new(&obs);
        let fleet = Self {
            ring: HashRing::with_vnodes(cfg.replicas, cfg.vnodes),
            artifact: Arc::new(artifact),
            ds: RwLock::new(Arc::new(ds)),
            graph_generation: AtomicU64::new(0),
            slots: (0..cfg.replicas)
                .map(|_| {
                    Mutex::new(Slot {
                        server: None,
                        draining: false,
                        generation: 0,
                    })
                })
                .collect(),
            injectors: padded,
            obs,
            counters,
            last_health: Mutex::new(FleetHealth::Healthy),
            cfg,
        };
        for r in 0..fleet.cfg.replicas {
            let server = fleet.build_server(r)?;
            fleet.lock_slot(r).server = Some(Arc::new(server));
        }
        Ok(fleet)
    }

    /// Build a fresh server for replica `r` from the stored artifact,
    /// bound to the *current* dataset generation.
    fn build_server(&self, r: usize) -> io::Result<BatchServer> {
        Ok(BatchServer::start_with(
            self.build_engine(r)?,
            self.cfg.batch,
            self.cfg.robust,
        ))
    }

    fn build_engine(&self, r: usize) -> io::Result<InferenceEngine> {
        let ds = self.dataset();
        let mut engine = InferenceEngine::load(
            self.artifact.as_slice(),
            (*ds).clone(),
            self.cfg.cache_capacity,
        )?
        .with_graph_generation(self.graph_generation.load(Ordering::SeqCst));
        if let Some(inj) = &self.injectors[r] {
            engine = engine.with_fault_injector(Arc::clone(inj));
        }
        Ok(engine)
    }

    /// The dataset generation the fleet currently serves.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.ds.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Graph generation of the served dataset (0 for a static graph).
    pub fn graph_generation(&self) -> u64 {
        self.graph_generation.load(Ordering::SeqCst)
    }

    fn lock_slot(&self, r: usize) -> MutexGuard<'_, Slot> {
        self.slots[r].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The routing ring (for introspection and tests).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shared observability registry (fleet/* counters and spans).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Number of replica slots (live or not).
    pub fn replicas(&self) -> usize {
        self.cfg.replicas
    }

    /// Primary replica for a query, before any health-based spill.
    pub fn route(&self, q: LinkQuery) -> usize {
        self.ring.route(q.0, q.1)
    }

    /// The server to send new traffic to at slot `r`, if the slot is
    /// routable. A live replica with an open breaker is still returned:
    /// its admission gate handles shedding and — crucially — cooldown
    /// probes, which must come from real traffic.
    fn routable_server(&self, r: usize) -> Option<Arc<BatchServer>> {
        let slot = self.lock_slot(r);
        if slot.draining {
            return None;
        }
        slot.server.as_ref().map(Arc::clone)
    }

    /// Answer one link query through the fleet: route by consistent hash,
    /// fail over on typed errors, hedge on tail latency. Returns the
    /// class probabilities (bit-identical to a single server's answer for
    /// the same artifact) or the last typed [`Error`] once every live
    /// replica has been tried.
    pub fn query(&self, q: LinkQuery) -> Result<ClassProbs, Error> {
        self.query_with_deadline(q, None)
    }

    /// Like [`query`](Fleet::query), but each per-replica attempt carries
    /// a queueing deadline: a replica that cannot schedule the query in
    /// `deadline` fails that attempt with [`Error::DeadlineExceeded`] and
    /// the router moves on — a slow replica delays, but cannot absorb, the
    /// query.
    pub fn query_with_deadline(
        &self,
        q: LinkQuery,
        deadline: Option<Duration>,
    ) -> Result<ClassProbs, Error> {
        let span = self.counters.query_latency.start();
        self.counters.queries.inc();
        let outcome = self.query_inner(q, deadline);
        match &outcome {
            Ok(_) => self.counters.answered.inc(),
            Err(_) => self.counters.failed.inc(),
        }
        span.finish();
        outcome
    }

    fn submit_to(
        &self,
        server: &BatchServer,
        q: LinkQuery,
        deadline: Option<Duration>,
    ) -> Result<PendingQuery, Error> {
        match deadline {
            Some(d) => server.submit_with_deadline(q, d),
            None => server.submit(q),
        }
    }

    fn query_inner(&self, q: LinkQuery, deadline: Option<Duration>) -> Result<ClassProbs, Error> {
        let order = self.ring.route_order(q.0, q.1);
        let mut last_err = Error::FleetUnavailable { attempts: 0 };
        let mut attempts = 0u32;
        let mut i = 0usize;
        while i < order.len() {
            let r = order[i];
            i += 1;
            let Some(server) = self.routable_server(r) else {
                continue;
            };
            if attempts > 0 {
                // This query is landing somewhere other than where it
                // would have under full health: a failover, recorded on
                // the replica that absorbs it and at the fleet level.
                self.counters.failovers.inc();
                server.engine().stats.record_failover();
            }
            attempts += 1;
            let pending = match self.submit_to(&server, q, deadline) {
                Ok(p) => p,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match pending.wait_timeout(self.cfg.hedge_after) {
                Some(Ok(probs)) => return Ok(probs),
                Some(Err(e)) => {
                    last_err = e;
                    continue;
                }
                None => {
                    // Tail request: the primary is alive but slow. Hedge to
                    // the next routable replica and take the first answer;
                    // both compute identical probabilities, so the race
                    // can only improve latency, never change the result.
                    let mut hedge: Option<(PendingQuery, Arc<BatchServer>)> = None;
                    while i < order.len() && hedge.is_none() {
                        let hr = order[i];
                        i += 1;
                        let Some(backup) = self.routable_server(hr) else {
                            continue;
                        };
                        attempts += 1;
                        if let Ok(p) = self.submit_to(&backup, q, deadline) {
                            self.counters.hedges.inc();
                            backup.engine().stats.record_hedge();
                            hedge = Some((p, backup));
                        }
                    }
                    match hedge {
                        Some((backup_pending, backup)) => {
                            match self.race(&pending, &backup_pending) {
                                RaceOutcome::Primary(Ok(probs)) => return Ok(probs),
                                RaceOutcome::Hedge(Ok(probs)) => {
                                    self.counters.hedge_wins.inc();
                                    backup.engine().stats.record_hedge_win();
                                    return Ok(probs);
                                }
                                RaceOutcome::Primary(Err(e)) | RaceOutcome::Hedge(Err(e)) => {
                                    last_err = e;
                                    continue;
                                }
                            }
                        }
                        None => match pending.wait() {
                            Ok(probs) => return Ok(probs),
                            Err(e) => {
                                last_err = e;
                                continue;
                            }
                        },
                    }
                }
            }
        }
        if attempts == 0 {
            last_err = Error::FleetUnavailable { attempts: 0 };
        }
        Err(last_err)
    }

    /// Race a primary pending answer against its hedge. Returns the first
    /// success; if one side fails, blocks on the other; if both fail, the
    /// later error wins.
    fn race(&self, primary: &PendingQuery, hedge: &PendingQuery) -> RaceOutcome {
        let mut primary_done: Option<Result<ClassProbs, Error>> = None;
        let mut hedge_done: Option<Result<ClassProbs, Error>> = None;
        loop {
            if primary_done.is_none() {
                if let Some(out) = primary.wait_timeout(RACE_POLL) {
                    if out.is_ok() || hedge_done.is_some() {
                        return RaceOutcome::Primary(out);
                    }
                    primary_done = Some(out);
                }
            }
            if hedge_done.is_none() {
                if let Some(out) = hedge.wait_timeout(RACE_POLL) {
                    if out.is_ok() || primary_done.is_some() {
                        return RaceOutcome::Hedge(out);
                    }
                    hedge_done = Some(out);
                }
            }
        }
    }

    /// Hard-kill replica `r` (chaos "crash"): its queued queries fail with
    /// [`Error::ServerShutdown`] and their fleet callers immediately fail
    /// over; nothing drains. A no-op on an already-down slot.
    pub fn kill_replica(&self, r: usize) {
        let server = {
            let mut slot = self.lock_slot(r);
            slot.draining = false;
            slot.server.take()
        };
        if let Some(server) = server {
            server.crash();
            self.counters.crashes.inc();
            self.obs
                .event("fleet/replica", || format!("replica {r} crashed"));
        }
        self.note_health();
    }

    /// Rebuild replica `r` from the stored artifact and return it to the
    /// ring. Its keys flow back automatically (consistent hashing is
    /// stateless); its fault injector, if any, resumes its schedule. A
    /// no-op if the slot is already live.
    ///
    /// # Errors
    /// Propagates engine construction failures; the slot stays down.
    pub fn respawn_replica(&self, r: usize) -> io::Result<()> {
        if self.lock_slot(r).server.is_some() {
            return Ok(());
        }
        let server = self.build_server(r)?;
        {
            let mut slot = self.lock_slot(r);
            if slot.server.is_some() {
                // Lost a respawn race; the freshly built server just shuts
                // down on drop.
                return Ok(());
            }
            slot.server = Some(Arc::new(server));
            slot.draining = false;
            slot.generation += 1;
        }
        self.counters.respawns.inc();
        self.obs
            .event("fleet/replica", || format!("replica {r} respawned"));
        self.note_health();
        Ok(())
    }

    /// Gracefully remove replica `r` under live traffic: stop routing to
    /// it, move its still-queued requests to ring successors (reply
    /// channels intact — the callers never see an error), let its
    /// in-flight batch finish, then shut it down. Returns the number of
    /// requests redistributed. A no-op (returning 0) on a down slot.
    pub fn drain_replica(&self, r: usize) -> usize {
        let server = {
            let mut slot = self.lock_slot(r);
            let Some(server) = slot.server.as_ref().map(Arc::clone) else {
                return 0;
            };
            slot.draining = true;
            server
        };
        self.counters.drains.inc();
        self.obs
            .event("fleet/replica", || format!("replica {r} draining"));
        let taken = server.begin_drain_take_queued();
        let moved = taken.len();
        for req in taken {
            self.redistribute(req);
        }
        self.counters.redistributed.add(moved as u64);
        {
            let mut slot = self.lock_slot(r);
            slot.server = None;
            slot.draining = false;
        }
        // Dropping our handle lets the server's Drop complete the drain
        // (join the worker after its in-flight batch) once query threads
        // release their clones.
        drop(server);
        self.note_health();
        moved
    }

    /// Re-queue one request taken from a draining replica onto the next
    /// live replica in its ring order. If no replica can adopt it, the
    /// caller gets a typed error — redistribution never silently drops a
    /// request.
    fn redistribute(&self, req: Request) {
        let order = self.ring.route_order(req.query.0, req.query.1);
        let mut req = req;
        for r in order {
            let Some(server) = self.routable_server(r) else {
                continue;
            };
            match server.try_adopt(req) {
                Ok(()) => return,
                Err((back, _why)) => req = back,
            }
        }
        let _ = req.reply.send(Err(Error::FleetUnavailable { attempts: 0 }));
    }

    /// Roll every replica forward to a freshly committed graph generation
    /// without dropping a single admitted query.
    ///
    /// Protocol, per live replica: build a new engine against `dataset`
    /// (same artifact, new graph snapshot), migrate the old engine's
    /// cache across — entries whose endpoints fall inside `region` are
    /// dropped because the mutation may have changed their enclosing
    /// subgraphs, the rest carry over with prepared subgraphs and
    /// memoized answers intact — start a replacement server, swap it into
    /// the slot, then move the old server's still-queued requests back
    /// onto the ring (reply channels intact; with the replacement live
    /// they are adopted at the same slot). The old incarnation finishes
    /// its in-flight batch on the generation those queries were admitted
    /// under — snapshot isolation, not staleness — and shuts down.
    ///
    /// Down or draining slots are skipped; a later respawn binds them to
    /// the current generation automatically.
    ///
    /// Returns the number of queued requests carried across the swap.
    ///
    /// # Errors
    /// Engine construction failure aborts the roll for the remaining
    /// replicas; already-swapped replicas keep serving the new generation
    /// (the dataset swap happens first, so every rebuild binds the new
    /// snapshot).
    pub fn roll_graph(
        &self,
        dataset: Arc<Dataset>,
        region: &AffectedRegion,
        generation: u64,
    ) -> io::Result<usize> {
        *self.ds.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&dataset);
        self.graph_generation.store(generation, Ordering::SeqCst);
        let mut moved = 0usize;
        for r in 0..self.cfg.replicas {
            let old = {
                let slot = self.lock_slot(r);
                if slot.draining {
                    continue;
                }
                match slot.server.as_ref() {
                    Some(s) => Arc::clone(s),
                    None => continue,
                }
            };
            let engine = self.build_engine(r)?;
            engine.migrate_cache_from(old.engine(), region);
            let server = Arc::new(BatchServer::start_with(
                engine,
                self.cfg.batch,
                self.cfg.robust,
            ));
            {
                let mut slot = self.lock_slot(r);
                match &slot.server {
                    Some(cur) if Arc::ptr_eq(cur, &old) => {
                        slot.server = Some(Arc::clone(&server));
                        slot.generation += 1;
                    }
                    // Lost a race against a concurrent crash/drain/swap;
                    // the fresh server just shuts down.
                    _ => {
                        server.begin_shutdown();
                        continue;
                    }
                }
            }
            let taken = old.begin_drain_take_queued();
            moved += taken.len();
            for req in taken {
                self.redistribute(req);
            }
            drop(old);
        }
        self.counters.graph_rolls.inc();
        self.counters.redistributed.add(moved as u64);
        self.obs.event("fleet/graph", || {
            format!("rolled to graph generation {generation}")
        });
        self.note_health();
        Ok(moved)
    }

    /// Force replica `r`'s circuit breaker open (chaos "open breaker").
    /// No-op on a down slot.
    pub fn trip_replica_breaker(&self, r: usize) {
        if let Some(server) = self.lock_slot(r).server.as_ref() {
            server.trip_breaker();
        }
        self.note_health();
    }

    /// Apply one chaos action from a [`FleetPlan`] schedule.
    ///
    /// [`FleetPlan`]: am_dgcnn::fault::FleetPlan
    ///
    /// # Errors
    /// Only [`FleetAction::Respawn`] can fail (engine rebuild).
    pub fn apply(&self, action: FleetAction) -> io::Result<()> {
        match action {
            FleetAction::Crash { replica } => {
                self.kill_replica(replica);
                Ok(())
            }
            FleetAction::Respawn { replica } => self.respawn_replica(replica),
            FleetAction::Drain { replica } => {
                self.drain_replica(replica);
                Ok(())
            }
            FleetAction::TripBreaker { replica } => {
                self.trip_replica_breaker(replica);
                Ok(())
            }
        }
    }

    /// Current health of each replica slot.
    pub fn replica_health(&self) -> Vec<ReplicaHealth> {
        (0..self.cfg.replicas)
            .map(|r| {
                let slot = self.lock_slot(r);
                match (&slot.server, slot.draining) {
                    (None, _) => ReplicaHealth::Down,
                    (Some(_), true) => ReplicaHealth::Draining,
                    (Some(s), false) if s.breaker_open() => ReplicaHealth::Impaired,
                    (Some(_), false) => ReplicaHealth::Up,
                }
            })
            .collect()
    }

    /// Current fleet-level health (the fold of [`replica_health`]).
    ///
    /// [`replica_health`]: Fleet::replica_health
    pub fn health(&self) -> FleetHealth {
        FleetHealth::from_replicas(&self.replica_health())
    }

    /// Re-derive fleet health and record a transition event if it moved.
    fn note_health(&self) {
        let now = self.health();
        let mut last = self.last_health.lock().unwrap_or_else(|e| e.into_inner());
        if *last != now {
            let from = *last;
            *last = now;
            drop(last);
            self.counters.health_transitions.inc();
            self.obs
                .event("fleet/health", || format!("{from} -> {now}"));
        }
    }

    /// Snapshot of fleet counters, per-replica stats, and the merged view.
    pub fn stats(&self) -> FleetStats {
        let replica_stats: Vec<Option<ServerStats>> = (0..self.cfg.replicas)
            .map(|r| self.lock_slot(r).server.as_ref().map(|s| s.stats()))
            .collect();
        let merged = replica_stats
            .iter()
            .flatten()
            .fold(ServerStats::default(), |acc, s| acc.merge(s));
        let lat = self.counters.query_latency.snapshot();
        FleetStats {
            health: self.health(),
            replica_health: self.replica_health(),
            queries: self.counters.queries.get(),
            answered: self.counters.answered.get(),
            failed: self.counters.failed.get(),
            failovers: self.counters.failovers.get(),
            hedges: self.counters.hedges.get(),
            hedge_wins: self.counters.hedge_wins.get(),
            crashes: self.counters.crashes.get(),
            respawns: self.counters.respawns.get(),
            drains: self.counters.drains.get(),
            redistributed: self.counters.redistributed.get(),
            health_transitions: self.counters.health_transitions.get(),
            graph_rolls: self.counters.graph_rolls.get(),
            p50_query_latency: Duration::from_nanos(lat.quantile_ns(0.50)),
            p99_query_latency: Duration::from_nanos(lat.quantile_ns(0.99)),
            replicas: replica_stats,
            merged,
        }
    }

    /// Shut down every live replica, draining their queues. Idempotent;
    /// takes `&self` so shared fleets (behind `Arc`) can be stopped too.
    pub fn shutdown(&self) {
        for r in 0..self.cfg.replicas {
            let server = self.lock_slot(r).server.take();
            if let Some(server) = server {
                server.begin_shutdown();
                drop(server);
            }
        }
    }
}

enum RaceOutcome {
    Primary(Result<ClassProbs, Error>),
    Hedge(Result<ClassProbs, Error>),
}

/// Point-in-time view of the fleet: router counters, health, end-to-end
/// latency quantiles, and per-replica [`ServerStats`] with their merged
/// fold.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Fleet-level health at snapshot time.
    pub health: FleetHealth,
    /// Per-slot replica health.
    pub replica_health: Vec<ReplicaHealth>,
    /// Queries submitted to the fleet.
    pub queries: u64,
    /// Queries answered with probabilities.
    pub answered: u64,
    /// Queries resolved with a typed error after exhausting live replicas.
    pub failed: u64,
    /// Attempts that landed on a non-primary replica after a failure.
    pub failovers: u64,
    /// Hedged (tail-latency backup) submissions.
    pub hedges: u64,
    /// Hedges that answered before their primary.
    pub hedge_wins: u64,
    /// Replicas hard-killed.
    pub crashes: u64,
    /// Replicas rebuilt and returned to the ring.
    pub respawns: u64,
    /// Replicas gracefully drained.
    pub drains: u64,
    /// Queued requests moved to a sibling replica during drains.
    pub redistributed: u64,
    /// Fleet health state changes observed.
    pub health_transitions: u64,
    /// Graph-generation rolls completed ([`Fleet::roll_graph`]).
    pub graph_rolls: u64,
    /// Median end-to-end fleet query latency (includes failover/hedging).
    pub p50_query_latency: Duration,
    /// 99th-percentile end-to-end fleet query latency.
    pub p99_query_latency: Duration,
    /// Per-replica snapshots (`None` for down slots).
    pub replicas: Vec<Option<ServerStats>>,
    /// All live replicas' stats merged ([`ServerStats::merge`]).
    pub merged: ServerStats,
}

impl std::fmt::Display for FleetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet {}: {}/{} answered ({} failed), p50 {:?} p99 {:?}, \
             {} failovers, {} hedges ({} won), {} crashes / {} respawns / \
             {} drains ({} redistributed), {} graph rolls, \
             {} health transitions",
            self.health,
            self.answered,
            self.queries,
            self.failed,
            self.p50_query_latency,
            self.p99_query_latency,
            self.failovers,
            self.hedges,
            self.hedge_wins,
            self.crashes,
            self.respawns,
            self.drains,
            self.redistributed,
            self.graph_rolls,
            self.health_transitions
        )
    }
}
