//! Serving counters: queries, cache effectiveness, batch latency quantiles.
//!
//! Counters are lock-free atomics so the hot path (a cache probe inside the
//! engine) never contends with a stats reader; only the latency ring, which
//! is touched once per *batch* rather than per query, sits behind a mutex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Latency samples retained for quantile estimation. Old samples are
/// overwritten ring-buffer style so a long-running server reports recent
/// behavior, not its cold-start history.
const LATENCY_RING: usize = 4096;

/// Internal mutable collector owned by the engine/server.
#[derive(Debug, Default)]
pub(crate) struct StatsCollector {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    dedup_hits: AtomicU64,
    batches: AtomicU64,
    shed_overload: AtomicU64,
    shed_degraded: AtomicU64,
    deadline_expired: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_resets: AtomicU64,
    engine_retries: AtomicU64,
    failed_queries: AtomicU64,
    latencies_us: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl StatsCollector {
    pub(crate) fn record_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_misses(&self, n: u64) {
        self.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_dedup_hits(&self, n: u64) {
        self.dedup_hits.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_overload(&self, n: u64) {
        self.shed_overload.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_shed_degraded(&self, n: u64) {
        self.shed_degraded.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_expired(&self, n: u64) {
        self.deadline_expired.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_reset(&self) {
        self.breaker_resets.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_engine_retries(&self, n: u64) {
        self.engine_retries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_failed_queries(&self, n: u64) {
        self.failed_queries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // A worker that panicked mid-record leaves the ring poisoned but
        // structurally intact; recover the guard rather than cascading.
        let mut ring = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us);
        } else {
            let i = ring.next;
            ring.samples[i] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Consistent-enough snapshot (counters are read individually; exact
    /// cross-counter consistency is not needed for monitoring).
    pub(crate) fn snapshot(&self) -> ServerStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let dedup = self.dedup_hits.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let mut lat: Vec<u64> = self
            .latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .samples
            .clone();
        lat.sort_unstable();
        ServerStats {
            queries_served: queries,
            cache_hits: hits,
            cache_misses: misses,
            dedup_hits: dedup,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                queries as f64 / batches as f64
            },
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_degraded: self.shed_degraded.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_resets: self.breaker_resets.load(Ordering::Relaxed),
            engine_retries: self.engine_retries.load(Ordering::Relaxed),
            failed_queries: self.failed_queries.load(Ordering::Relaxed),
            p50_batch_latency: Duration::from_micros(quantile(&lat, 0.50)),
            p99_batch_latency: Duration::from_micros(quantile(&lat, 0.99)),
        }
    }
}

/// Nearest-rank quantile over an already-sorted sample vector.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Point-in-time view of a server's throughput and latency counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Total link queries answered.
    pub queries_served: u64,
    /// LRU lookups that found a prepared subgraph cached by an earlier
    /// batch. Does *not* include intra-batch duplicates — those are
    /// [`dedup_hits`](Self::dedup_hits).
    pub cache_hits: u64,
    /// LRU lookups that missed and paid a fresh extraction. Concurrent
    /// `predict` calls racing on the same cold key may each record a miss
    /// (each really does extract), so under contention misses can slightly
    /// overstate distinct cold keys.
    pub cache_misses: u64,
    /// Queries answered by deduplication against an earlier copy of the
    /// same pair *within their own batch*; they never probed the LRU.
    pub dedup_hits: u64,
    /// LRU effectiveness only: `cache_hits / (cache_hits + cache_misses)`,
    /// `0.0` before any lookup. Batch dedup is excluded from both sides.
    pub cache_hit_rate: f64,
    /// Micro-batches executed.
    pub batches: u64,
    /// `queries_served / batches`, `0.0` before any batch.
    pub mean_batch_size: f64,
    /// Queries shed at admission because the bounded queue was full.
    pub shed_overload: u64,
    /// Queries shed at admission because the circuit breaker was open.
    pub shed_degraded: u64,
    /// Queued queries failed because their deadline passed before a batch
    /// slot reached them.
    pub deadline_expired: u64,
    /// Batch executions that ended in a worker panic (each isolated by
    /// `catch_unwind`; callers received [`Error::WorkerPanicked`]).
    ///
    /// [`Error::WorkerPanicked`]: crate::Error::WorkerPanicked
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor after a panic.
    pub worker_respawns: u64,
    /// Times the circuit breaker tripped open after consecutive failures.
    pub breaker_trips: u64,
    /// Times the breaker closed again after a successful cooldown probe.
    pub breaker_resets: u64,
    /// Transient engine faults absorbed by retry-with-backoff.
    pub engine_retries: u64,
    /// Queries resolved with a typed error instead of probabilities
    /// (panics and exhausted retry budgets; sheds are counted separately).
    pub failed_queries: u64,
    /// Median batch latency over the recent sample window.
    pub p50_batch_latency: Duration,
    /// 99th-percentile batch latency over the recent sample window.
    pub p99_batch_latency: Duration,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} batches (mean {:.1}/batch), cache hit rate {:.1}% \
             (+{} batch-dedup), batch latency p50 {:?} p99 {:?}, \
             shed {} overload / {} degraded, {} deadline-expired, {} failed, \
             {} panics ({} respawns), breaker {} trips / {} resets, {} retries",
            self.queries_served,
            self.batches,
            self.mean_batch_size,
            self.cache_hit_rate * 100.0,
            self.dedup_hits,
            self.p50_batch_latency,
            self.p99_batch_latency,
            self.shed_overload,
            self.shed_degraded,
            self.deadline_expired,
            self.failed_queries,
            self.worker_panics,
            self.worker_respawns,
            self.breaker_trips,
            self.breaker_resets,
            self.engine_retries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let c = StatsCollector::default();
        let s = c.snapshot();
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.p99_batch_latency, Duration::ZERO);
    }

    #[test]
    fn hit_rate_and_quantiles() {
        let c = StatsCollector::default();
        c.record_queries(4);
        c.record_cache_hits(3);
        c.record_cache_misses(1);
        c.record_dedup_hits(2);
        for us in [100u64, 200, 300, 400] {
            c.record_batch(Duration::from_micros(us));
        }
        let s = c.snapshot();
        // Dedup hits are tracked separately and do not dilute the LRU rate.
        assert_eq!(s.cache_hit_rate, 0.75);
        assert_eq!(s.dedup_hits, 2);
        assert_eq!(s.mean_batch_size, 1.0);
        assert_eq!(s.p50_batch_latency, Duration::from_micros(200));
        assert_eq!(s.p99_batch_latency, Duration::from_micros(400));
    }

    #[test]
    fn robustness_counters_flow_to_snapshot() {
        let c = StatsCollector::default();
        c.record_shed_overload(3);
        c.record_shed_degraded(2);
        c.record_deadline_expired(5);
        c.record_worker_panic();
        c.record_worker_respawn();
        c.record_breaker_trip();
        c.record_breaker_reset();
        c.record_engine_retries(4);
        c.record_failed_queries(7);
        let s = c.snapshot();
        assert_eq!(s.shed_overload, 3);
        assert_eq!(s.shed_degraded, 2);
        assert_eq!(s.deadline_expired, 5);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_resets, 1);
        assert_eq!(s.engine_retries, 4);
        assert_eq!(s.failed_queries, 7);
        let text = s.to_string();
        assert!(text.contains("shed 3 overload"));
        assert!(text.contains("breaker 1 trips"));
    }

    #[test]
    fn latency_ring_wraps_instead_of_growing() {
        let c = StatsCollector::default();
        for i in 0..(LATENCY_RING as u64 + 10) {
            c.record_batch(Duration::from_micros(i));
        }
        let s = c.snapshot();
        assert_eq!(s.batches, LATENCY_RING as u64 + 10);
        // The oldest samples (0..10) were overwritten.
        assert!(s.p50_batch_latency >= Duration::from_micros(10));
    }
}
