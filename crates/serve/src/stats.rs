//! Serving counters: queries, cache effectiveness, batch latency quantiles.
//!
//! All counters live in an [`amdgcnn_obs`] registry (under `serve/*`
//! names), so one [`amdgcnn_obs::Report`] covers training, pipeline, and
//! serving when the same [`Obs`] handle is threaded through all of them.
//! The collector pre-resolves every handle at construction, keeping the hot
//! path (a cache probe inside the engine) lock-free; only the latency ring,
//! which is touched once per *batch* rather than per query, sits behind a
//! mutex. The ring is kept alongside the registry's bucketed histogram
//! because it yields *exact* recent-window quantiles, which
//! [`ServerStats`] promises.

use amdgcnn_obs::{Counter, HistogramSnapshot, Obs, Timer};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples retained for quantile estimation. Old samples are
/// overwritten ring-buffer style so a long-running server reports recent
/// behavior, not its cold-start history.
const LATENCY_RING: usize = 4096;

/// Internal mutable collector owned by the engine/server.
#[derive(Debug)]
pub(crate) struct StatsCollector {
    obs: Obs,
    queries: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    dedup_hits: Counter,
    stale_serves: Counter,
    cache_invalidated: Counter,
    cache_migrated: Counter,
    batches: Counter,
    shed_overload: Counter,
    shed_degraded: Counter,
    deadline_expired: Counter,
    worker_panics: Counter,
    worker_respawns: Counter,
    breaker_trips: Counter,
    breaker_resets: Counter,
    engine_retries: Counter,
    failed_queries: Counter,
    failovers: Counter,
    hedges: Counter,
    hedge_wins: Counter,
    queue_wait: Timer,
    batch_assembly: Timer,
    engine_latency: Timer,
    latencies_us: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::with_obs(Obs::enabled())
    }
}

impl StatsCollector {
    /// Build the collector against `obs`, registering the `serve/*`
    /// counters and span timers. [`ServerStats`] snapshots read from the
    /// same registry, so a disabled handle is upgraded to a private
    /// enabled one — serving stats must always count.
    pub(crate) fn with_obs(obs: Obs) -> Self {
        let obs = if obs.is_enabled() {
            obs
        } else {
            Obs::enabled()
        };
        Self {
            queries: obs.counter("serve/queries"),
            cache_hits: obs.counter("serve/cache_hits"),
            cache_misses: obs.counter("serve/cache_misses"),
            dedup_hits: obs.counter("serve/dedup_hits"),
            stale_serves: obs.counter("serve/stale_serves"),
            cache_invalidated: obs.counter("serve/cache_invalidated"),
            cache_migrated: obs.counter("serve/cache_migrated"),
            batches: obs.counter("serve/batches"),
            shed_overload: obs.counter("serve/shed_overload"),
            shed_degraded: obs.counter("serve/shed_degraded"),
            deadline_expired: obs.counter("serve/deadline_expired"),
            worker_panics: obs.counter("serve/worker_panics"),
            worker_respawns: obs.counter("serve/worker_respawns"),
            breaker_trips: obs.counter("serve/breaker_trips"),
            breaker_resets: obs.counter("serve/breaker_resets"),
            engine_retries: obs.counter("serve/engine_retries"),
            failed_queries: obs.counter("serve/failed_queries"),
            failovers: obs.counter("serve/failovers"),
            hedges: obs.counter("serve/hedges"),
            hedge_wins: obs.counter("serve/hedge_wins"),
            queue_wait: obs.timer("serve/queue_wait"),
            batch_assembly: obs.timer("serve/batch_assembly"),
            engine_latency: obs.timer("serve/engine"),
            latencies_us: Mutex::new(LatencyRing::default()),
            obs,
        }
    }

    /// The registry behind this collector (for whole-process reports).
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    pub(crate) fn record_queries(&self, n: u64) {
        self.queries.add(n);
    }

    pub(crate) fn record_cache_hits(&self, n: u64) {
        self.cache_hits.add(n);
    }

    pub(crate) fn record_cache_misses(&self, n: u64) {
        self.cache_misses.add(n);
    }

    pub(crate) fn record_dedup_hits(&self, n: u64) {
        self.dedup_hits.add(n);
    }

    /// Cache hits whose entry predated the engine's graph generation —
    /// answers that *would* have been stale. They are discarded and
    /// recomputed, so this counter staying 0 is the witness that k-hop
    /// invalidation dropped every affected entry.
    pub(crate) fn record_stale_serves(&self, n: u64) {
        self.stale_serves.add(n);
    }

    /// Cache entries dropped during a graph-generation roll because the
    /// mutation's affected region covered their endpoints.
    pub(crate) fn record_cache_invalidated(&self, n: u64) {
        self.cache_invalidated.add(n);
    }

    /// Cache entries carried across a graph-generation roll untouched.
    pub(crate) fn record_cache_migrated(&self, n: u64) {
        self.cache_migrated.add(n);
    }

    pub(crate) fn record_shed_overload(&self, n: u64) {
        self.shed_overload.add(n);
    }

    pub(crate) fn record_shed_degraded(&self, n: u64) {
        self.shed_degraded.add(n);
    }

    pub(crate) fn record_deadline_expired(&self, n: u64) {
        self.deadline_expired.add(n);
    }

    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.inc();
        self.obs
            .event("serve/worker", || "engine panic caught in batch".into());
    }

    pub(crate) fn record_worker_respawn(&self) {
        self.worker_respawns.inc();
        self.obs
            .event("serve/worker", || "worker respawned by supervisor".into());
    }

    pub(crate) fn record_breaker_trip(&self) {
        self.breaker_trips.inc();
        self.obs.event("serve/breaker", || {
            "tripped open after consecutive failures".into()
        });
    }

    pub(crate) fn record_breaker_reset(&self) {
        self.breaker_resets.inc();
        self.obs
            .event("serve/breaker", || "closed after successful batch".into());
    }

    pub(crate) fn record_engine_retries(&self, n: u64) {
        self.engine_retries.add(n);
    }

    pub(crate) fn record_failed_queries(&self, n: u64) {
        self.failed_queries.add(n);
    }

    /// A query failed over from another replica landed here.
    pub(crate) fn record_failover(&self) {
        self.failovers.inc();
    }

    /// A hedge (tail-latency backup request) was submitted to this replica.
    pub(crate) fn record_hedge(&self) {
        self.hedges.inc();
    }

    /// A hedge submitted to this replica answered before the primary.
    pub(crate) fn record_hedge_win(&self) {
        self.hedge_wins.inc();
    }

    /// Time one request spent queued before its batch was drained.
    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    /// Time spent assembling a batch (first live request seen → drain).
    pub(crate) fn record_batch_assembly(&self, elapsed: Duration) {
        self.batch_assembly.record(elapsed);
    }

    pub(crate) fn record_batch(&self, latency: Duration) {
        self.batches.inc();
        self.engine_latency.record(latency);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // A worker that panicked mid-record leaves the ring poisoned but
        // structurally intact; recover the guard rather than cascading.
        let mut ring = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if ring.samples.len() < LATENCY_RING {
            ring.samples.push(us);
        } else {
            let i = ring.next;
            ring.samples[i] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_RING;
    }

    /// Consistent-enough snapshot (counters are read individually; exact
    /// cross-counter consistency is not needed for monitoring).
    pub(crate) fn snapshot(&self) -> ServerStats {
        let queries = self.queries.get();
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let dedup = self.dedup_hits.get();
        let batches = self.batches.get();
        let mut lat: Vec<u64> = self
            .latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .samples
            .clone();
        lat.sort_unstable();
        let hedges = self.hedges.get();
        let hedge_wins = self.hedge_wins.get();
        ServerStats {
            queries_served: queries,
            cache_hits: hits,
            cache_misses: misses,
            dedup_hits: dedup,
            stale_serves: self.stale_serves.get(),
            cache_invalidated: self.cache_invalidated.get(),
            cache_migrated: self.cache_migrated.get(),
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                queries as f64 / batches as f64
            },
            shed_overload: self.shed_overload.get(),
            shed_degraded: self.shed_degraded.get(),
            deadline_expired: self.deadline_expired.get(),
            worker_panics: self.worker_panics.get(),
            worker_respawns: self.worker_respawns.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_resets: self.breaker_resets.get(),
            engine_retries: self.engine_retries.get(),
            failed_queries: self.failed_queries.get(),
            failovers: self.failovers.get(),
            hedges,
            hedge_wins,
            hedge_win_rate: if hedges == 0 {
                0.0
            } else {
                hedge_wins as f64 / hedges as f64
            },
            p50_batch_latency: Duration::from_micros(quantile(&lat, 0.50)),
            p99_batch_latency: Duration::from_micros(quantile(&lat, 0.99)),
            latency_hist: self.engine_latency.snapshot(),
        }
    }
}

/// Record queue-wait and assembly timing for one drained batch: each
/// request's time-in-queue plus the overall assembly window.
pub(crate) fn record_drain(stats: &StatsCollector, waits: impl Iterator<Item = Instant>) {
    let now = Instant::now();
    let mut oldest: Option<Duration> = None;
    for enqueued in waits {
        let wait = now.saturating_duration_since(enqueued);
        stats.record_queue_wait(wait);
        oldest = Some(oldest.map_or(wait, |o| o.max(wait)));
    }
    if let Some(window) = oldest {
        stats.record_batch_assembly(window);
    }
}

/// Nearest-rank quantile over an already-sorted sample vector.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Point-in-time view of a server's throughput and latency counters.
/// `Default` is the all-zero snapshot of a fresh server — the identity of
/// [`merge`](ServerStats::merge).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerStats {
    /// Total link queries answered.
    pub queries_served: u64,
    /// LRU lookups that found a prepared subgraph cached by an earlier
    /// batch. Does *not* include intra-batch duplicates — those are
    /// [`dedup_hits`](Self::dedup_hits).
    pub cache_hits: u64,
    /// LRU lookups that missed and paid a fresh extraction. Concurrent
    /// `predict` calls racing on the same cold key may each record a miss
    /// (each really does extract), so under contention misses can slightly
    /// overstate distinct cold keys.
    pub cache_misses: u64,
    /// Queries answered by deduplication against an earlier copy of the
    /// same pair *within their own batch*; they never probed the LRU.
    pub dedup_hits: u64,
    /// Cache hits whose entry was tagged with an older graph generation
    /// than the engine's. The hit is discarded and recomputed — a stale
    /// answer is detected, never served — so under correct incremental
    /// invalidation this is always 0 (asserted by the mutation chaos
    /// harness).
    pub stale_serves: u64,
    /// Cache entries dropped during graph-generation rolls because the
    /// committed mutation's k-hop region covered their endpoints.
    pub cache_invalidated: u64,
    /// Cache entries (prepared subgraphs + memoized answers) carried
    /// across graph-generation rolls without recomputation.
    pub cache_migrated: u64,
    /// LRU effectiveness only: `cache_hits / (cache_hits + cache_misses)`,
    /// `0.0` before any lookup. Batch dedup is excluded from both sides.
    pub cache_hit_rate: f64,
    /// Micro-batches executed.
    pub batches: u64,
    /// `queries_served / batches`, `0.0` before any batch.
    pub mean_batch_size: f64,
    /// Queries shed at admission because the bounded queue was full.
    pub shed_overload: u64,
    /// Queries shed at admission because the circuit breaker was open.
    pub shed_degraded: u64,
    /// Queued queries failed because their deadline passed before a batch
    /// slot reached them.
    pub deadline_expired: u64,
    /// Batch executions that ended in a worker panic (each isolated by
    /// `catch_unwind`; callers received [`Error::WorkerPanicked`]).
    ///
    /// [`Error::WorkerPanicked`]: crate::Error::WorkerPanicked
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor after a panic.
    pub worker_respawns: u64,
    /// Times the circuit breaker tripped open after consecutive failures.
    pub breaker_trips: u64,
    /// Times the breaker closed again after a successful cooldown probe.
    pub breaker_resets: u64,
    /// Transient engine faults absorbed by retry-with-backoff.
    pub engine_retries: u64,
    /// Queries resolved with a typed error instead of probabilities
    /// (panics and exhausted retry budgets; sheds are counted separately).
    pub failed_queries: u64,
    /// Queries that failed over from another replica and landed here
    /// (always 0 for a standalone [`BatchServer`]).
    ///
    /// [`BatchServer`]: crate::BatchServer
    pub failovers: u64,
    /// Hedged (tail-latency backup) submissions this replica received.
    pub hedges: u64,
    /// Hedged submissions that answered before the primary they backed up.
    pub hedge_wins: u64,
    /// `hedge_wins / hedges`, `0.0` before any hedge (guarded, like every
    /// other rate on a fresh server).
    pub hedge_win_rate: f64,
    /// Median batch latency over the recent sample window.
    pub p50_batch_latency: Duration,
    /// 99th-percentile batch latency over the recent sample window.
    pub p99_batch_latency: Duration,
    /// Full batch-latency histogram since startup. Plain data: snapshots
    /// from different replicas [`merge`](ServerStats::merge)
    /// commutatively, which is how fleet-level p50/p99 are computed.
    pub latency_hist: HistogramSnapshot,
}

impl ServerStats {
    /// Combine two replicas' snapshots into one fleet-level view.
    ///
    /// Counters add; the latency histograms merge through the commutative,
    /// associative [`HistogramSnapshot::merge`], and the merged p50/p99
    /// are re-derived from the combined histogram (bucket upper bounds, so
    /// they never understate latency). All rates are recomputed from the
    /// merged counters with the same division-by-zero guards a fresh
    /// server gets — merging any snapshot with a fresh one never yields
    /// NaN.
    pub fn merge(&self, other: &ServerStats) -> ServerStats {
        let queries = self.queries_served + other.queries_served;
        let hits = self.cache_hits + other.cache_hits;
        let misses = self.cache_misses + other.cache_misses;
        let batches = self.batches + other.batches;
        let hedges = self.hedges + other.hedges;
        let hedge_wins = self.hedge_wins + other.hedge_wins;
        let hist = self.latency_hist.merge(&other.latency_hist);
        ServerStats {
            queries_served: queries,
            cache_hits: hits,
            cache_misses: misses,
            dedup_hits: self.dedup_hits + other.dedup_hits,
            stale_serves: self.stale_serves + other.stale_serves,
            cache_invalidated: self.cache_invalidated + other.cache_invalidated,
            cache_migrated: self.cache_migrated + other.cache_migrated,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                queries as f64 / batches as f64
            },
            shed_overload: self.shed_overload + other.shed_overload,
            shed_degraded: self.shed_degraded + other.shed_degraded,
            deadline_expired: self.deadline_expired + other.deadline_expired,
            worker_panics: self.worker_panics + other.worker_panics,
            worker_respawns: self.worker_respawns + other.worker_respawns,
            breaker_trips: self.breaker_trips + other.breaker_trips,
            breaker_resets: self.breaker_resets + other.breaker_resets,
            engine_retries: self.engine_retries + other.engine_retries,
            failed_queries: self.failed_queries + other.failed_queries,
            failovers: self.failovers + other.failovers,
            hedges,
            hedge_wins,
            hedge_win_rate: if hedges == 0 {
                0.0
            } else {
                hedge_wins as f64 / hedges as f64
            },
            p50_batch_latency: Duration::from_nanos(hist.quantile_ns(0.50)),
            p99_batch_latency: Duration::from_nanos(hist.quantile_ns(0.99)),
            latency_hist: hist,
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} batches (mean {:.1}/batch), cache hit rate {:.1}% \
             (+{} batch-dedup), {} stale serves, cache roll {} invalidated / {} migrated, \
             batch latency p50 {:?} p99 {:?}, \
             shed {} overload / {} degraded, {} deadline-expired, {} failed, \
             {} panics ({} respawns), breaker {} trips / {} resets, {} retries, \
             {} failovers, {} hedges ({} won)",
            self.queries_served,
            self.batches,
            self.mean_batch_size,
            self.cache_hit_rate * 100.0,
            self.dedup_hits,
            self.stale_serves,
            self.cache_invalidated,
            self.cache_migrated,
            self.p50_batch_latency,
            self.p99_batch_latency,
            self.shed_overload,
            self.shed_degraded,
            self.deadline_expired,
            self.failed_queries,
            self.worker_panics,
            self.worker_respawns,
            self.breaker_trips,
            self.breaker_resets,
            self.engine_retries,
            self.failovers,
            self.hedges,
            self.hedge_wins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let c = StatsCollector::default();
        let s = c.snapshot();
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.p99_batch_latency, Duration::ZERO);
    }

    #[test]
    fn fresh_server_rates_divide_by_zero_safely() {
        // Pin the divide-by-zero guards: every ratio on a fresh collector
        // is exactly 0.0 (not NaN or ∞), and stays finite when only the
        // numerator side has moved.
        let c = StatsCollector::default();
        let s = c.snapshot();
        assert_eq!(s.cache_hit_rate, 0.0, "no lookups yet → rate 0.0");
        assert_eq!(s.mean_batch_size, 0.0, "no batches yet → mean 0.0");
        assert!(s.cache_hit_rate.is_finite() && s.mean_batch_size.is_finite());
        // Queries recorded without any batch: the mean stays guarded.
        c.record_queries(5);
        let s = c.snapshot();
        assert_eq!(s.mean_batch_size, 0.0);
        // Hits with zero misses: rate is exactly 1.0 (denominator is
        // hits + misses, not misses alone).
        c.record_cache_hits(3);
        let s = c.snapshot();
        assert_eq!(s.cache_hit_rate, 1.0);
        // Display must render a fresh collector without panicking.
        let text = StatsCollector::default().snapshot().to_string();
        assert!(text.contains("0 queries"));
    }

    #[test]
    fn hit_rate_and_quantiles() {
        let c = StatsCollector::default();
        c.record_queries(4);
        c.record_cache_hits(3);
        c.record_cache_misses(1);
        c.record_dedup_hits(2);
        for us in [100u64, 200, 300, 400] {
            c.record_batch(Duration::from_micros(us));
        }
        let s = c.snapshot();
        // Dedup hits are tracked separately and do not dilute the LRU rate.
        assert_eq!(s.cache_hit_rate, 0.75);
        assert_eq!(s.dedup_hits, 2);
        assert_eq!(s.mean_batch_size, 1.0);
        assert_eq!(s.p50_batch_latency, Duration::from_micros(200));
        assert_eq!(s.p99_batch_latency, Duration::from_micros(400));
    }

    #[test]
    fn counters_flow_to_obs_registry() {
        let obs = Obs::enabled();
        let c = StatsCollector::with_obs(obs.clone());
        c.record_queries(7);
        c.record_cache_hits(2);
        c.record_batch(Duration::from_micros(150));
        c.record_queue_wait(Duration::from_micros(40));
        c.record_batch_assembly(Duration::from_micros(60));
        let report = obs.report();
        assert_eq!(report.counter("serve/queries"), Some(7));
        assert_eq!(report.counter("serve/cache_hits"), Some(2));
        assert_eq!(report.counter("serve/batches"), Some(1));
        assert_eq!(report.span("serve/engine").expect("span").count, 1);
        assert_eq!(report.span("serve/queue_wait").expect("span").count, 1);
        assert_eq!(report.span("serve/batch_assembly").expect("span").count, 1);
    }

    #[test]
    fn breaker_transitions_log_events() {
        let obs = Obs::enabled();
        let c = StatsCollector::with_obs(obs.clone());
        c.record_breaker_trip();
        c.record_breaker_reset();
        let report = obs.report();
        assert_eq!(report.counter("serve/breaker_trips"), Some(1));
        assert_eq!(report.counter("serve/breaker_resets"), Some(1));
        let breaker_events: Vec<_> = report
            .events
            .iter()
            .filter(|e| e.name == "serve/breaker")
            .collect();
        assert_eq!(breaker_events.len(), 2);
        assert!(breaker_events[0].detail.contains("tripped"));
        assert!(breaker_events[1].detail.contains("closed"));
    }

    #[test]
    fn disabled_obs_is_upgraded_so_stats_still_count() {
        let c = StatsCollector::with_obs(Obs::disabled());
        c.record_queries(3);
        assert_eq!(c.snapshot().queries_served, 3);
        assert!(c.obs().is_enabled());
    }

    #[test]
    fn robustness_counters_flow_to_snapshot() {
        let c = StatsCollector::default();
        c.record_shed_overload(3);
        c.record_shed_degraded(2);
        c.record_deadline_expired(5);
        c.record_worker_panic();
        c.record_worker_respawn();
        c.record_breaker_trip();
        c.record_breaker_reset();
        c.record_engine_retries(4);
        c.record_failed_queries(7);
        let s = c.snapshot();
        assert_eq!(s.shed_overload, 3);
        assert_eq!(s.shed_degraded, 2);
        assert_eq!(s.deadline_expired, 5);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.breaker_resets, 1);
        assert_eq!(s.engine_retries, 4);
        assert_eq!(s.failed_queries, 7);
        let text = s.to_string();
        assert!(text.contains("shed 3 overload"));
        assert!(text.contains("breaker 1 trips"));
    }

    #[test]
    fn fresh_server_hedge_and_failover_rates_divide_by_zero_safely() {
        // The guard that covers cache_hit_rate / mean_batch_size must also
        // cover the fleet-era counters: a fresh server (and a fresh merge)
        // reports exactly 0.0, never NaN.
        let s = StatsCollector::default().snapshot();
        assert_eq!(s.failovers, 0);
        assert_eq!(s.hedges, 0);
        assert_eq!(s.hedge_win_rate, 0.0, "no hedges yet → rate 0.0");
        assert!(s.hedge_win_rate.is_finite());
        let merged = s.merge(&ServerStats::default());
        assert_eq!(merged.hedge_win_rate, 0.0);
        assert!(merged.cache_hit_rate.is_finite() && merged.mean_batch_size.is_finite());
        // Wins with hedges: the rate is exact.
        let c = StatsCollector::default();
        c.record_hedge();
        c.record_hedge();
        c.record_hedge_win();
        let s = c.snapshot();
        assert_eq!(s.hedge_win_rate, 0.5);
        assert!(s.to_string().contains("2 hedges (1 won)"));
    }

    #[test]
    fn merge_sums_counters_and_combines_latency_histograms() {
        let a = StatsCollector::default();
        a.record_queries(10);
        a.record_cache_hits(4);
        a.record_cache_misses(6);
        a.record_batch(Duration::from_micros(100));
        a.record_batch(Duration::from_micros(200));
        a.record_failover();
        let b = StatsCollector::default();
        b.record_queries(5);
        b.record_cache_hits(5);
        b.record_batch(Duration::from_micros(4_000));
        b.record_hedge();
        b.record_hedge_win();
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let m = sa.merge(&sb);
        assert_eq!(m.queries_served, 15);
        assert_eq!(m.batches, 3);
        assert_eq!(m.mean_batch_size, 5.0);
        assert_eq!(m.cache_hit_rate, 9.0 / 15.0);
        assert_eq!(m.failovers, 1);
        assert_eq!(m.hedges, 1);
        assert_eq!(m.hedge_win_rate, 1.0);
        assert_eq!(m.latency_hist.count, 3);
        // Reuses the obs histogram merge: commutative, fresh is identity.
        assert_eq!(m, sb.merge(&sa));
        assert_eq!(
            sa.merge(&ServerStats::default()).latency_hist,
            sa.latency_hist
        );
        // Merged quantiles come from the combined histogram and never
        // understate: the p99 must see b's 4ms outlier.
        assert!(m.p99_batch_latency >= Duration::from_micros(4_000));
        assert!(m.p50_batch_latency >= Duration::from_micros(100));
    }

    #[test]
    fn latency_ring_wraps_instead_of_growing() {
        let c = StatsCollector::default();
        for i in 0..(LATENCY_RING as u64 + 10) {
            c.record_batch(Duration::from_micros(i));
        }
        let s = c.snapshot();
        assert_eq!(s.batches, LATENCY_RING as u64 + 10);
        // The oldest samples (0..10) were overwritten.
        assert!(s.p50_batch_latency >= Duration::from_micros(10));
    }
}
