//! Versioned graph store with validated, WAL-durable mutation commits —
//! the graph-side mirror of [`ModelStore`](crate::ModelStore).
//!
//! A [`GraphStore`] owns the authoritative [`MutableGraph`], its
//! [`MutationWal`], and the currently served [`Dataset`] behind an
//! `RwLock`. A mutation batch becomes visible only after it survives the
//! full validated-commit protocol:
//!
//! 1. **Stage** — the batch is applied to a clone of the live graph;
//!    a semantically invalid batch (unknown node, double retire) is
//!    rejected with a typed [`GraphError`] before anything touches disk.
//! 2. **Log** — the batch is appended to the WAL *and read back*
//!    ([`MutationWal::log_verified`]); a torn/bit-flipped record is
//!    detected, the log is repaired to its pre-append state, and the
//!    commit is refused. The WAL therefore only ever holds records that
//!    replay — the live graph's digest always equals the replay digest.
//! 3. **Swap** — the staged graph becomes authoritative, a new
//!    [`Dataset`] generation is published, and the caller receives a
//!    [`GraphCommit`] carrying the k-hop [`AffectedRegion`] for
//!    incremental cache invalidation.
//!
//! A rejected commit at any step leaves the previous generation serving,
//! untouched — exactly the `ModelStore` hot-swap contract, applied to the
//! graph instead of the parameters.

use amdgcnn_data::Dataset;
use amdgcnn_graph::{
    AffectedRegion, GraphError, GraphMutation, MutableGraph, MutationWal, WalError, WalRecovery,
};
use amdgcnn_obs::{Counter, Obs, Timer};
use amdgcnn_tensor::durable::DiskFault;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Error surface of [`GraphStore`] commits and recovery.
#[derive(Debug)]
pub enum GraphStoreError {
    /// The batch (or a replayed WAL record) is semantically invalid
    /// against the graph it targets.
    Graph(GraphError),
    /// The WAL append was damaged in flight (torn write, bit flip, lost
    /// flush). The log has been repaired to its pre-append state and the
    /// commit refused — the previous generation keeps serving.
    WalFault,
    /// WAL recovery failed: I/O trouble or an undecodable record.
    Wal(WalError),
    /// Other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for GraphStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphStoreError::Graph(e) => write!(f, "mutation batch rejected: {e}"),
            GraphStoreError::WalFault => {
                write!(f, "WAL append damaged; log repaired and commit refused")
            }
            GraphStoreError::Wal(e) => write!(f, "mutation WAL recovery: {e}"),
            GraphStoreError::Io(e) => write!(f, "graph store I/O: {e}"),
        }
    }
}

impl std::error::Error for GraphStoreError {}

impl From<io::Error> for GraphStoreError {
    fn from(e: io::Error) -> Self {
        GraphStoreError::Io(e)
    }
}

impl From<WalError> for GraphStoreError {
    fn from(e: WalError) -> Self {
        GraphStoreError::Wal(e)
    }
}

/// Receipt for one committed mutation batch, carrying everything the
/// serving tier needs to roll forward.
#[derive(Debug, Clone)]
pub struct GraphCommit {
    /// Generation the batch committed as (1 for the first commit).
    pub generation: u64,
    /// Conservative k-hop invalidation region (at the dataset's
    /// extraction radius): every cached query this commit may have
    /// changed satisfies [`AffectedRegion::affects`].
    pub region: AffectedRegion,
    /// The freshly published dataset generation; engines rebuilt against
    /// it serve the post-mutation graph.
    pub dataset: Arc<Dataset>,
}

struct Inner {
    graph: MutableGraph,
    wal: MutationWal,
}

/// A hot-mutable slot holding the currently served graph (see module
/// docs).
pub struct GraphStore {
    inner: Mutex<Inner>,
    current: RwLock<Arc<Dataset>>,
    /// Extraction radius the affected regions are computed at.
    hops: usize,
    commits: Counter,
    rejected_commits: Counter,
    apply_span: Timer,
    obs: Obs,
}

impl GraphStore {
    /// Adopt `ds` as generation 0 with a fresh, empty WAL at `wal_path`.
    ///
    /// # Errors
    /// Propagates WAL-creation I/O errors.
    pub fn create(ds: Dataset, wal_path: &Path) -> io::Result<Self> {
        let wal = MutationWal::create(wal_path)?;
        let graph = MutableGraph::from_graph(ds.graph.clone());
        Ok(Self::assemble(ds, graph, wal))
    }

    /// Recover from an existing WAL: decode every surviving batch (a
    /// torn tail is repaired by truncation — the normal post-crash
    /// state), replay them over `base`, and serve the rebuilt
    /// generation. The recovered graph is bit-identical to the live
    /// graph that logged those batches.
    ///
    /// # Errors
    /// [`GraphStoreError::Wal`] on recovery failure,
    /// [`GraphStoreError::Graph`] when a CRC-valid record does not apply
    /// to the base graph (log and base disagree — surfaced, not masked).
    pub fn open(base: Dataset, wal_path: &Path) -> Result<(Self, WalRecovery), GraphStoreError> {
        let (wal, recovery) = MutationWal::open(wal_path)?;
        let graph = MutableGraph::replay(base.graph.clone(), &recovery.batches)
            .map_err(GraphStoreError::Graph)?;
        let snapshot = graph.snapshot();
        let mut ds = base;
        ds.graph = (*snapshot).clone();
        Ok((Self::assemble(ds, graph, wal), recovery))
    }

    /// `ds.graph` must already hold (a clone of) `graph`'s current
    /// snapshot content.
    fn assemble(ds: Dataset, graph: MutableGraph, wal: MutationWal) -> Self {
        let obs = Obs::enabled();
        let hops = ds.subgraph.hops as usize;
        Self {
            inner: Mutex::new(Inner { graph, wal }),
            current: RwLock::new(Arc::new(ds)),
            hops,
            commits: obs.counter("graph/commits"),
            rejected_commits: obs.counter("graph/rejected_commits"),
            apply_span: obs.timer("graph/apply"),
            obs,
        }
    }

    /// Re-register the store's `graph/*` counters and apply-span timer in
    /// `obs`, so one report covers mutation commits alongside serving.
    /// Call right after construction, before any commits. A disabled
    /// handle is upgraded to a private enabled registry.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        let obs = if obs.is_enabled() {
            obs
        } else {
            Obs::enabled()
        };
        self.commits = obs.counter("graph/commits");
        self.rejected_commits = obs.counter("graph/rejected_commits");
        self.apply_span = obs.timer("graph/apply");
        self.obs = obs;
        self
    }

    /// The currently served dataset generation. The `Arc` stays valid
    /// across later commits — readers pin the generation they started on.
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&lock_read(&self.current))
    }

    /// Current graph generation (0 until the first committed batch).
    pub fn generation(&self) -> u64 {
        self.lock_inner().graph.generation()
    }

    /// Content digest of the live graph (see
    /// [`amdgcnn_graph::graph_digest`]).
    pub fn digest(&self) -> u32 {
        self.lock_inner().graph.digest()
    }

    /// Live (non-retired) edges in the current generation.
    pub fn num_live_edges(&self) -> usize {
        self.lock_inner().graph.num_live_edges()
    }

    /// Batches successfully committed since construction.
    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    /// Commit attempts refused (invalid batch or damaged WAL append).
    pub fn rejected_commits(&self) -> u64 {
        self.rejected_commits.get()
    }

    /// The observability registry behind the store's counters.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Run the validated-commit protocol on `batch` (see module docs),
    /// optionally under an injected [`DiskFault`] on the WAL append.
    ///
    /// # Errors
    /// [`GraphStoreError::Graph`] when validation refuses the batch,
    /// [`GraphStoreError::WalFault`] when the append came back damaged
    /// (the log is repaired, the commit refused), [`GraphStoreError::Io`]
    /// on real I/O failure. On every error path the previous generation
    /// keeps serving and
    /// [`rejected_commits`](GraphStore::rejected_commits) is incremented.
    pub fn apply(
        &self,
        batch: &[GraphMutation],
        fault: Option<DiskFault>,
    ) -> Result<GraphCommit, GraphStoreError> {
        let span = self.apply_span.start();
        let outcome = self.apply_inner(batch, fault);
        span.finish();
        if outcome.is_err() {
            self.rejected_commits.inc();
        }
        outcome
    }

    fn apply_inner(
        &self,
        batch: &[GraphMutation],
        fault: Option<DiskFault>,
    ) -> Result<GraphCommit, GraphStoreError> {
        let mut inner = self.lock_inner();
        // Stage: validate on a clone so a refused batch touches nothing.
        let mut staged = inner.graph.clone();
        let commit = staged.apply(batch).map_err(GraphStoreError::Graph)?;
        // Log: durable and read-back-verified before anything is visible.
        match inner.wal.log_verified(batch, fault) {
            Ok(true) => {}
            Ok(false) => return Err(GraphStoreError::WalFault),
            Err(e) => return Err(GraphStoreError::Io(e)),
        }
        // Swap: adopt the staged graph and publish the new generation.
        inner.graph = staged;
        let mut ds = (*self.dataset()).clone();
        ds.graph = (*commit.after).clone();
        let dataset = Arc::new(ds);
        *lock_write(&self.current) = Arc::clone(&dataset);
        drop(inner);
        self.commits.inc();
        let region = commit.region(self.hops);
        self.obs.event("graph/commit", || {
            format!(
                "generation {} committed ({} ops, {} nodes invalidated)",
                commit.generation,
                batch.len(),
                region.len()
            )
        });
        Ok(GraphCommit {
            generation: commit.generation,
            region,
            dataset,
        })
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Lock helpers recovering from poisoning: the critical sections only
/// move `Arc`s / already-validated state, so a panicking holder cannot
/// leave the slot torn.
fn lock_read(lock: &RwLock<Arc<Dataset>>) -> std::sync::RwLockReadGuard<'_, Arc<Dataset>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn lock_write(lock: &RwLock<Arc<Dataset>>) -> std::sync::RwLockWriteGuard<'_, Arc<Dataset>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}
