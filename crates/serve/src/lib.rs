//! Batched inference serving for AM-DGCNN link classification.
//!
//! Six layers, each usable on its own:
//!
//! 1. [`artifact`] — a versioned single-file model format bundling the
//!    architecture ([`am_dgcnn::ModelConfig`] with its
//!    [`am_dgcnn::GnnKind`]), the feature settings, the dataset identity,
//!    and the binary parameter checkpoint. [`save_model`]/[`load_model`]
//!    round-trip bit-exactly.
//! 2. [`engine`] — an [`InferenceEngine`] holding the loaded model and the
//!    dataset graph, answering `(u, v)` link queries with on-the-fly
//!    enclosing-subgraph extraction (the training-time `prepare_sample`
//!    path) behind an LRU cache of prepared subgraphs.
//! 3. [`server`] — a [`BatchServer`] micro-batching front-end: queries
//!    accumulate up to `max_batch`/`max_wait`, execute as one batch, and
//!    throughput/latency counters are exported via [`ServerStats`].
//! 4. [`store`] — a [`ModelStore`] holding the live engine behind a
//!    versioned slot with **validated hot-swap**: a replacement artifact
//!    must pass checksum, finiteness, and dataset-binding checks before it
//!    becomes visible, so a corrupt file can never displace a good model.
//! 5. [`graph_store`] — a [`GraphStore`] holding the live *graph* behind
//!    a generation-versioned slot with **validated mutation commits**: a
//!    batch must pass semantic validation and a read-back-verified WAL
//!    append before a new snapshot generation becomes visible, so a
//!    damaged write can never corrupt the served graph — and the WAL
//!    always replays to a graph bit-identical to the live one.
//! 6. [`fleet`] — a [`Fleet`] of `BatchServer` replicas behind a
//!    consistent-hash router ([`ring`], [`health`]): automatic failover,
//!    tail-latency hedging, live drain/respawn, graph-generation rolls
//!    with incremental k-hop cache invalidation
//!    ([`Fleet::roll_graph`]), and fleet-level health — every answer
//!    bit-identical to a single server's, whichever replica computes it.
//!
//! The server layer is fault-tolerant: admission is gated by a bounded
//! queue and a circuit breaker ([`RobustnessConfig`]), queued queries can
//! carry deadlines, engine panics are isolated per batch with the worker
//! respawned, and transient faults are retried with backoff. Every
//! admitted query resolves with class probabilities or a typed [`Error`] —
//! never a caller panic. A deterministic [`am_dgcnn::FaultInjector`] can
//! be attached to the engine to exercise all of this in tests.
//!
//! ```
//! use amdgcnn_serve::{save_model, ArtifactMeta, BatchConfig, BatchServer, InferenceEngine};
//! use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
//! use amdgcnn_data::{wn18_like, Wn18Config};
//!
//! let ds = wn18_like(&Wn18Config {
//!     num_nodes: 60, num_edges: 220, train_links: 24, test_links: 8,
//!     ..Default::default()
//! });
//! let hyper = Hyperparams { lr: 5e-3, hidden_dim: 8, sort_k: 10 };
//! let exp = Experiment::builder().gnn(GnnKind::am_dgcnn()).hyper(hyper).seed(1).build();
//! let mut session = exp.session(&ds, None).expect("session");
//! session.trainer
//!     .train(&session.model, &mut session.ps, &session.train_samples, 1)
//!     .expect("train");
//!
//! // Persist, reload, serve.
//! let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
//! let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 1).expect("meta");
//! let mut artifact = Vec::new();
//! save_model(&meta, &session.ps, &mut artifact).expect("save");
//!
//! let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("load");
//! let server = BatchServer::start(engine, BatchConfig::default());
//! let link = ds.test[0];
//! let probs = server
//!     .submit((link.u, link.v))
//!     .expect("admitted")
//!     .wait()
//!     .expect("answered");
//! assert_eq!(probs.len(), ds.num_classes);
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
pub mod error;
pub mod fleet;
pub mod graph_store;
pub mod health;
pub mod ring;
pub mod server;
pub mod stats;
pub mod store;

pub use artifact::{
    instantiate, load_model, load_model_file, save_model, save_model_file, ArtifactMeta,
    FeatureMeta,
};
pub use engine::{ClassProbs, InferenceEngine, LinkQuery};
pub use error::Error;
pub use fleet::{Fleet, FleetConfig, FleetStats};
pub use graph_store::{GraphCommit, GraphStore, GraphStoreError};
pub use health::{FleetHealth, ReplicaHealth};
pub use ring::HashRing;
pub use server::{BatchConfig, BatchServer, PendingQuery, RobustnessConfig};
pub use stats::ServerStats;
pub use store::ModelStore;
