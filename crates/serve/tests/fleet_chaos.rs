//! Chaos-harness proof of the fleet invariant: under any deterministic
//! fault schedule that leaves at least one replica healthy, every query
//! submitted to the [`Fleet`] resolves — with probabilities bit-identical
//! to a single clean server's, or with a typed error. Never a hang, never
//! a wrong answer.
//!
//! The schedules come from [`FleetPlan::chaos`], which by construction
//! never faults the protected replica (`seed % replicas`), so the
//! invariant's precondition holds for every generated plan. A fixed seed
//! matrix runs in CI; `AMDGCNN_CHAOS_SEED` adds one more seed from the
//! environment for ad-hoc exploration.

use am_dgcnn::{
    Experiment, FaultInjector, FeatureConfig, FleetAction, FleetInjector, FleetPlan, GnnKind,
    Hyperparams,
};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_obs::Obs;
use amdgcnn_serve::{
    save_model, ArtifactMeta, BatchConfig, BatchServer, ClassProbs, Error, Fleet, FleetConfig,
    FleetHealth, InferenceEngine, LinkQuery, RobustnessConfig,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Train once per process; every fleet and every reference server reloads
/// the same artifact bytes.
fn artifact_and_ds() -> &'static (Vec<u8>, Dataset) {
    static CACHE: OnceLock<(Vec<u8>, Dataset)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let ds = wn18_like(&Wn18Config {
            num_nodes: 60,
            num_edges: 220,
            train_links: 24,
            test_links: 8,
            ..Default::default()
        });
        let exp = Experiment::builder()
            .gnn(GnnKind::am_dgcnn())
            .hyper(Hyperparams {
                lr: 5e-3,
                hidden_dim: 8,
                sort_k: 10,
            })
            .seed(7)
            .build();
        let mut session = exp.session(&ds, None).expect("session");
        session
            .trainer
            .train(&session.model, &mut session.ps, &session.train_samples, 1)
            .expect("train");
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 1).expect("meta");
        let mut buf = Vec::new();
        save_model(&meta, &session.ps, &mut buf).expect("save");
        (buf, ds)
    })
}

/// Ground truth from one clean single server: the bit-exact probabilities
/// every fleet answer must reproduce, whichever replica computed it.
fn reference_answers(queries: &[LinkQuery]) -> HashMap<LinkQuery, ClassProbs> {
    let (artifact, ds) = artifact_and_ds();
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");
    let server = BatchServer::start(engine, BatchConfig::default());
    let mut expected = HashMap::new();
    for &q in queries {
        if let std::collections::hash_map::Entry::Vacant(slot) = expected.entry(q) {
            let probs = server
                .submit(q)
                .expect("reference admits")
                .wait()
                .expect("reference answers");
            slot.insert(probs);
        }
    }
    server.shutdown();
    expected
}

fn chaos_fleet(plan: &FleetPlan, cfg: FleetConfig) -> Fleet {
    let (artifact, ds) = artifact_and_ds();
    let injectors = plan
        .engine_plans
        .iter()
        .map(|p| Arc::new(FaultInjector::new(p.clone())))
        .collect();
    Fleet::start_with(artifact.clone(), ds.clone(), cfg, Obs::enabled(), injectors)
        .expect("fleet starts")
}

/// Drive `queries` queries through a fleet while replaying a chaos plan,
/// asserting the invariant on every single one. Returns (answered, errors).
fn drive_chaos(fleet: &Fleet, plan: &FleetPlan, queries: &[LinkQuery], n: usize) -> (u64, u64) {
    let expected = reference_answers(queries);
    let injector = FleetInjector::new(plan.clone());
    let (mut answered, mut errored) = (0u64, 0u64);
    for i in 0..n {
        for action in injector.actions_for_next_query() {
            fleet.apply(action).expect("respawn rebuilds from artifact");
        }
        let q = queries[i % queries.len()];
        match fleet.query(q) {
            Ok(probs) => {
                assert_eq!(
                    &probs, &expected[&q],
                    "query {i} ({q:?}): fleet answer diverged from the single-server reference"
                );
                answered += 1;
            }
            // A typed error is a legal resolution; returning at all (no
            // hang) plus bit-identity of every answer is the invariant.
            Err(_) => errored += 1,
        }
    }
    (answered, errored)
}

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 29, 47];
    if let Ok(extra) = std::env::var("AMDGCNN_CHAOS_SEED") {
        seeds.push(extra.parse().expect("AMDGCNN_CHAOS_SEED must be a u64"));
    }
    seeds
}

/// The acceptance run: >=1000 queries per seed against a 3-replica fleet
/// while the chaos schedule crashes, drains, respawns, and breaker-trips
/// the unprotected replicas and their engines inject panics, transients,
/// and latency. Every query resolves, every answer is bit-identical, and
/// — because the protected replica is always routable — no query fails.
#[test]
fn chaos_schedules_never_hang_and_never_corrupt_answers() {
    let (_, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    for seed in chaos_seeds() {
        let plan = FleetPlan::chaos(seed, 3, 1000, 24);
        assert!(plan.faults_possible(), "seed {seed}: degenerate chaos plan");
        let fleet = chaos_fleet(
            &plan,
            FleetConfig {
                replicas: 3,
                hedge_after: Duration::from_millis(5),
                ..FleetConfig::default()
            },
        );
        let (answered, errored) = drive_chaos(&fleet, &plan, &queries, 1000);
        assert_eq!(
            (answered, errored),
            (1000, 0),
            "seed {seed}: protected replica is always routable, so every \
             query must be answered"
        );
        let stats = fleet.stats();
        assert_eq!(stats.queries, 1000, "seed {seed}");
        assert_eq!(stats.answered, 1000, "seed {seed}");
        let planned = |f: fn(&FleetAction) -> bool| {
            plan.events.iter().filter(|e| f(&e.action)).count() as u64
        };
        assert_eq!(
            stats.crashes,
            planned(|a| matches!(a, FleetAction::Crash { .. })),
            "seed {seed}: every planned crash must land (plan only crashes live replicas)"
        );
        assert_eq!(
            stats.respawns,
            planned(|a| matches!(a, FleetAction::Respawn { .. })),
            "seed {seed}"
        );
        assert_eq!(
            stats.drains,
            planned(|a| matches!(a, FleetAction::Drain { .. })),
            "seed {seed}"
        );
        // The chaos run must actually exercise the router's fault paths.
        if stats.crashes + stats.drains > 0 {
            assert!(
                stats.failovers > 0,
                "seed {seed}: replicas went down but no query ever failed over"
            );
            assert!(
                stats.health_transitions > 0,
                "seed {seed}: replicas went down but health never moved"
            );
        }
        // Fleet counters land in the shared obs registry for the report.
        let report = fleet.obs().report();
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("fleet/queries"), "seed {seed}");
        assert!(json.contains("fleet/query"), "seed {seed}");
        fleet.shutdown();
    }
}

/// Killing replicas degrades the fleet but never silences it; respawning
/// restores full health; queries keep answering (bit-identically)
/// throughout. All while the artifact is reloaded from the bytes the
/// fleet retained — no external state needed to heal.
#[test]
fn kill_and_respawn_cycle_degrades_and_recovers_health() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let expected = reference_answers(&queries);
    let fleet =
        Fleet::start(artifact.clone(), ds.clone(), FleetConfig::default()).expect("fleet starts");
    assert_eq!(fleet.health(), FleetHealth::Healthy);

    fleet.kill_replica(0);
    assert_eq!(fleet.health(), FleetHealth::Degraded);
    fleet.kill_replica(1);
    assert_eq!(
        fleet.health(),
        FleetHealth::Degraded,
        "one replica still up"
    );
    for &q in &queries {
        assert_eq!(
            fleet.query(q).expect("last replica answers everything"),
            expected[&q]
        );
    }

    fleet.respawn_replica(0).expect("respawn 0");
    fleet.respawn_replica(1).expect("respawn 1");
    assert_eq!(fleet.health(), FleetHealth::Healthy);
    for &q in &queries {
        assert_eq!(fleet.query(q).expect("healthy fleet answers"), expected[&q]);
    }
    let stats = fleet.stats();
    assert_eq!(stats.crashes, 2);
    assert_eq!(stats.respawns, 2);
    assert!(stats.health_transitions >= 2, "healthy->degraded->healthy");
    fleet.shutdown();
}

/// A replica whose breaker is forced open still serves as a cooldown
/// probe path, and the router spills its keys to ring successors in the
/// meantime — queries keep answering with bit-identical probabilities.
#[test]
fn tripped_breaker_spills_to_successors_without_wrong_answers() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let expected = reference_answers(&queries);
    let fleet = Fleet::start(
        artifact.clone(),
        ds.clone(),
        FleetConfig {
            robust: RobustnessConfig {
                // A long cooldown keeps the breaker open for the whole
                // test, forcing the spill path rather than a lucky probe.
                breaker_cooldown: Duration::from_secs(60),
                ..RobustnessConfig::default()
            },
            ..FleetConfig::default()
        },
    )
    .expect("fleet starts");
    fleet.trip_replica_breaker(0);
    assert_eq!(fleet.health(), FleetHealth::Degraded);
    for &q in &queries {
        assert_eq!(
            fleet.query(q).expect("successors absorb the spilled keys"),
            expected[&q]
        );
    }
    fleet.shutdown();
}

/// Regression for the drain guarantee: queries sitting in a draining
/// replica's queue are *redistributed* to ring successors — reply
/// channels intact — not resolved with errors. Callers blocked on those
/// queries get correct answers from whichever replica adopted them.
#[test]
fn drain_redistributes_queued_requests_instead_of_erroring_them() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let expected = reference_answers(&queries);
    // Pin every engine call on the victim replica at 40ms so its queue
    // backs up behind the in-flight batch; hedging is pushed out of the
    // way so redistribution — not a hedge — must deliver the answers.
    let slow = am_dgcnn::FaultPlan {
        latency_every_n_calls: Some(1),
        latency: Duration::from_millis(40),
        ..am_dgcnn::FaultPlan::default()
    };
    let victim = 0usize;
    let fleet = Arc::new(
        Fleet::start_with(
            artifact.clone(),
            ds.clone(),
            FleetConfig {
                replicas: 2,
                batch: BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::from_micros(100),
                },
                hedge_after: Duration::from_secs(30),
                ..FleetConfig::default()
            },
            Obs::disabled(),
            vec![Arc::new(FaultInjector::new(slow))],
        )
        .expect("fleet starts"),
    );
    // Keys whose primary is the slow victim replica, so fleet queries
    // queue up behind its pinned worker.
    let victim_keys: Vec<LinkQuery> = queries
        .iter()
        .copied()
        .filter(|&q| fleet.route(q) == victim)
        .collect();
    assert!(
        !victim_keys.is_empty(),
        "fixture must hash at least one test link to replica {victim}"
    );
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let fleet = Arc::clone(&fleet);
            let q = victim_keys[i % victim_keys.len()];
            std::thread::spawn(move || (q, fleet.query(q)))
        })
        .collect();
    // Let the clients pile into the victim's queue, then drain it.
    std::thread::sleep(Duration::from_millis(10));
    let moved = fleet.drain_replica(victim);
    assert!(
        moved > 0,
        "victim's queue should have held requests to redistribute"
    );
    for h in handles {
        let (q, outcome) = h.join().expect("client thread");
        let probs = outcome.expect("drained queries are adopted, not errored");
        assert_eq!(
            probs, expected[&q],
            "adopted query answered bit-identically"
        );
    }
    let stats = fleet.stats();
    assert_eq!(stats.drains, 1);
    assert!(stats.redistributed >= moved as u64);
    fleet.shutdown();
}

/// Graceful operations under live concurrent traffic: replicas are
/// drained and respawned one after another while client threads hammer
/// the fleet. Not a single request fails, and every answer stays
/// bit-identical.
#[test]
fn drain_respawn_under_live_traffic_loses_no_request() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let expected = Arc::new(reference_answers(&queries));
    let fleet = Arc::new(
        Fleet::start(artifact.clone(), ds.clone(), FleetConfig::default()).expect("fleet starts"),
    );
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let fleet = Arc::clone(&fleet);
            let expected = Arc::clone(&expected);
            let queries = queries.clone();
            std::thread::spawn(move || {
                for i in 0..120 {
                    let q = queries[(c * 7 + i) % queries.len()];
                    let probs = fleet
                        .query(q)
                        .expect("graceful drain/respawn must not fail a request");
                    assert_eq!(probs, expected[&q]);
                }
            })
        })
        .collect();
    for r in 0..fleet.replicas() {
        fleet.drain_replica(r);
        fleet.respawn_replica(r).expect("respawn under traffic");
        std::thread::sleep(Duration::from_millis(2));
    }
    for c in clients {
        c.join().expect("client saw no failed request");
    }
    let stats = fleet.stats();
    assert_eq!(stats.failed, 0, "{stats}");
    assert_eq!(stats.queries, 4 * 120);
    fleet.shutdown();
}

/// Single-replica degenerate case, drain side: draining the only replica
/// has no ring successor to redistribute to, so queued requests and later
/// queries must fail *typed* ([`Error::FleetUnavailable`]) and *promptly*
/// — never hang on a ring with no live slot.
#[test]
fn single_replica_drain_fails_typed_not_hanging() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    // Pin the lone engine so client queries pile up in its queue before
    // the drain pulls the rug out.
    let slow = am_dgcnn::FaultPlan {
        latency_every_n_calls: Some(1),
        latency: Duration::from_millis(40),
        ..am_dgcnn::FaultPlan::default()
    };
    let fleet = Arc::new(
        Fleet::start_with(
            artifact.clone(),
            ds.clone(),
            FleetConfig {
                replicas: 1,
                batch: BatchConfig {
                    max_batch: 1,
                    max_wait: Duration::from_micros(100),
                },
                hedge_after: Duration::from_secs(30),
                ..FleetConfig::default()
            },
            Obs::disabled(),
            vec![Arc::new(FaultInjector::new(slow))],
        )
        .expect("fleet starts"),
    );
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let fleet = Arc::clone(&fleet);
            let q = queries[i % queries.len()];
            std::thread::spawn(move || fleet.query(q))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    fleet.drain_replica(0);
    // Queued requests had nowhere to go: each resolves (in-flight work may
    // still answer; the rest error typed), and none hangs the join.
    for h in handles {
        match h.join().expect("client thread resolves") {
            Ok(probs) => assert_eq!(probs.len(), ds.num_classes),
            Err(e) => assert!(
                matches!(e, Error::FleetUnavailable { .. }),
                "queued request on a successor-less drain must fail typed, got {e}"
            ),
        }
    }
    // The empty ring refuses new queries immediately with the same type.
    let err = fleet.query(queries[0]).expect_err("no replica is routable");
    assert!(matches!(err, Error::FleetUnavailable { .. }), "{err}");
    assert_eq!(fleet.stats().drains, 1);
    fleet.shutdown();
}

/// Single-replica degenerate case, crash side: after the last replica
/// crashes the fleet reports [`Error::FleetUnavailable`]; respawning that
/// slot restores routing and answers stay bit-identical.
#[test]
fn respawn_after_last_crash_restores_routing() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let expected = reference_answers(&queries);
    let fleet = Fleet::start(
        artifact.clone(),
        ds.clone(),
        FleetConfig {
            replicas: 1,
            ..FleetConfig::default()
        },
    )
    .expect("fleet starts");
    for &q in &queries {
        assert_eq!(fleet.query(q).expect("healthy"), expected[&q]);
    }
    fleet.kill_replica(0);
    let err = fleet
        .query(queries[0])
        .expect_err("a fully crashed fleet cannot answer");
    assert!(matches!(err, Error::FleetUnavailable { .. }), "{err}");
    fleet.respawn_replica(0).expect("respawn from artifact");
    for &q in &queries {
        assert_eq!(
            fleet.query(q).expect("routing restored"),
            expected[&q],
            "post-respawn answers are bit-identical"
        );
    }
    let stats = fleet.stats();
    assert_eq!(stats.crashes, 1, "{stats}");
    assert_eq!(stats.respawns, 1, "{stats}");
    fleet.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fleet invariant over *random* chaos schedules: any generated
    /// plan (crashes, drains, respawns, breaker trips, engine faults on
    /// unprotected replicas) leaves every query resolved and every
    /// answer bit-identical. Smaller than the seed-matrix run, but the
    /// schedule space is explored afresh on every test run.
    #[test]
    fn random_chaos_schedules_uphold_the_fleet_invariant(
        seed in 0u64..1_000_000,
        replicas in 2usize..5,
        events in 2usize..12,
    ) {
        let (_, ds) = artifact_and_ds();
        let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
        let n = 150;
        let plan = FleetPlan::chaos(seed, replicas, n as u64, events);
        let fleet = chaos_fleet(&plan, FleetConfig {
            replicas,
            hedge_after: Duration::from_millis(5),
            ..FleetConfig::default()
        });
        let (answered, errored) = drive_chaos(&fleet, &plan, &queries, n);
        prop_assert_eq!(answered + errored, n as u64, "every query resolves");
        prop_assert_eq!(errored, 0, "protected replica always answers");
        fleet.shutdown();
    }
}
