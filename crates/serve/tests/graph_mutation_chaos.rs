//! Chaos-harness proof of the live-mutation invariants: a fleet serving a
//! graph that mutates under it — interleaved with replica crashes, drains,
//! respawns, breaker trips, engine faults, and injected WAL disk faults —
//! never hangs, never serves a stale answer, and keeps its mutation log
//! replayable to a graph bit-identical to the live one.
//!
//! Concretely, per seeded schedule:
//!
//! - **No hang, no wrong answer.** Every query resolves with
//!   probabilities bit-identical to a clean reference engine bound to the
//!   graph generation that was live when the query was submitted.
//! - **Unaffected means untouched.** A query whose endpoints never fell
//!   inside any commit's k-hop region answers bit-identically to the
//!   static generation-0 reference for the whole run — the invalidation
//!   rule's soundness contract, observed end to end.
//! - **No stale serves.** Every replica's `stale_serves` counter stays 0:
//!   incremental invalidation dropped every affected cache entry, so the
//!   generation-tag backstop in the engine never fired.
//! - **Durability.** A faulted WAL append is rejected (the old generation
//!   keeps serving), and at any point the log replays over the base graph
//!   to the live graph's exact digest — including through a simulated
//!   crash (fresh [`GraphStore::open`] from the file).

use am_dgcnn::{
    Experiment, FaultInjector, FeatureConfig, FleetInjector, FleetPlan, GnnKind, Hyperparams,
};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_graph::{graph_digest, GraphMutation, MutableGraph};
use amdgcnn_obs::Obs;
use amdgcnn_serve::{
    save_model, ArtifactMeta, Fleet, FleetConfig, GraphStore, GraphStoreError, InferenceEngine,
    LinkQuery,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Train once per process; every fleet and reference engine reloads the
/// same artifact bytes.
fn artifact_and_ds() -> &'static (Vec<u8>, Dataset) {
    static CACHE: OnceLock<(Vec<u8>, Dataset)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let ds = wn18_like(&Wn18Config {
            num_nodes: 60,
            num_edges: 220,
            train_links: 24,
            test_links: 8,
            ..Default::default()
        });
        let exp = Experiment::builder()
            .gnn(GnnKind::am_dgcnn())
            .hyper(Hyperparams {
                lr: 5e-3,
                hidden_dim: 8,
                sort_k: 10,
            })
            .seed(7)
            .build();
        let mut session = exp.session(&ds, None).expect("session");
        session
            .trainer
            .train(&session.model, &mut session.ps, &session.train_samples, 1)
            .expect("train");
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 1).expect("meta");
        let mut buf = Vec::new();
        save_model(&meta, &session.ps, &mut buf).expect("save");
        (buf, ds)
    })
}

fn scratch_wal(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "amdgcnn-mutchaos-{tag}-{}-{seed}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join("mutations.wal")
}

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 29, 47];
    if let Ok(extra) = std::env::var("AMDGCNN_CHAOS_SEED") {
        seeds.push(extra.parse().expect("AMDGCNN_CHAOS_SEED must be a u64"));
    }
    seeds
}

/// Deterministic generator of *valid* mutation batches, mirroring the
/// graph state client-side so every generated batch commits (unless its
/// WAL append is deliberately faulted). Tracks stable edge ids exactly
/// like [`MutableGraph`] hands them out: one new slot per `AddEdge`,
/// tombstones on retire.
struct MutationGen {
    rng: StdRng,
    num_nodes: u32,
    num_types: u16,
    live_edges: Vec<u32>,
    next_slot: u32,
}

impl MutationGen {
    fn new(seed: u64, ds: &Dataset) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_0001),
            num_nodes: ds.graph.num_nodes() as u32,
            num_types: ds.graph.num_node_types() as u16,
            live_edges: (0..ds.graph.num_edges() as u32).collect(),
            next_slot: ds.graph.num_edges() as u32,
        }
    }

    fn batch(&mut self, ops: u32) -> Vec<GraphMutation> {
        let mut out = Vec::with_capacity(ops as usize);
        let mut retired_in_batch: HashSet<u32> = HashSet::new();
        for _ in 0..ops {
            let kind = self.rng.random_range(0u32..10);
            let m = match kind {
                // Mostly appends: the graph should grow under the fleet.
                0..=5 => GraphMutation::AddEdge {
                    u: self.rng.random_range(0..self.num_nodes),
                    v: self.rng.random_range(0..self.num_nodes),
                    etype: self.rng.random_range(0u16..4),
                },
                6 | 7 if self.live_edges.len() > 1 => {
                    // Retire a live edge not already retired in this batch.
                    let mut edge = None;
                    for _ in 0..8 {
                        let i = self.rng.random_range(0..self.live_edges.len());
                        let cand = self.live_edges[i];
                        if !retired_in_batch.contains(&cand) {
                            edge = Some(cand);
                            break;
                        }
                    }
                    match edge {
                        Some(e) => {
                            retired_in_batch.insert(e);
                            GraphMutation::RetireEdge { edge: e }
                        }
                        None => GraphMutation::AddNode { ntype: 0 },
                    }
                }
                8 => GraphMutation::AddNode {
                    // New node types must stay inside the feature config's
                    // one-hot range the artifact was trained with.
                    ntype: self.rng.random_range(0..self.num_types),
                },
                _ => GraphMutation::SetNodeType {
                    node: self.rng.random_range(0..self.num_nodes),
                    ntype: self.rng.random_range(0..self.num_types),
                },
            };
            out.push(m);
        }
        out
    }

    /// Advance the client-side mirror after a *successful* commit.
    fn committed(&mut self, batch: &[GraphMutation]) {
        for m in batch {
            match *m {
                GraphMutation::AddNode { .. } => self.num_nodes += 1,
                GraphMutation::AddEdge { .. } => {
                    self.live_edges.push(self.next_slot);
                    self.next_slot += 1;
                }
                GraphMutation::RetireEdge { edge } => {
                    self.live_edges.retain(|&e| e != edge);
                }
                GraphMutation::SetNodeType { .. } => {}
            }
        }
    }
}

/// The acceptance run: >=1000 queries interleaved with >=100 mutation
/// bursts per seed against a 3-replica fleet under full chaos (crashes,
/// drains, respawns, breaker trips, engine faults, WAL disk faults).
#[test]
fn mutating_graph_under_chaos_serves_fresh_answers_and_replays_exactly() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    const N: usize = 1100;
    const BURSTS: usize = 110;

    for seed in chaos_seeds() {
        let plan = FleetPlan::chaos_with_mutations(seed, 3, N as u64, 24, BURSTS, 3);
        assert!(plan.faults_possible(), "seed {seed}: degenerate plan");
        assert!(plan.mutations.len() >= BURSTS, "seed {seed}");
        let planned_ops: u64 = plan.mutations.iter().map(|m| u64::from(m.ops)).sum();
        assert!(planned_ops >= 100, "seed {seed}: too few mutation ops");

        let obs = Obs::enabled();
        let wal_path = scratch_wal("accept", seed);
        let store = GraphStore::create(ds.clone(), &wal_path)
            .expect("graph store")
            .with_obs(obs.clone());
        let injectors = plan
            .engine_plans
            .iter()
            .map(|p| Arc::new(FaultInjector::new(p.clone())))
            .collect();
        let fleet = Fleet::start_with(
            artifact.clone(),
            ds.clone(),
            FleetConfig {
                replicas: 3,
                hedge_after: Duration::from_millis(5),
                ..FleetConfig::default()
            },
            obs.clone(),
            injectors,
        )
        .expect("fleet starts");
        let injector = FleetInjector::new(plan.clone());
        let mut mutgen = MutationGen::new(seed, ds);

        // Per-generation ground truth: a clean engine bound to each
        // generation's dataset, built lazily on first use. Generation 0
        // is the untouched static graph.
        let mut gen_datasets: HashMap<u64, Arc<Dataset>> = HashMap::new();
        gen_datasets.insert(0, Arc::new(ds.clone()));
        let mut ref_engines: HashMap<u64, InferenceEngine> = HashMap::new();
        let mut ever_affected: HashSet<LinkQuery> = HashSet::new();
        let mut expected_rejects = 0u64;
        let mut faulted_some = false;

        for i in 0..N {
            for action in injector.actions_for_next_query() {
                fleet.apply(action).expect("respawn rebuilds from artifact");
            }
            for event in injector.mutations_before((i + 1) as u64) {
                let batch = mutgen.batch(event.ops);
                match store.apply(&batch, event.disk_fault) {
                    Ok(commit) => {
                        assert!(
                            event.disk_fault.is_none(),
                            "seed {seed}: a damaged WAL append must refuse the commit"
                        );
                        mutgen.committed(&batch);
                        for &q in &queries {
                            if commit.region.affects(q.0, q.1) {
                                ever_affected.insert(q);
                            }
                        }
                        gen_datasets.insert(commit.generation, Arc::clone(&commit.dataset));
                        fleet
                            .roll_graph(commit.dataset, &commit.region, commit.generation)
                            .expect("graph roll rebuilds from artifact");
                    }
                    Err(GraphStoreError::WalFault) => {
                        assert!(
                            event.disk_fault.is_some(),
                            "seed {seed}: spurious WAL fault"
                        );
                        faulted_some = true;
                        expected_rejects += 1;
                        // The previous generation keeps serving; the
                        // client mirror is NOT advanced.
                    }
                    Err(e) => panic!("seed {seed}: unexpected commit failure: {e}"),
                }
            }
            let q = queries[i % queries.len()];
            let probs = fleet
                .query(q)
                .expect("protected replica is always routable");
            // Ground truth for the generation live at submission time.
            let generation = store.generation();
            let engine = ref_engines.entry(generation).or_insert_with(|| {
                let gds = gen_datasets.get(&generation).expect("generation recorded");
                InferenceEngine::load(artifact.as_slice(), (**gds).clone(), 64)
                    .expect("reference engine")
            });
            assert_eq!(
                probs,
                engine.predict_one(q),
                "seed {seed} query {i}: answer diverged from the generation-{generation} \
                 reference"
            );
        }

        // Every mutation landed or was refused for exactly the planned
        // durability faults; the fleet rolled once per commit.
        let commits = store.commits();
        assert_eq!(
            commits + expected_rejects,
            plan.mutations.len() as u64,
            "seed {seed}: every burst must commit or be refused"
        );
        assert_eq!(store.rejected_commits(), expected_rejects, "seed {seed}");
        assert!(faulted_some, "seed {seed}: plan scheduled no WAL faults");
        assert_eq!(store.generation(), commits, "seed {seed}");
        let stats = fleet.stats();
        assert_eq!(stats.graph_rolls, commits, "seed {seed}");
        assert_eq!(stats.queries, N as u64, "seed {seed}");
        assert_eq!(stats.answered, N as u64, "seed {seed}");

        // The invalidation rule did real work and never let a stale
        // entry through: the engines' generation-tag backstop stayed
        // silent on every live replica.
        assert_eq!(
            stats.merged.stale_serves, 0,
            "seed {seed}: a stale cache entry survived invalidation"
        );
        assert!(
            !ever_affected.is_empty(),
            "seed {seed}: no cached query was ever affected — the schedule \
             exercised nothing"
        );
        assert!(
            ever_affected.len() < queries.len() || commits > 50,
            "seed {seed}: sanity on region selectivity"
        );

        // Unaffected queries are bit-identical to the static gen-0
        // reference across the entire mutated history.
        let gen0 = &ref_engines[&0];
        let last = store.generation();
        if let Some(final_engine) = ref_engines.get(&last) {
            for &q in queries.iter().filter(|q| !ever_affected.contains(q)) {
                assert_eq!(
                    gen0.predict_one(q),
                    final_engine.predict_one(q),
                    "seed {seed}: unaffected query {q:?} drifted across generations"
                );
            }
        }

        // Durability: the WAL replays over the base graph to the live
        // graph's exact digest — and survives a simulated crash (fresh
        // open from the file).
        let recovery = amdgcnn_graph::mutable::replay_log(&wal_path).expect("replay log");
        assert_eq!(recovery.batches.len() as u64, commits, "seed {seed}");
        let rebuilt =
            MutableGraph::replay(ds.graph.clone(), &recovery.batches).expect("replay applies");
        assert_eq!(
            rebuilt.digest(),
            store.digest(),
            "seed {seed}: replay digest"
        );
        let (reopened, rec2) = GraphStore::open(ds.clone(), &wal_path).expect("crash recovery");
        assert_eq!(rec2.batches.len() as u64, commits, "seed {seed}");
        assert_eq!(reopened.digest(), store.digest(), "seed {seed}");
        assert_eq!(reopened.generation(), store.generation(), "seed {seed}");
        assert_eq!(
            graph_digest(&reopened.dataset().graph),
            store.digest(),
            "seed {seed}: recovered dataset serves the recovered graph"
        );

        fleet.shutdown();
        let _ = std::fs::remove_file(&wal_path);
    }
}

/// Incremental invalidation does real, measurable work: across a roll,
/// unaffected entries survive in the replica caches (migrated > 0 on some
/// roll) and affected ones are dropped (invalidated > 0 overall) — while
/// answers stay exact.
#[test]
fn graph_roll_migrates_survivors_and_drops_affected_entries() {
    let (artifact, ds) = artifact_and_ds();
    let queries: Vec<LinkQuery> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let obs = Obs::enabled();
    let wal_path = scratch_wal("roll", 0);
    let store = GraphStore::create(ds.clone(), &wal_path).expect("store");
    let fleet = Fleet::start_with(
        artifact.clone(),
        ds.clone(),
        FleetConfig::default(),
        obs.clone(),
        Vec::new(),
    )
    .expect("fleet");

    // Warm every replica cache.
    for _ in 0..3 {
        for &q in &queries {
            fleet.query(q).expect("healthy fleet answers");
        }
    }

    // One mutation next to the first test link's source endpoint.
    let commit = store
        .apply(
            &[GraphMutation::SetNodeType {
                node: queries[0].0,
                ntype: 0,
            }],
            None,
        )
        .expect("commit");
    assert!(commit.region.affects(queries[0].0, queries[0].1));
    fleet
        .roll_graph(commit.dataset.clone(), &commit.region, commit.generation)
        .expect("roll");
    assert_eq!(fleet.graph_generation(), 1);

    let stats = fleet.stats();
    assert!(
        stats.merged.cache_invalidated > 0,
        "the affected entry must be dropped: {}",
        stats.merged
    );
    // The region is local, so at least one of the 8 cached test links
    // should have survived the roll on some replica.
    let survivors: Vec<_> = queries
        .iter()
        .filter(|q| !commit.region.affects(q.0, q.1))
        .collect();
    if !survivors.is_empty() {
        assert!(
            stats.merged.cache_migrated > 0,
            "unaffected entries must carry across: {}",
            stats.merged
        );
    }

    // Post-roll answers match a clean engine on the new generation, and
    // the stale backstop never fired.
    let fresh = InferenceEngine::load(artifact.as_slice(), (*commit.dataset).clone(), 64)
        .expect("reference");
    for &q in &queries {
        assert_eq!(fleet.query(q).expect("answers"), fresh.predict_one(q));
    }
    assert_eq!(fleet.stats().merged.stale_serves, 0);

    fleet.shutdown();
    let _ = std::fs::remove_file(&wal_path);
}
