//! Property-based tests of the consistent-hash ring: load balance within
//! bounds, minimal remap on membership change, and failover-order sanity.

use amdgcnn_serve::HashRing;
use proptest::prelude::*;

fn keys() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..50_000, 0u32..50_000), 400..1200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With 128 virtual nodes per replica, no replica owns a wildly
    /// outsized or starved share of a large random key set.
    #[test]
    fn load_stays_balanced(ks in keys(), replicas in 2usize..8) {
        let ring = HashRing::new(replicas);
        let mut counts = vec![0usize; replicas];
        for &(u, v) in &ks {
            counts[ring.route(u, v)] += 1;
        }
        let mean = ks.len() as f64 / replicas as f64;
        for (r, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) < mean * 2.5,
                "replica {} owns {} of {} keys (mean {:.1}): ring too lumpy",
                r, c, ks.len(), mean
            );
        }
    }

    /// Removing one replica only remaps the keys it owned; every other
    /// key keeps its route. This is the property that makes failover
    /// cheap: a crash does not reshuffle the whole cache-sharded keyspace.
    #[test]
    fn removal_remaps_only_the_lost_replicas_keys(
        ks in keys(),
        replicas in 2usize..8,
        victim_pick in 0usize..8,
    ) {
        let victim = victim_pick % replicas;
        let full = HashRing::new(replicas);
        let mut shrunk = HashRing::new(replicas);
        shrunk.remove_replica(victim);
        for &(u, v) in &ks {
            let before = full.route(u, v);
            let after = shrunk.route(u, v);
            if before != victim {
                prop_assert_eq!(
                    before, after,
                    "key ({}, {}) moved despite its owner surviving", u, v
                );
            } else {
                prop_assert_ne!(after, victim, "key still routed to removed replica");
            }
        }
    }

    /// Re-adding a removed replica restores the original routing exactly
    /// (vnode points are deterministic functions of the replica index).
    #[test]
    fn readding_restores_original_routes(ks in keys(), replicas in 2usize..8) {
        let full = HashRing::new(replicas);
        let mut cycled = HashRing::new(replicas);
        cycled.remove_replica(0);
        cycled.add_replica(0);
        for &(u, v) in &ks {
            prop_assert_eq!(full.route(u, v), cycled.route(u, v));
        }
    }

    /// The failover order starts at the primary and visits every replica
    /// exactly once — so walking it tries the whole fleet, never skips a
    /// live replica, and never retries a dead one.
    #[test]
    fn route_order_is_a_permutation_led_by_the_primary(
        u in 0u32..50_000,
        v in 0u32..50_000,
        replicas in 1usize..8,
    ) {
        let ring = HashRing::new(replicas);
        let order = ring.route_order(u, v);
        prop_assert_eq!(order.len(), replicas);
        prop_assert_eq!(order[0], ring.route(u, v));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..replicas).collect::<Vec<_>>());
    }
}
