//! Generation-aware cache of prepared (tensorized) samples with
//! incremental k-hop invalidation.
//!
//! Sample preparation (k-hop extraction, DRNL, tensorize) dominates the
//! cost of re-evaluating a link, so prepared samples are worth caching
//! across graph mutations. A [`SampleCache`] tags every entry with the
//! graph generation it was extracted on; when a mutation batch commits,
//! [`invalidate`](SampleCache::invalidate) drops exactly the entries
//! whose query endpoints fall inside the commit's
//! [`AffectedRegion`](amdgcnn_graph::AffectedRegion) — the k-hop
//! neighborhoods a mutation could have changed — and re-tags the
//! survivors to the new generation, because an unaffected sample
//! extracted on generation *g* is bit-identical to one extracted on
//! *g+1* (that is the invalidation rule's soundness contract, proven in
//! the mutation chaos tests).

use crate::sample::PreparedSample;
use amdgcnn_graph::AffectedRegion;
use std::collections::HashMap;
use std::sync::Arc;

/// A `(source, destination)` link query key.
pub type LinkKey = (u32, u32);

/// Generation-tagged store of prepared samples (see module docs).
#[derive(Debug, Default)]
pub struct SampleCache {
    generation: u64,
    map: HashMap<LinkKey, (Arc<PreparedSample>, u64)>,
    invalidated: u64,
    migrated: u64,
}

impl SampleCache {
    /// Empty cache at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph generation this cache currently serves.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cached sample for `key`, if present. Entries are only ever stored
    /// at the cache's current generation, so a hit is always fresh.
    pub fn get(&self, key: LinkKey) -> Option<Arc<PreparedSample>> {
        self.map.get(&key).map(|(s, _)| Arc::clone(s))
    }

    /// Cache `sample` for `key` at the current generation.
    pub fn insert(&mut self, key: LinkKey, sample: Arc<PreparedSample>) {
        self.map.insert(key, (sample, self.generation));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Samples dropped by invalidation since construction.
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// Samples that survived a generation roll since construction.
    pub fn migrated(&self) -> u64 {
        self.migrated
    }

    /// Roll the cache forward to `new_generation`: drop every entry whose
    /// endpoints `region` affects, re-tag the rest. Returns the number of
    /// entries dropped. Survivors keep their `Arc`s — no re-extraction,
    /// no copy.
    pub fn invalidate(&mut self, region: &AffectedRegion, new_generation: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|&(a, b), entry| {
            if region.affects(a, b) {
                false
            } else {
                entry.1 = new_generation;
                true
            }
        });
        let dropped = before - self.map.len();
        self.invalidated += dropped as u64;
        self.migrated += self.map.len() as u64;
        self.generation = new_generation;
        dropped
    }

    /// Drop everything (the full-rebuild baseline the incremental path is
    /// benchmarked against).
    pub fn clear(&mut self) {
        self.invalidated += self.map.len() as u64;
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::sample::prepare_sample;
    use amdgcnn_data::{wn18_like, Wn18Config};
    use amdgcnn_graph::{GraphMutation, MutableGraph};

    #[test]
    fn invalidate_drops_affected_and_retags_survivors() {
        let ds = wn18_like(&Wn18Config::default());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cache = SampleCache::new();
        let keys: Vec<LinkKey> = ds.test.iter().take(6).map(|l| (l.u, l.v)).collect();
        for l in ds.test.iter().take(6) {
            cache.insert((l.u, l.v), Arc::new(prepare_sample(&ds, l, &fcfg)));
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.generation(), 0);

        // Mutate next to the first cached query's source endpoint.
        let (u0, _) = keys[0];
        let mut mg = MutableGraph::from_graph(ds.graph.clone());
        let commit = mg
            .apply(&[GraphMutation::SetNodeType { node: u0, ntype: 0 }])
            .expect("commit");
        let region = commit.region(ds.subgraph.hops as usize);
        let affected: Vec<LinkKey> = keys
            .iter()
            .copied()
            .filter(|&(a, b)| region.affects(a, b))
            .collect();
        assert!(!affected.is_empty(), "the mutated endpoint is cached");

        let dropped = cache.invalidate(&region, commit.generation);
        assert_eq!(dropped, affected.len());
        assert_eq!(cache.generation(), 1);
        assert_eq!(cache.invalidated(), dropped as u64);
        for key in &keys {
            if affected.contains(key) {
                assert!(cache.get(*key).is_none(), "{key:?} must be dropped");
            } else {
                assert!(cache.get(*key).is_some(), "{key:?} must survive");
            }
        }
        // Empty region: pure migration, nothing dropped.
        let before = cache.len();
        assert_eq!(cache.invalidate(&AffectedRegion::empty(), 2), 0);
        assert_eq!(cache.len(), before);
        assert_eq!(cache.generation(), 2);
    }

    #[test]
    fn clear_is_the_flush_baseline() {
        let ds = wn18_like(&Wn18Config::default());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cache = SampleCache::new();
        for l in ds.test.iter().take(4) {
            cache.insert((l.u, l.v), Arc::new(prepare_sample(&ds, l, &fcfg)));
        }
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.invalidated(), 4);
    }
}
