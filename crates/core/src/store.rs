//! Persistent tensorized sample store: the `AMSS` on-disk format.
//!
//! Enclosing-subgraph preparation (k-hop extraction, DRNL labeling,
//! tensorization) dominates wall-clock before every run, every tuning
//! trial, and every resume — and its output is a pure function of the
//! dataset, the [`FeatureConfig`], and the subgraph settings. This module
//! materializes that output once: a [`SampleStore`] maps each labeled link
//! to its prepared ingredients (features, induced edges, DRNL labels,
//! label), persisted in a single checksummed file, so warm runs skip the
//! expensive phases entirely.
//!
//! Format (`AMSS` version 1, little-endian):
//! ```text
//! magic "AMSS" | u32 version
//! u64 dataset digest | u64 feature fingerprint | u64 graph generation
//! u32 record count | u32 header CRC-32
//! per record:
//!   u32 body length | body | u32 section CRC-32
//!   body: u32 u | u32 v | u32 class
//!         u32 num_nodes | u32 num_edges
//!         per edge: u32 u | u32 v | u16 etype
//!         per node: u32 drnl
//!         u32 rows | u32 cols | f32 features...
//!         u32 num_messages
//!         per message: u32 src | u32 dst | u32 orig edge (MAX = self-loop)
//! u32 footer CRC-32 (over every checksummed byte in the file)
//! ```
//!
//! Integrity and staleness rules:
//! - Writes are crash-safe ([`write_atomic`]: temp + fsync + rename), so a
//!   crash leaves the previous complete store or the new one.
//! - The header key ([`StoreKey`]) binds the store to the *content* of the
//!   dataset (graph digest + edge attributes + splits + subgraph config),
//!   the feature fingerprint, and the graph generation. A mismatch on open
//!   is a typed [`Error::StoreMismatch`] — a stale store is refused, never
//!   silently reused.
//! - Every record carries its own CRC-32, and the file a footer CRC-32.
//!   A clean open takes the fast path: one checksum sweep against the
//!   footer (which covers every record body), after which bodies are
//!   zero-copy slices of the shared file buffer. Only when that sweep
//!   fails does the salvage scan verify records individually: a damaged
//!   record is dropped (recorded as a typed [`Error::StoreCorrupt`] in
//!   [`SampleStore::damage`]) and surfaces as a store *miss* — the sample
//!   is re-prepared — never as a garbage sample.
//! - Each record also persists its sorted message topology (the output of
//!   the tensorize sort), so decoding rebuilds the message graph through
//!   [`crate::sample::message_graph_from_messages`] with linear copies
//!   only — bit-identical to the built graph, because the persisted list
//!   *is* that graph's message list, at a fraction of the cost of
//!   re-sorting (the warm-store speedup `sample_bench` gates on).

use crate::error::{Error, Result};
use crate::features::FeatureConfig;
use crate::sample::{message_graph_from_messages, PreparedSample};
use amdgcnn_data::{Dataset, LabeledLink};
use amdgcnn_graph::khop::NeighborhoodMode;
use amdgcnn_graph::{graph_digest, LocalEdge};
use amdgcnn_tensor::durable::{crc32_update, write_atomic, CrcReader, CrcWriter, DiskFault};
use amdgcnn_tensor::io::write_matrix;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"AMSS";
const VERSION: u32 = 1;

/// Hard ceilings on header-declared sizes — a store we wrote ourselves
/// stays far below them; anything above is corrupt or hostile and is
/// rejected before memory is committed to it.
const MAX_RECORDS: usize = 1 << 24;
const MAX_BODY_BYTES: usize = 1 << 28;
const MAX_LIST_LEN: usize = 1 << 24;

/// The fingerprint that binds a store file to the exact inputs of sample
/// preparation. Two runs share a store only when every component matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreKey {
    /// CRC-based digest of the dataset *content*: graph structure and node
    /// types, edge-attribute table, class count, train/test link lists,
    /// and the subgraph-extraction settings.
    pub dataset_digest: u64,
    /// Digest of the [`FeatureConfig`] (node-type width, DRNL cap,
    /// node2vec dimensionality) plus the resulting feature width.
    pub feature_fingerprint: u64,
    /// Generation counter of a live-mutable graph (0 for static datasets).
    /// Rolling the generation invalidates the store even when digests
    /// happen to collide.
    pub graph_generation: u64,
}

impl StoreKey {
    /// Compute the key for preparing `ds`'s samples under `fcfg`.
    pub fn for_dataset(ds: &Dataset, fcfg: &FeatureConfig, graph_generation: u64) -> Self {
        let mut crc = 0xFFFF_FFFFu32;
        let mut put = |bytes: &[u8]| crc = crc32_update(crc, bytes);
        put(ds.name.as_bytes());
        put(&(ds.num_classes as u64).to_le_bytes());
        put(&(ds.edge_attrs.dim() as u64).to_le_bytes());
        put(&(ds.edge_attrs.num_types() as u64).to_le_bytes());
        for t in 0..ds.edge_attrs.num_types() {
            for &v in ds.edge_attrs.row(t as u16) {
                put(&v.to_le_bytes());
            }
        }
        for split in [&ds.train, &ds.test] {
            put(&(split.len() as u64).to_le_bytes());
            for l in split.iter() {
                put(&l.u.to_le_bytes());
                put(&l.v.to_le_bytes());
                put(&(l.class as u32).to_le_bytes());
            }
        }
        put(&ds.subgraph.hops.to_le_bytes());
        put(&[match ds.subgraph.mode {
            NeighborhoodMode::Union => 0u8,
            NeighborhoodMode::Intersection => 1u8,
        }]);
        put(&(ds.subgraph.max_nodes_per_hop.map_or(u64::MAX, |n| n as u64)).to_le_bytes());
        put(&ds.subgraph.seed.to_le_bytes());
        let aux = crc ^ 0xFFFF_FFFF;
        let dataset_digest = ((graph_digest(&ds.graph) as u64) << 32) | aux as u64;

        let mut fcrc = 0xFFFF_FFFFu32;
        fcrc = crc32_update(fcrc, &(fcfg.num_node_types as u64).to_le_bytes());
        fcrc = crc32_update(fcrc, &fcfg.max_drnl.to_le_bytes());
        fcrc = crc32_update(
            fcrc,
            &(fcfg.node2vec.as_ref().map_or(u64::MAX, |e| e.dims as u64)).to_le_bytes(),
        );
        let feature_fingerprint = ((fcfg.dim() as u64) << 32) | (fcrc ^ 0xFFFF_FFFF) as u64;

        Self {
            dataset_digest,
            feature_fingerprint,
            graph_generation,
        }
    }
}

/// Records are keyed by the link they prepare: `(u, v, class)`.
type RecordKey = (u32, u32, u32);

fn record_key(link: &LabeledLink) -> RecordKey {
    (link.u, link.v, link.class as u32)
}

/// An encoded record body: freshly inserted records own their bytes; a
/// clean open keeps bodies as slices into the one shared file buffer, so
/// opening never copies record payloads.
#[derive(Debug)]
enum Body {
    Owned(Vec<u8>),
    Shared {
        buf: Arc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Body {
    fn as_slice(&self) -> &[u8] {
        match self {
            Body::Owned(b) => b,
            Body::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }
}

/// A persistent, CRC-guarded map from labeled links to their prepared
/// samples. See the module docs for the on-disk format and integrity
/// rules.
#[derive(Debug)]
pub struct SampleStore {
    path: PathBuf,
    key: StoreKey,
    /// Encoded record bodies, ordered by key so serialization is
    /// byte-deterministic regardless of insertion order.
    records: BTreeMap<RecordKey, Body>,
    /// Typed damage found while opening (each entry is one refused record
    /// or a file-level verification failure that cost the record tail).
    damage: Vec<Error>,
    dirty: bool,
}

impl SampleStore {
    /// Open (or create) the store at `path` for the given key.
    ///
    /// A missing file yields an empty store. An existing file must carry
    /// the `AMSS` magic, a supported version, a valid header CRC, and the
    /// same [`StoreKey`]; its records are then scanned with per-record
    /// CRC verification — damaged records are dropped (see
    /// [`damage`](Self::damage)), everything else is available for
    /// [`get`](Self::get).
    ///
    /// # Errors
    /// - [`Error::StoreIo`] on plain I/O failure.
    /// - [`Error::StoreCorrupt`] when the header itself is unreadable
    ///   (bad magic, unsupported version, header CRC mismatch) — the file
    ///   cannot be attributed to any key, so it is refused outright.
    /// - [`Error::StoreMismatch`] when the header is intact but belongs to
    ///   different data, features, or graph generation.
    pub fn open(path: impl Into<PathBuf>, key: StoreKey) -> Result<Self> {
        let path = path.into();
        let mut store = Self {
            path,
            key,
            records: BTreeMap::new(),
            damage: Vec::new(),
            dirty: false,
        };
        let bytes = match std::fs::read(&store.path) {
            Ok(b) => Arc::new(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => {
                return Err(Error::StoreIo {
                    detail: format!("reading {}: {e}", store.path.display()),
                })
            }
        };
        store.verify_header(&bytes)?;
        if !store.fast_scan(&bytes) {
            // Something is damaged: re-walk with per-record verification to
            // salvage every record whose own CRC still holds.
            store.scan(&bytes)?;
        }
        Ok(store)
    }

    /// Verify magic, version, header CRC, and [`StoreKey`], returning the
    /// declared record count. All failures here are hard, typed errors —
    /// shared by the fast and salvage scan paths.
    fn verify_header(&self, bytes: &[u8]) -> Result<usize> {
        let corrupt = |detail: String| Error::StoreCorrupt { detail };
        if bytes.len() < 4 {
            return Err(corrupt("truncated magic".into()));
        }
        if &bytes[..4] != MAGIC {
            let magic = &bytes[..4];
            return Err(corrupt(format!("bad magic {magic:02x?}")));
        }
        if bytes.len() < 8 {
            return Err(corrupt("truncated version".into()));
        }
        let version = le_u32(bytes, 4);
        if version != VERSION {
            return Err(corrupt(format!("unsupported store version {version}")));
        }
        if bytes.len() < 36 {
            return Err(corrupt("truncated header".into()));
        }
        let header_crc = crc32_update(0xFFFF_FFFF, &bytes[..36]) ^ 0xFFFF_FFFF;
        if bytes.len() < 40 {
            return Err(corrupt("truncated header CRC".into()));
        }
        let stored = le_u32(bytes, 36);
        if stored != header_crc {
            return Err(corrupt(format!(
                "header CRC mismatch: stored {stored:#010x}, computed {header_crc:#010x}"
            )));
        }
        let count = le_u32(bytes, 32) as usize;
        if count > MAX_RECORDS {
            return Err(corrupt(format!("implausible record count {count}")));
        }
        let found = StoreKey {
            dataset_digest: le_u64(bytes, 8),
            feature_fingerprint: le_u64(bytes, 16),
            graph_generation: le_u64(bytes, 24),
        };
        if found != self.key {
            let component = if found.dataset_digest != self.key.dataset_digest {
                format!(
                    "dataset digest {:#018x} vs expected {:#018x}",
                    found.dataset_digest, self.key.dataset_digest
                )
            } else if found.feature_fingerprint != self.key.feature_fingerprint {
                format!(
                    "feature fingerprint {:#018x} vs expected {:#018x}",
                    found.feature_fingerprint, self.key.feature_fingerprint
                )
            } else {
                format!(
                    "graph generation {} vs expected {}",
                    found.graph_generation, self.key.graph_generation
                )
            };
            return Err(Error::StoreMismatch { detail: component });
        }
        Ok(count)
    }

    /// The clean-open fast path: one CRC pass over every checksummed byte,
    /// compared against the footer. A matching footer proves every record
    /// body intact (the footer covers all of them), so per-record CRC
    /// verification is skipped and bodies become zero-copy slices of the
    /// shared file buffer — the dominant cost of a warm open is exactly one
    /// checksum sweep of the file. Returns `false` (leaving the store
    /// untouched) on any structural or checksum failure; the caller then
    /// falls back to the per-record salvage scan.
    fn fast_scan(&mut self, bytes: &Arc<Vec<u8>>) -> bool {
        let b: &[u8] = bytes;
        let count = le_u32(b, 32) as usize;
        let mut state = crc32_update(0xFFFF_FFFF, &b[..36]);
        let mut pos = 40;
        let mut entries: Vec<(RecordKey, usize, usize)> = Vec::with_capacity(count);
        for _ in 0..count {
            if b.len() < pos + 4 {
                return false;
            }
            let body_len = le_u32(b, pos) as usize;
            if body_len > MAX_BODY_BYTES {
                return false;
            }
            let body_start = pos + 4;
            let Some(body_end) = body_start.checked_add(body_len) else {
                return false;
            };
            // Body plus its (unverified here) stored section CRC.
            if b.len() < body_end + 4 {
                return false;
            }
            state = crc32_update(state, &b[pos..body_end]);
            let Some(key) = body_record_key(&b[body_start..body_end]) else {
                return false;
            };
            entries.push((key, body_start, body_len));
            pos = body_end + 4;
        }
        if b.len() < pos + 4 || le_u32(b, pos) != state ^ 0xFFFF_FFFF {
            return false;
        }
        for (key, off, len) in entries {
            self.records.insert(
                key,
                Body::Shared {
                    buf: Arc::clone(bytes),
                    off,
                    len,
                },
            );
        }
        true
    }

    /// Parse `bytes` into `self.records`, verifying header, key, and
    /// per-record CRCs. Record-level damage is recorded and skipped;
    /// header-level damage is a hard error.
    fn scan(&mut self, bytes: &[u8]) -> Result<()> {
        let corrupt = |detail: String| Error::StoreCorrupt { detail };
        let mut r = CrcReader::new(bytes);
        let mut magic = [0u8; 4];
        read_checked(&mut r, &mut magic).map_err(|_| corrupt("truncated magic".into()))?;
        if &magic != MAGIC {
            return Err(corrupt(format!("bad magic {magic:02x?}")));
        }
        let version = read_u32(&mut r).map_err(|_| corrupt("truncated version".into()))?;
        if version != VERSION {
            return Err(corrupt(format!("unsupported store version {version}")));
        }
        let dataset_digest = read_u64(&mut r).map_err(|_| corrupt("truncated header".into()))?;
        let feature_fingerprint =
            read_u64(&mut r).map_err(|_| corrupt("truncated header".into()))?;
        let graph_generation = read_u64(&mut r).map_err(|_| corrupt("truncated header".into()))?;
        let count = read_u32(&mut r).map_err(|_| corrupt("truncated header".into()))? as usize;
        let header_crc = r.section_crc();
        let stored = read_crc(&mut r).map_err(|_| corrupt("truncated header CRC".into()))?;
        if stored != header_crc {
            return Err(corrupt(format!(
                "header CRC mismatch: stored {stored:#010x}, computed {header_crc:#010x}"
            )));
        }
        if count > MAX_RECORDS {
            return Err(corrupt(format!("implausible record count {count}")));
        }
        let found = StoreKey {
            dataset_digest,
            feature_fingerprint,
            graph_generation,
        };
        if found != self.key {
            let component = if dataset_digest != self.key.dataset_digest {
                format!(
                    "dataset digest {dataset_digest:#018x} vs expected {:#018x}",
                    self.key.dataset_digest
                )
            } else if feature_fingerprint != self.key.feature_fingerprint {
                format!(
                    "feature fingerprint {feature_fingerprint:#018x} vs expected {:#018x}",
                    self.key.feature_fingerprint
                )
            } else {
                format!(
                    "graph generation {graph_generation} vs expected {}",
                    self.key.graph_generation
                )
            };
            return Err(Error::StoreMismatch { detail: component });
        }

        for idx in 0..count {
            r.reset_section();
            let body_len = match read_u32(&mut r) {
                Ok(n) => n as usize,
                Err(_) => {
                    self.damage.push(corrupt(format!(
                        "truncated before record {idx} of {count}: {} record(s) lost",
                        count - idx
                    )));
                    self.dirty = true;
                    return Ok(());
                }
            };
            if body_len > MAX_BODY_BYTES {
                // The length field itself is corrupt: nothing after it can
                // be located, so the rest of the file is lost.
                self.damage.push(corrupt(format!(
                    "implausible body length {body_len} in record {idx}: {} record(s) lost",
                    count - idx
                )));
                self.dirty = true;
                return Ok(());
            }
            let mut body = vec![0u8; body_len];
            if read_checked(&mut r, &mut body).is_err() {
                self.damage.push(corrupt(format!(
                    "truncated inside record {idx} of {count}: {} record(s) lost",
                    count - idx
                )));
                self.dirty = true;
                return Ok(());
            }
            let section = r.section_crc();
            let stored = match read_crc(&mut r) {
                Ok(c) => c,
                Err(_) => {
                    self.damage
                        .push(corrupt(format!("truncated CRC of record {idx}")));
                    self.dirty = true;
                    return Ok(());
                }
            };
            if stored != section {
                // The record is damaged but its length framing held, so the
                // scan can resync on the next record: one miss, not a
                // poisoned store.
                self.damage.push(corrupt(format!(
                    "record {idx} CRC mismatch: stored {stored:#010x}, computed {section:#010x}"
                )));
                self.dirty = true;
                continue;
            }
            match body_record_key(&body) {
                Some(key) => {
                    self.records.insert(key, Body::Owned(body));
                }
                None => {
                    self.damage
                        .push(corrupt(format!("record {idx} too short for its key")));
                    self.dirty = true;
                }
            }
        }
        let footer = r.total_crc();
        match read_crc(&mut r) {
            Ok(stored) if stored == footer => {}
            Ok(stored) => {
                // Every surviving record passed its own CRC; the corruption
                // sits in framing or stored-checksum bytes. Keep the
                // verified records, note the damage, rewrite on flush.
                self.damage.push(corrupt(format!(
                    "footer CRC mismatch: stored {stored:#010x}, computed {footer:#010x}"
                )));
                self.dirty = true;
            }
            Err(_) => {
                self.damage.push(corrupt("truncated footer CRC".into()));
                self.dirty = true;
            }
        }
        Ok(())
    }

    /// The key this store was opened with.
    pub fn key(&self) -> StoreKey {
        self.key
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of intact records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Typed damage found while opening: one entry per refused record or
    /// lost tail. Damaged records surface as misses, never as samples.
    pub fn damage(&self) -> &[Error] {
        &self.damage
    }

    /// True when in-memory records differ from the file (inserts since
    /// open, or damage that a flush would repair).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Does the store hold an intact record for `link`?
    pub fn contains(&self, link: &LabeledLink) -> bool {
        self.records.contains_key(&record_key(link))
    }

    /// Decode the stored sample for `link`, rebuilding its
    /// [`amdgcnn_nn::MessageGraph`] through the exact tensorize code path
    /// — bit-identical to the sample originally inserted. `None` is a
    /// store miss (absent or damaged record).
    pub fn get(&self, ds: &Dataset, link: &LabeledLink) -> Option<PreparedSample> {
        let body = self.records.get(&record_key(link))?;
        // The body passed its CRC at open, so decode failures are
        // write-side bugs; treat them as misses rather than panicking.
        decode_body(body.as_slice(), ds).ok()
    }

    /// Insert (or replace) the prepared sample for `link`.
    pub fn insert(&mut self, link: &LabeledLink, sample: &PreparedSample) {
        self.records
            .insert(record_key(link), Body::Owned(encode_body(link, sample)));
        self.dirty = true;
    }

    /// Serialize every record and crash-safely replace the file
    /// (temp + fsync + atomic rename). `fault` injects a deterministic
    /// durability failure for testing; pass `None` in production.
    ///
    /// # Errors
    /// [`Error::StoreIo`] when the write fails.
    pub fn flush(&mut self, fault: Option<DiskFault>) -> Result<()> {
        let mut w = CrcWriter::new(Vec::new());
        let io_err = |e: std::io::Error| Error::StoreIo {
            detail: format!("serializing sample store: {e}"),
        };
        w.write_all(MAGIC).map_err(io_err)?;
        w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
        w.write_all(&self.key.dataset_digest.to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&self.key.feature_fingerprint.to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&self.key.graph_generation.to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&(self.records.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        let header_crc = w.section_crc();
        w.write_unchecked(&header_crc.to_le_bytes()).map_err(io_err)?;
        for body in self.records.values() {
            let body = body.as_slice();
            w.reset_section();
            w.write_all(&(body.len() as u32).to_le_bytes())
                .map_err(io_err)?;
            w.write_all(body).map_err(io_err)?;
            let section = w.section_crc();
            w.write_unchecked(&section.to_le_bytes()).map_err(io_err)?;
        }
        let footer = w.total_crc();
        w.write_unchecked(&footer.to_le_bytes()).map_err(io_err)?;
        let bytes = w.into_inner();
        write_atomic(&self.path, &bytes, fault).map_err(|e| Error::StoreIo {
            detail: format!("writing {}: {e}", self.path.display()),
        })?;
        self.dirty = false;
        Ok(())
    }
}

fn le_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}

fn le_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

/// Peek the record key at the head of an encoded body.
fn body_record_key(body: &[u8]) -> Option<RecordKey> {
    if body.len() < 12 {
        return None;
    }
    let u = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
    let v = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    let class = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
    Some((u, v, class))
}

fn encode_body(link: &LabeledLink, sample: &PreparedSample) -> Vec<u8> {
    let mut b = Vec::with_capacity(
        24 + sample.edges.len() * 10 + sample.drnl.len() * 4 + sample.features.len() * 4,
    );
    b.extend_from_slice(&link.u.to_le_bytes());
    b.extend_from_slice(&link.v.to_le_bytes());
    b.extend_from_slice(&(link.class as u32).to_le_bytes());
    b.extend_from_slice(&(sample.num_nodes as u32).to_le_bytes());
    b.extend_from_slice(&(sample.edges.len() as u32).to_le_bytes());
    for e in &sample.edges {
        b.extend_from_slice(&e.u.to_le_bytes());
        b.extend_from_slice(&e.v.to_le_bytes());
        b.extend_from_slice(&e.etype.to_le_bytes());
    }
    for &d in &sample.drnl {
        b.extend_from_slice(&d.to_le_bytes());
    }
    write_matrix(&mut b, &sample.features).expect("Vec write is infallible");
    // Persist the tensorize sort's output so decode rebuilds the message
    // graph with linear copies instead of re-sorting.
    let csr = sample.graph.csr();
    let (src, dst) = (csr.src_ids(), csr.dst_ids());
    let orig = sample.graph.orig_edge();
    b.extend_from_slice(&(csr.num_messages() as u32).to_le_bytes());
    for m in 0..csr.num_messages() {
        b.extend_from_slice(&src[m].to_le_bytes());
        b.extend_from_slice(&dst[m].to_le_bytes());
        b.extend_from_slice(&orig[m].map_or(u32::MAX, |e| e as u32).to_le_bytes());
    }
    b
}

/// Decode an encoded record body back into a [`PreparedSample`]. The body
/// has already passed CRC verification; structural inconsistencies are
/// still reported as typed corruption rather than trusted.
fn decode_body(body: &[u8], ds: &Dataset) -> Result<PreparedSample> {
    let corrupt = |detail: &str| Error::StoreCorrupt {
        detail: detail.into(),
    };
    let mut r: &[u8] = body;
    let _u = read_u32(&mut r).map_err(|_| corrupt("record key"))?;
    let _v = read_u32(&mut r).map_err(|_| corrupt("record key"))?;
    let class = read_u32(&mut r).map_err(|_| corrupt("record key"))? as usize;
    let num_nodes = read_u32(&mut r).map_err(|_| corrupt("node count"))? as usize;
    let num_edges = read_u32(&mut r).map_err(|_| corrupt("edge count"))? as usize;
    if num_nodes > MAX_LIST_LEN || num_edges > MAX_LIST_LEN {
        return Err(corrupt("implausible subgraph size"));
    }
    if r.len() < num_edges * 10 + num_nodes * 4 {
        return Err(corrupt("edge or DRNL section truncated"));
    }
    let mut edges = Vec::with_capacity(num_edges);
    for c in r[..num_edges * 10].chunks_exact(10) {
        edges.push(LocalEdge {
            u: u32::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            v: u32::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
            etype: u16::from_le_bytes(c[8..10].try_into().expect("2 bytes")),
        });
    }
    r = &r[num_edges * 10..];
    let mut drnl = Vec::with_capacity(num_nodes);
    for c in r[..num_nodes * 4].chunks_exact(4) {
        drnl.push(u32::from_le_bytes(c.try_into().expect("4 bytes")));
    }
    r = &r[num_nodes * 4..];
    // Feature matrix, parsed in place (same layout as
    // [`amdgcnn_tensor::io::read_matrix`], minus the Read-trait copies).
    if r.len() < 8 {
        return Err(corrupt("feature header truncated"));
    }
    let rows = le_u32(r, 0) as usize;
    let cols = le_u32(r, 4) as usize;
    r = &r[8..];
    let total = rows.saturating_mul(cols);
    if total > MAX_BODY_BYTES / 4 {
        return Err(corrupt("implausible feature shape"));
    }
    if r.len() < total * 4 {
        return Err(corrupt("feature data truncated"));
    }
    let data: Vec<f32> = r[..total * 4]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    let features = amdgcnn_tensor::Matrix::from_vec(rows, cols, data);
    r = &r[total * 4..];
    if features.rows() != num_nodes {
        return Err(corrupt("feature rows disagree with node count"));
    }
    // Message topology: validate every invariant the rebuild constructor
    // would otherwise panic on — the bytes are CRC-guarded, but a CRC
    // collision must still surface as typed corruption, never a panic.
    let num_messages = read_u32(&mut r).map_err(|_| corrupt("message count"))? as usize;
    let self_edges = edges.iter().filter(|e| e.u == e.v).count();
    let expected = (edges.len() - self_edges) * 2 + self_edges + num_nodes;
    if num_messages != expected {
        return Err(corrupt("message count disagrees with topology"));
    }
    if r.len() < num_messages * 12 {
        return Err(corrupt("message section truncated"));
    }
    let mut pairs = Vec::with_capacity(num_messages);
    let mut origins = Vec::with_capacity(num_messages);
    let mut prev_dst = 0u32;
    for c in r[..num_messages * 12].chunks_exact(12) {
        let src = u32::from_le_bytes(c[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(c[4..8].try_into().expect("4 bytes"));
        let orig = u32::from_le_bytes(c[8..12].try_into().expect("4 bytes"));
        if src as usize >= num_nodes || dst as usize >= num_nodes || dst < prev_dst {
            return Err(corrupt("message topology out of order"));
        }
        if orig != u32::MAX && orig as usize >= num_edges {
            return Err(corrupt("message origin out of range"));
        }
        prev_dst = dst;
        pairs.push((src, dst));
        origins.push(orig);
    }
    let graph = message_graph_from_messages(ds, num_nodes, &edges, &pairs, &origins);
    Ok(PreparedSample {
        features,
        graph,
        label: class,
        num_nodes,
        num_edges,
        edges,
        drnl,
    })
}

fn read_checked<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<()> {
    r.read_exact(buf)
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Read a stored CRC value without folding it into the running checksums.
fn read_crc<R: Read>(r: &mut CrcReader<R>) -> std::io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact_unchecked(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::prepare_sample;
    use amdgcnn_data::{wn18_like, Wn18Config};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "amdgcnn-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn samples_equal(a: &PreparedSample, b: &PreparedSample) -> bool {
        a.features == b.features
            && a.label == b.label
            && a.num_nodes == b.num_nodes
            && a.num_edges == b.num_edges
            && a.edges == b.edges
            && a.drnl == b.drnl
            && a.graph.csr().src_ids() == b.graph.csr().src_ids()
            && a.graph.csr().dst_ids() == b.graph.csr().dst_ids()
            && a.graph.relations() == b.graph.relations()
            && a.graph.edge_attrs().map(|m| m.data()) == b.graph.edge_attrs().map(|m| m.data())
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let key = StoreKey::for_dataset(&ds, &fcfg, 0);
        let path = scratch_dir("roundtrip").join("samples.amss");
        let mut store = SampleStore::open(&path, key).expect("open fresh");
        assert!(store.is_empty() && !store.is_dirty());
        let prepared: Vec<_> = ds.train[..6]
            .iter()
            .map(|l| prepare_sample(&ds, l, &fcfg))
            .collect();
        for (l, s) in ds.train[..6].iter().zip(&prepared) {
            store.insert(l, s);
        }
        store.flush(None).expect("flush");
        assert!(!store.is_dirty());

        let reopened = SampleStore::open(&path, key).expect("reopen");
        assert_eq!(reopened.len(), 6);
        assert!(reopened.damage().is_empty());
        for (l, s) in ds.train[..6].iter().zip(&prepared) {
            let got = reopened.get(&ds, l).expect("hit");
            assert!(samples_equal(&got, s), "decoded sample differs");
        }
        // A link never inserted is a miss.
        assert!(reopened.get(&ds, &ds.train[7]).is_none());
    }

    #[test]
    fn key_changes_with_every_component() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let base = StoreKey::for_dataset(&ds, &fcfg, 0);
        let mut other_fcfg = fcfg.clone();
        other_fcfg.max_drnl = 5;
        assert_ne!(
            base.feature_fingerprint,
            StoreKey::for_dataset(&ds, &other_fcfg, 0).feature_fingerprint
        );
        assert_ne!(base, StoreKey::for_dataset(&ds, &fcfg, 1));
        let mut other_ds = wn18_like(&Wn18Config {
            seed: 0x9999,
            ..Wn18Config::tiny()
        });
        other_ds.name = ds.name;
        assert_ne!(
            base.dataset_digest,
            StoreKey::for_dataset(&other_ds, &fcfg, 0).dataset_digest
        );
    }

    #[test]
    fn mismatched_key_is_refused() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let key = StoreKey::for_dataset(&ds, &fcfg, 0);
        let path = scratch_dir("mismatch").join("samples.amss");
        let mut store = SampleStore::open(&path, key).expect("open");
        store.insert(&ds.train[0], &prepare_sample(&ds, &ds.train[0], &fcfg));
        store.flush(None).expect("flush");

        let rolled = StoreKey {
            graph_generation: 3,
            ..key
        };
        let err = SampleStore::open(&path, rolled).expect_err("stale store");
        assert!(
            matches!(&err, Error::StoreMismatch { detail } if detail.contains("generation")),
            "{err}"
        );
    }
}
