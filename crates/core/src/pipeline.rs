//! High-level experiment pipeline: dataset → prepared samples → trained
//! model → metrics. This is the API the paper's tables and figures are
//! regenerated through (crates/bench) and the entry point for examples.

use crate::checkpoint::CheckpointDir;
use crate::error::{Error, Result};
use crate::fault::FaultInjector;
use crate::features::FeatureConfig;
use crate::metrics::{accuracy, argmax_predictions, average_precision, macro_auc};
use crate::model::{DgcnnModel, GnnKind, ModelConfig};
use crate::prefetch::{prepare_batch_pipelined, PrefetchConfig};
use crate::sample::PreparedSample;
use crate::schedule::LrSchedule;
use crate::store::{SampleStore, StoreKey};
use crate::train::{labels_of, predict_probs, TrainConfig, Trainer};
use amdgcnn_data::Dataset;
use amdgcnn_obs::Obs;
use amdgcnn_tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Durable-checkpointing policy for an [`Experiment`].
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory holding the generation-numbered checkpoint files.
    pub dir: PathBuf,
    /// Save a [`crate::checkpoint::TrainState`] every this many epochs
    /// (clamped to at least 1).
    pub every: usize,
    /// Generations to retain (clamped to at least 2, so a torn newest
    /// generation always leaves a fallback).
    pub keep: usize,
}

/// The tunable hyperparameters of Table I.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct Hyperparams {
    /// Learning rate ∈ [1e-6, 1e-2].
    pub lr: f32,
    /// GNN hidden dimension ∈ {16, 32, 64, 128}.
    pub hidden_dim: usize,
    /// Sort-aggregator k ∈ [5, 150].
    pub sort_k: usize,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            hidden_dim: 32,
            sort_k: 30,
        }
    }
}

/// Evaluation summary on a test split.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct EvalMetrics {
    /// Macro one-vs-rest ROC-AUC.
    pub auc: f64,
    /// The paper's Average Precision (macro per-class precision).
    pub ap: f64,
    /// Argmax accuracy.
    pub accuracy: f64,
}

/// A runnable experiment binding a dataset to a model variant and
/// hyperparameters. Construct with [`Experiment::builder`] (or the
/// [`Experiment::new`] shorthand for defaults).
pub struct Experiment {
    /// Model variant (vanilla DGCNN / AM-DGCNN / ablations).
    pub gnn: GnnKind,
    /// Table I hyperparameters.
    pub hyper: Hyperparams,
    /// Training settings (epochs are driven by the runner methods).
    pub train: TrainConfig,
    /// Learning-rate schedule applied by sessions built from this
    /// experiment.
    pub schedule: LrSchedule,
    /// Durable checkpointing (None disables).
    pub checkpoint: Option<CheckpointPolicy>,
    /// When true, [`Experiment::session`] restores the newest loadable
    /// generation from [`CheckpointPolicy::dir`] before returning.
    pub resume: bool,
    /// Deterministic fault injector attached to sessions (testing hook).
    pub injector: Option<Arc<FaultInjector>>,
    /// Observability registry threaded into sessions (disabled by
    /// default — spans, counters, and events are then no-ops).
    pub obs: Obs,
    /// Sample-preparation pipeline settings (serial by default; see
    /// [`ExperimentBuilder::prefetch`]).
    pub prefetch: PrefetchConfig,
    /// Persistent sample-store file (None disables; see
    /// [`ExperimentBuilder::sample_store`]).
    pub store: Option<PathBuf>,
    /// Graph generation baked into the store key (0 for static datasets;
    /// see [`ExperimentBuilder::graph_generation`]).
    pub graph_generation: u64,
}

/// Fluent construction of an [`Experiment`] — the supported way to deviate
/// from the defaults without reaching into [`TrainConfig`] fields.
///
/// ```
/// use am_dgcnn::pipeline::Experiment;
/// use am_dgcnn::model::GnnKind;
/// use am_dgcnn::schedule::LrSchedule;
///
/// let exp = Experiment::builder()
///     .gnn(GnnKind::am_dgcnn())
///     .seed(7)
///     .batch_size(32)
///     .schedule(LrSchedule::StepDecay { every: 10, gamma: 0.5 })
///     .build();
/// assert_eq!(exp.train.batch_size, 32);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    gnn: GnnKind,
    hyper: Hyperparams,
    train: TrainConfig,
    schedule: LrSchedule,
    checkpoint: Option<CheckpointPolicy>,
    resume: bool,
    injector: Option<Arc<FaultInjector>>,
    obs: Obs,
    prefetch: PrefetchConfig,
    store: Option<PathBuf>,
    graph_generation: u64,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        let hyper = Hyperparams::default();
        Self {
            gnn: GnnKind::am_dgcnn(),
            train: TrainConfig {
                lr: hyper.lr,
                ..Default::default()
            },
            hyper,
            schedule: LrSchedule::Constant,
            checkpoint: None,
            resume: false,
            injector: None,
            obs: Obs::disabled(),
            prefetch: PrefetchConfig::default(),
            store: None,
            graph_generation: 0,
        }
    }
}

impl ExperimentBuilder {
    /// Model variant (default: AM-DGCNN).
    pub fn gnn(mut self, gnn: GnnKind) -> Self {
        self.gnn = gnn;
        self
    }

    /// Table I hyperparameters; also adopts `hyper.lr` as the training
    /// learning rate.
    pub fn hyper(mut self, hyper: Hyperparams) -> Self {
        self.train.lr = hyper.lr;
        self.hyper = hyper;
        self
    }

    /// Seed for parameter init, shuffling, and dropout.
    pub fn seed(mut self, seed: u64) -> Self {
        self.train.seed = seed;
        self
    }

    /// Learning-rate schedule (default: constant).
    pub fn schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Samples per gradient step.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.train.batch_size = batch_size;
        self
    }

    /// Global-norm gradient clip; `None` disables clipping.
    pub fn grad_clip(mut self, clip: Option<f32>) -> Self {
        self.train.grad_clip = clip;
        self
    }

    /// Divergence-watchdog policy (rollback retries, LR backoff); on by
    /// default with [`crate::train::WatchdogConfig::default`].
    pub fn watchdog(mut self, watchdog: crate::train::WatchdogConfig) -> Self {
        self.train.watchdog = watchdog;
        self
    }

    /// Durably checkpoint the training state to `dir` every `every` epochs
    /// (crash-safe: temp + fsync + atomic rename, checksummed,
    /// generation-numbered — see [`crate::checkpoint`]).
    pub fn checkpoint_to(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            dir: dir.into(),
            every: every.max(1),
            keep: 2,
        });
        self
    }

    /// Full control over the checkpoint policy (directory, cadence,
    /// retained generations).
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Resume from the newest loadable checkpoint generation in `dir`
    /// (and keep checkpointing there). A directory with no checkpoints
    /// starts fresh; a directory where every generation is corrupt is an
    /// error at [`Experiment::session`] time. Because the trainer's RNG
    /// streams are pure functions of `(seed, epoch, sample)`, the resumed
    /// run is bit-identical to one that never stopped.
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        match &mut self.checkpoint {
            Some(policy) => policy.dir = dir,
            None => {
                self.checkpoint = Some(CheckpointPolicy {
                    dir,
                    every: 1,
                    keep: 2,
                });
            }
        }
        self.resume = true;
        self
    }

    /// Attach a deterministic fault injector to sessions built from this
    /// experiment (testing hook: schedules NaN losses, checkpoint
    /// corruption, and disk faults on checkpoint writes).
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Prepare samples through the bounded prefetch pipeline with
    /// `workers` supervised producer threads (0, the default, prepares
    /// serially in-line). Delivery is reassembled in sample-index order,
    /// so epoch results are bit-identical to the serial path regardless
    /// of worker count.
    pub fn prefetch(mut self, workers: usize) -> Self {
        self.prefetch.workers = workers;
        self
    }

    /// Capacity of the producer→consumer channel (default 8 slots; at
    /// most `capacity + workers` samples are in flight).
    pub fn prefetch_capacity(mut self, capacity: usize) -> Self {
        self.prefetch.capacity = capacity.max(1);
        self
    }

    /// Persist tensorized samples to the `AMSS` file at `path` and reuse
    /// them on later sessions (including [`resume_from`]
    /// (ExperimentBuilder::resume_from) and tuning trials over the same
    /// data): a warm store skips k-hop extraction, DRNL labeling, and
    /// feature construction entirely, bit-identically. The store is keyed
    /// by dataset digest + [`FeatureConfig`] fingerprint + graph
    /// generation; a stale store fails the session with
    /// [`Error::StoreMismatch`] instead of being silently reused.
    pub fn sample_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.store = Some(path.into());
        self
    }

    /// Graph generation baked into the sample-store key (default 0).
    /// When training over a live-mutable graph, pass
    /// `MutableGraph::generation()` here so stores prepared against an
    /// older graph state are refused.
    pub fn graph_generation(mut self, generation: u64) -> Self {
        self.graph_generation = generation;
        self
    }

    /// Record per-stage spans (sample preparation, k-hop, DRNL,
    /// tensorization, train forward/backward/optimizer, checkpoint I/O,
    /// evaluation) into `obs`. Observation never feeds back into the
    /// computation, so results are bit-identical with or without it.
    pub fn observe(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Finish building.
    pub fn build(self) -> Experiment {
        Experiment {
            gnn: self.gnn,
            hyper: self.hyper,
            train: self.train,
            schedule: self.schedule,
            checkpoint: self.checkpoint,
            resume: self.resume,
            injector: self.injector,
            obs: self.obs,
            prefetch: self.prefetch,
            store: self.store,
            graph_generation: self.graph_generation,
        }
    }
}

impl Experiment {
    /// Start building an experiment fluently.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Experiment with default training settings at the given
    /// hyperparameters — a thin shim over [`Experiment::builder`].
    pub fn new(gnn: GnnKind, hyper: Hyperparams, seed: u64) -> Self {
        Self::builder().gnn(gnn).hyper(hyper).seed(seed).build()
    }

    fn model_config(&self, ds: &Dataset, fcfg: &FeatureConfig) -> ModelConfig {
        let mut cfg =
            ModelConfig::dgcnn_defaults(self.gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
        cfg.hidden_dim = self.hyper.hidden_dim;
        cfg.sort_k = self.hyper.sort_k;
        cfg.num_relations = ds.graph.num_edge_types();
        cfg
    }

    /// Prepare splits, build the model, train `epochs`, and evaluate on the
    /// test split.
    pub fn run(&self, ds: &Dataset, epochs: usize) -> Result<EvalMetrics> {
        let session = self.session(ds, None)?;
        Ok(self
            .run_session(session, &[epochs])?
            .pop()
            .expect("one checkpoint requested"))
    }

    /// Build a reusable session (prepared samples + fresh model). When the
    /// experiment was built with
    /// [`resume_from`](ExperimentBuilder::resume_from), the newest loadable
    /// checkpoint generation is restored into the session before it is
    /// returned.
    ///
    /// # Errors
    /// - [`Error::SubsetTooLarge`] when `train_subset` exceeds the training
    ///   split.
    /// - [`Error::CheckpointIo`] when resuming and checkpoint files exist
    ///   but none loads cleanly.
    /// - [`Error::ResumeMismatch`] when a checkpoint loads but belongs to a
    ///   different experiment (seed or parameter shapes differ).
    /// - [`Error::StoreMismatch`] when a configured sample store belongs to
    ///   different data, features, or graph generation (stale stores are
    ///   refused, never silently reused); [`Error::StoreCorrupt`] /
    ///   [`Error::StoreIo`] when its header cannot be verified or the file
    ///   cannot be read or written.
    pub fn session(&self, ds: &Dataset, train_subset: Option<usize>) -> Result<Session> {
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let cfg = self.model_config(ds, &fcfg);
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(self.train.seed ^ 0x5eed_1a7e);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let train_links = match train_subset {
            Some(n) if n > ds.train.len() => {
                return Err(Error::SubsetTooLarge {
                    requested: n,
                    available: ds.train.len(),
                })
            }
            Some(n) => &ds.train[..n],
            None => &ds.train[..],
        };
        // Both splits route through the prefetch pipeline and (when
        // configured) the persistent sample store — eval samples included,
        // so a resumed or repeated run re-tensorizes nothing.
        let mut store = match &self.store {
            Some(path) => Some(SampleStore::open(
                path,
                StoreKey::for_dataset(ds, &fcfg, self.graph_generation),
            )?),
            None => None,
        };
        let injector = self.injector.as_deref();
        let train_samples = prepare_batch_pipelined(
            ds,
            train_links,
            &fcfg,
            &self.obs,
            self.prefetch,
            store.as_mut(),
            injector,
        );
        let test_samples = prepare_batch_pipelined(
            ds,
            &ds.test,
            &fcfg,
            &self.obs,
            self.prefetch,
            store.as_mut(),
            injector,
        );
        if let Some(store) = store.as_mut() {
            if store.is_dirty() {
                let flush_span = self.obs.span("pipeline/prefetch/store_flush");
                let fault = injector.and_then(|inj| inj.next_disk_fault());
                store.flush(fault)?;
                flush_span.finish();
            }
        }
        let mut session = Session {
            model,
            ps,
            train_samples,
            test_samples,
            trainer: Trainer::new(self.train)
                .with_schedule(self.schedule)
                .with_obs(self.obs.clone()),
            obs: self.obs.clone(),
        };
        if let Some(inj) = &self.injector {
            session.trainer.attach_fault_injector(inj.clone());
        }
        if self.resume {
            let policy = self
                .checkpoint
                .as_ref()
                .ok_or_else(|| Error::CheckpointIo {
                    detail: "resume requested without a checkpoint directory".into(),
                })?;
            let restore_span = self.obs.span("pipeline/checkpoint/restore");
            let dir = CheckpointDir::create(&policy.dir)?;
            if let Some((generation, state)) = dir.latest()? {
                session.trainer.restore(&state, &mut session.ps)?;
                let epochs = state.epochs_done;
                self.obs.event("pipeline/checkpoint/restore", || {
                    format!("resumed generation {generation} at epoch {epochs}")
                });
            }
            restore_span.finish();
        }
        Ok(session)
    }

    /// Train a session to each checkpoint in `epoch_checkpoints`
    /// (ascending), evaluating on the test split at every checkpoint — the
    /// shape of the paper's epoch sweeps (Figs. 3–6).
    ///
    /// # Errors
    /// [`Error::DescendingCheckpoints`] when a checkpoint lies behind the
    /// session's training progress; [`Error::EmptySplit`] when the session
    /// has no training samples and a checkpoint requires training.
    pub fn run_session(
        &self,
        mut session: Session,
        epoch_checkpoints: &[usize],
    ) -> Result<Vec<EvalMetrics>> {
        let mut out = Vec::with_capacity(epoch_checkpoints.len());
        for &target in epoch_checkpoints {
            if target < session.trainer.epochs_done() {
                return Err(Error::DescendingCheckpoints {
                    epochs_done: session.trainer.epochs_done(),
                    requested: target,
                });
            }
            match &self.checkpoint {
                None => {
                    let additional = target - session.trainer.epochs_done();
                    if additional > 0 {
                        session.trainer.train(
                            &session.model,
                            &mut session.ps,
                            &session.train_samples,
                            additional,
                        )?;
                    }
                }
                Some(policy) => {
                    // Train in chunks aligned to the checkpoint cadence so a
                    // crash at any instant loses at most `every - 1` epochs.
                    let every = policy.every.max(1);
                    while session.trainer.epochs_done() < target {
                        let done = session.trainer.epochs_done();
                        let next_save = (done / every + 1) * every;
                        let step = next_save.min(target) - done;
                        session.trainer.train(
                            &session.model,
                            &mut session.ps,
                            &session.train_samples,
                            step,
                        )?;
                        if session.trainer.epochs_done().is_multiple_of(every) {
                            self.save_checkpoint(&session, policy)?;
                        }
                    }
                }
            }
            out.push(session.evaluate());
        }
        Ok(out)
    }

    /// Durably write the session's current [`crate::checkpoint::TrainState`]
    /// as a new generation, consulting the fault injector for a scheduled
    /// disk fault (testing hook; `None` in production).
    fn save_checkpoint(&self, session: &Session, policy: &CheckpointPolicy) -> Result<()> {
        let save_span = self.obs.span("pipeline/checkpoint/save");
        let dir = CheckpointDir::create(&policy.dir)?;
        let state = session.trainer.snapshot(&session.ps);
        let fault = self.injector.as_ref().and_then(|inj| inj.next_disk_fault());
        dir.save(&state, policy.keep, fault)?;
        save_span.finish();
        let epochs = session.trainer.epochs_done();
        self.obs.event("pipeline/checkpoint/save", || {
            format!("saved at epoch {epochs}")
        });
        Ok(())
    }
}

/// Training state bundled for incremental runs.
pub struct Session {
    /// The model under training.
    pub model: DgcnnModel,
    /// Its parameters.
    pub ps: ParamStore,
    /// Prepared training samples.
    pub train_samples: Vec<PreparedSample>,
    /// Prepared test samples.
    pub test_samples: Vec<PreparedSample>,
    /// Incremental trainer (owns optimizer state).
    pub trainer: Trainer,
    /// Observability handle inherited from the experiment (disabled when
    /// the experiment was not built with
    /// [`observe`](ExperimentBuilder::observe)).
    pub obs: Obs,
}

impl Session {
    /// Evaluate the current parameters on the test split (recorded as the
    /// `pipeline/evaluate` span when observability is attached).
    pub fn evaluate(&self) -> EvalMetrics {
        let _span = self.obs.span("pipeline/evaluate");
        evaluate_model(&self.model, &self.ps, &self.test_samples)
    }
}

/// Compute the paper's metrics for a model on a sample batch.
pub fn evaluate_model(
    model: &impl crate::train::LinkModel,
    ps: &ParamStore,
    samples: &[PreparedSample],
) -> EvalMetrics {
    let probs = predict_probs(model, ps, samples);
    let labels = labels_of(samples);
    let preds = argmax_predictions(&probs);
    EvalMetrics {
        auc: macro_auc(&probs, &labels),
        ap: average_precision(&preds, &labels, model.num_classes()),
        accuracy: accuracy(&preds, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_data::{wn18_like, Wn18Config};

    fn fast_hyper() -> Hyperparams {
        Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        }
    }

    #[test]
    fn run_returns_sane_metrics() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 0);
        let m = exp.run(&ds, 1).expect("run");
        assert!((0.0..=1.0).contains(&m.auc), "auc {}", m.auc);
        assert!((0.0..=1.0).contains(&m.ap));
        assert!((0.0..=1.0).contains(&m.accuracy));
    }

    #[test]
    fn checkpointed_run_matches_oneshot() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 1);
        // Train 1 then continue to 3 — final checkpoint must equal a fresh
        // run trained straight to 3 epochs (incremental training is exact).
        let stepped = exp
            .run_session(exp.session(&ds, None).expect("session"), &[1, 3])
            .expect("checkpoints");
        let direct = exp.run(&ds, 3).expect("run");
        assert_eq!(stepped.len(), 2);
        assert_eq!(stepped[1], direct);
    }

    #[test]
    fn train_subset_limits_samples() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 2);
        let session = exp.session(&ds, Some(10)).expect("session");
        assert_eq!(session.train_samples.len(), 10);
        assert_eq!(session.test_samples.len(), ds.test.len());
    }

    #[test]
    fn oversized_subset_is_an_error() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 2);
        let requested = ds.train.len() + 1;
        let err = exp.session(&ds, Some(requested)).err().expect("error");
        assert_eq!(
            err,
            Error::SubsetTooLarge {
                requested,
                available: ds.train.len(),
            }
        );
    }

    #[test]
    fn descending_checkpoints_rejected() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 3);
        let err = exp
            .run_session(exp.session(&ds, None).expect("session"), &[3, 1])
            .expect_err("error");
        assert_eq!(
            err,
            Error::DescendingCheckpoints {
                epochs_done: 3,
                requested: 1,
            }
        );
    }

    #[test]
    fn builder_matches_new_and_sets_knobs() {
        let ds = wn18_like(&Wn18Config::tiny());
        let via_new = Experiment::new(GnnKind::Gcn, fast_hyper(), 5);
        let via_builder = Experiment::builder()
            .gnn(GnnKind::Gcn)
            .hyper(fast_hyper())
            .seed(5)
            .build();
        assert_eq!(
            via_new.run(&ds, 1).expect("run"),
            via_builder.run(&ds, 1).expect("run"),
            "builder defaults must match Experiment::new"
        );

        let tuned = Experiment::builder()
            .batch_size(4)
            .grad_clip(None)
            .schedule(LrSchedule::StepDecay {
                every: 1,
                gamma: 0.5,
            })
            .build();
        assert_eq!(tuned.train.batch_size, 4);
        assert_eq!(tuned.train.grad_clip, None);
        let session = tuned.session(&ds, Some(4)).expect("session");
        assert!(matches!(
            session.trainer.schedule(),
            LrSchedule::StepDecay { .. }
        ));
    }
}
