//! High-level experiment pipeline: dataset → prepared samples → trained
//! model → metrics. This is the API the paper's tables and figures are
//! regenerated through (crates/bench) and the entry point for examples.

use crate::features::FeatureConfig;
use crate::metrics::{accuracy, argmax_predictions, average_precision, macro_auc};
use crate::model::{DgcnnModel, GnnKind, ModelConfig};
use crate::sample::{prepare_batch, PreparedSample};
use crate::train::{labels_of, predict_probs, TrainConfig, Trainer};
use amdgcnn_data::Dataset;
use amdgcnn_tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

/// The tunable hyperparameters of Table I.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct Hyperparams {
    /// Learning rate ∈ [1e-6, 1e-2].
    pub lr: f32,
    /// GNN hidden dimension ∈ {16, 32, 64, 128}.
    pub hidden_dim: usize,
    /// Sort-aggregator k ∈ [5, 150].
    pub sort_k: usize,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            hidden_dim: 32,
            sort_k: 30,
        }
    }
}

/// Evaluation summary on a test split.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct EvalMetrics {
    /// Macro one-vs-rest ROC-AUC.
    pub auc: f64,
    /// The paper's Average Precision (macro per-class precision).
    pub ap: f64,
    /// Argmax accuracy.
    pub accuracy: f64,
}

/// A runnable experiment binding a dataset to a model variant and
/// hyperparameters.
pub struct Experiment {
    /// Model variant (vanilla DGCNN / AM-DGCNN / ablations).
    pub gnn: GnnKind,
    /// Table I hyperparameters.
    pub hyper: Hyperparams,
    /// Training settings (epochs are driven by the runner methods).
    pub train: TrainConfig,
}

impl Experiment {
    /// Experiment with default training settings at the given
    /// hyperparameters.
    pub fn new(gnn: GnnKind, hyper: Hyperparams, seed: u64) -> Self {
        let train = TrainConfig {
            lr: hyper.lr,
            seed,
            ..Default::default()
        };
        Self { gnn, hyper, train }
    }

    fn model_config(&self, ds: &Dataset, fcfg: &FeatureConfig) -> ModelConfig {
        let mut cfg =
            ModelConfig::dgcnn_defaults(self.gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
        cfg.hidden_dim = self.hyper.hidden_dim;
        cfg.sort_k = self.hyper.sort_k;
        cfg.num_relations = ds.graph.num_edge_types();
        cfg
    }

    /// Prepare splits, build the model, train `epochs`, and evaluate on the
    /// test split.
    pub fn run(&self, ds: &Dataset, epochs: usize) -> EvalMetrics {
        let session = self.session(ds, None);
        self.run_session(session, &[epochs])
            .pop()
            .expect("one checkpoint requested")
    }

    /// Build a reusable session (prepared samples + fresh model).
    pub fn session(&self, ds: &Dataset, train_subset: Option<usize>) -> Session {
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let cfg = self.model_config(ds, &fcfg);
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(self.train.seed ^ 0x5eed_1a7e);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let train_links = match train_subset {
            Some(n) => &ds.train[..n.min(ds.train.len())],
            None => &ds.train[..],
        };
        Session {
            model,
            ps,
            train_samples: prepare_batch(ds, train_links, &fcfg),
            test_samples: prepare_batch(ds, &ds.test, &fcfg),
            trainer: Trainer::new(self.train),
        }
    }

    /// Train a session to each checkpoint in `epoch_checkpoints`
    /// (ascending), evaluating on the test split at every checkpoint — the
    /// shape of the paper's epoch sweeps (Figs. 3–6).
    pub fn run_session(
        &self,
        mut session: Session,
        epoch_checkpoints: &[usize],
    ) -> Vec<EvalMetrics> {
        let mut out = Vec::with_capacity(epoch_checkpoints.len());
        for &target in epoch_checkpoints {
            assert!(
                target >= session.trainer.epochs_done(),
                "checkpoints must be ascending"
            );
            let additional = target - session.trainer.epochs_done();
            if additional > 0 {
                session.trainer.train(
                    &session.model,
                    &mut session.ps,
                    &session.train_samples,
                    additional,
                );
            }
            out.push(session.evaluate());
        }
        out
    }
}

/// Training state bundled for incremental runs.
pub struct Session {
    /// The model under training.
    pub model: DgcnnModel,
    /// Its parameters.
    pub ps: ParamStore,
    /// Prepared training samples.
    pub train_samples: Vec<PreparedSample>,
    /// Prepared test samples.
    pub test_samples: Vec<PreparedSample>,
    /// Incremental trainer (owns optimizer state).
    pub trainer: Trainer,
}

impl Session {
    /// Evaluate the current parameters on the test split.
    pub fn evaluate(&self) -> EvalMetrics {
        evaluate_model(&self.model, &self.ps, &self.test_samples)
    }
}

/// Compute the paper's metrics for a model on a sample batch.
pub fn evaluate_model(
    model: &impl crate::train::LinkModel,
    ps: &ParamStore,
    samples: &[PreparedSample],
) -> EvalMetrics {
    let probs = predict_probs(model, ps, samples);
    let labels = labels_of(samples);
    let preds = argmax_predictions(&probs);
    EvalMetrics {
        auc: macro_auc(&probs, &labels),
        ap: average_precision(&preds, &labels, model.num_classes()),
        accuracy: accuracy(&preds, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_data::{wn18_like, Wn18Config};

    fn fast_hyper() -> Hyperparams {
        Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        }
    }

    #[test]
    fn run_returns_sane_metrics() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 0);
        let m = exp.run(&ds, 1);
        assert!((0.0..=1.0).contains(&m.auc), "auc {}", m.auc);
        assert!((0.0..=1.0).contains(&m.ap));
        assert!((0.0..=1.0).contains(&m.accuracy));
    }

    #[test]
    fn checkpointed_run_matches_oneshot() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::am_dgcnn(), fast_hyper(), 1);
        // Train 1 then continue to 3 — final checkpoint must equal a fresh
        // run trained straight to 3 epochs (incremental training is exact).
        let stepped = exp.run_session(exp.session(&ds, None), &[1, 3]);
        let direct = exp.run(&ds, 3);
        assert_eq!(stepped.len(), 2);
        assert_eq!(stepped[1], direct);
    }

    #[test]
    fn train_subset_limits_samples() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 2);
        let session = exp.session(&ds, Some(10));
        assert_eq!(session.train_samples.len(), 10);
        assert_eq!(session.test_samples.len(), ds.test.len());
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn descending_checkpoints_rejected() {
        let ds = wn18_like(&Wn18Config::tiny());
        let exp = Experiment::new(GnnKind::Gcn, fast_hyper(), 3);
        let _ = exp.run_session(exp.session(&ds, None), &[3, 1]);
    }
}
