//! Data-parallel training and evaluation.
//!
//! Each sample's forward/backward runs on its own tape, so a minibatch fans
//! out over rayon workers with the parameters shared read-only (`Arc`
//! snapshots). Per-sample gradients are reduced **in sample order** — a
//! parallel map followed by an ordered fold — so training is bit-for-bit
//! reproducible for a fixed seed regardless of thread scheduling.

use crate::error::{Error, Result};
use crate::sample::PreparedSample;
use crate::schedule::LrSchedule;
use amdgcnn_nn::{Adam, Optimizer};
use amdgcnn_tensor::{GradStore, Matrix, ParamStore, Tape, Var};
use rand::{rngs::StdRng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// A subgraph-level link classifier the trainer can drive: anything that
/// maps a [`PreparedSample`] to `[1, num_classes]` logits on a tape.
/// Implemented by [`crate::model::DgcnnModel`] (both GNN variants) and
/// [`crate::wlnm::WlnmModel`] (the §VI-B baseline).
pub trait LinkModel: Sync {
    /// Forward pass producing `[1, num_classes]` logits. `dropout_rng`
    /// enables training-mode stochastic regularization.
    fn forward_sample(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var;

    /// Number of output classes.
    fn num_classes(&self) -> usize;
}

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Adam learning rate (Table I search dimension).
    pub lr: f32,
    /// Samples per gradient step.
    pub batch_size: usize,
    /// Global-norm gradient clip (`None` disables).
    pub grad_clip: Option<f32>,
    /// Seed for shuffling and dropout.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 1e-3,
            batch_size: 16,
            grad_clip: Some(5.0),
            seed: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
}

/// Incremental trainer: owns the optimizer state so callers can train a few
/// epochs, evaluate, and continue (the paper's epoch sweeps, Figs. 3–6).
pub struct Trainer {
    cfg: TrainConfig,
    optimizer: Adam,
    epoch: usize,
    schedule: LrSchedule,
    /// Loss history across all epochs trained so far.
    pub history: Vec<EpochStats>,
}

impl Trainer {
    /// New trainer with Adam at `cfg.lr` and a constant schedule.
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            cfg,
            optimizer: Adam::new(cfg.lr),
            epoch: 0,
            schedule: LrSchedule::Constant,
            history: Vec::new(),
        }
    }

    /// Replace the learning-rate schedule (applies from the next epoch).
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Number of epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// The learning rate the optimizer is currently using.
    pub fn current_lr(&self) -> f32 {
        self.optimizer.learning_rate()
    }

    /// The learning-rate schedule in effect.
    pub fn schedule(&self) -> LrSchedule {
        self.schedule
    }

    /// Train for `epochs` additional epochs.
    ///
    /// # Errors
    /// [`Error::EmptySplit`] when `samples` is empty — there is nothing to
    /// fit, and silently "training" zero samples would desynchronize the
    /// epoch counter from the optimizer state.
    pub fn train(
        &mut self,
        model: &impl LinkModel,
        ps: &mut ParamStore,
        samples: &[PreparedSample],
        epochs: usize,
    ) -> Result<()> {
        if samples.is_empty() {
            return Err(Error::EmptySplit);
        }
        for _ in 0..epochs {
            self.epoch += 1;
            self.optimizer
                .set_learning_rate(self.schedule.lr_at(self.cfg.lr, self.epoch));
            let mut order: Vec<usize> = (0..samples.len()).collect();
            let mut shuffle_rng =
                StdRng::seed_from_u64(self.cfg.seed ^ (self.epoch as u64).wrapping_mul(0x9E37));
            amdgcnn_data::types::shuffle(&mut order, &mut shuffle_rng);

            let mut epoch_loss = 0.0f64;
            for chunk in order.chunks(self.cfg.batch_size) {
                // Parallel per-sample gradients; ordered reduction below.
                let results: Vec<(f32, GradStore)> = chunk
                    .par_iter()
                    .map(|&idx| {
                        let sample = &samples[idx];
                        let mut dropout_rng = StdRng::seed_from_u64(
                            self.cfg.seed
                                ^ (self.epoch as u64) << 32
                                ^ (idx as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                        );
                        let mut tape = Tape::new();
                        let logits =
                            model.forward_sample(&mut tape, ps, sample, Some(&mut dropout_rng));
                        let loss = tape.softmax_cross_entropy(logits, Arc::new(vec![sample.label]));
                        let loss_val = tape.value(loss).get(0, 0);
                        let grads = tape.backward(loss, ps.len());
                        (loss_val, grads)
                    })
                    .collect();

                let mut batch_grads = GradStore::new(ps.len());
                for (loss_val, grads) in &results {
                    epoch_loss += *loss_val as f64;
                    batch_grads.merge(grads);
                }
                batch_grads.scale(1.0 / chunk.len() as f32);
                if let Some(clip) = self.cfg.grad_clip {
                    batch_grads.clip_global_norm(clip);
                }
                self.optimizer.step(ps, &batch_grads);
            }
            self.history.push(EpochStats {
                epoch: self.epoch,
                loss: (epoch_loss / samples.len() as f64) as f32,
            });
        }
        Ok(())
    }
}

/// Class-probability predictions for a batch of samples (inference mode,
/// parallel, order preserved). Returns `[num_samples, num_classes]`.
pub fn predict_probs(
    model: &impl LinkModel,
    ps: &ParamStore,
    samples: &[PreparedSample],
) -> Matrix {
    let rows: Vec<Vec<f32>> = samples
        .par_iter()
        .map(|sample| {
            let mut tape = Tape::new();
            let logits = model.forward_sample(&mut tape, ps, sample, None);
            let probs = tape.softmax_rows(logits);
            tape.value(probs).row(0).to_vec()
        })
        .collect();
    let cols = model.num_classes();
    let mut out = Matrix::zeros(rows.len(), cols);
    for (r, row) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(row);
    }
    out
}

/// Labels of a sample batch.
pub fn labels_of(samples: &[PreparedSample]) -> Vec<usize> {
    samples.iter().map(|s| s.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::model::{DgcnnModel, GnnKind, ModelConfig};
    use crate::sample::prepare_batch;
    use amdgcnn_data::{wn18_like, Wn18Config};

    fn tiny_setup(gnn: GnnKind) -> (DgcnnModel, ParamStore, Vec<PreparedSample>) {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cfg =
            ModelConfig::dgcnn_defaults(gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
        cfg.hidden_dim = 8;
        cfg.sort_k = 10;
        cfg.dense_dim = 16;
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let samples = prepare_batch(&ds, &ds.train[..24.min(ds.train.len())], &fcfg);
        (model, ps, samples)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::am_dgcnn());
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 0,
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&model, &mut ps, &samples, 8).expect("train");
        let first = trainer.history.first().expect("history").loss;
        let last = trainer.history.last().expect("history").loss;
        assert!(
            last < first,
            "training loss should fall: first {first}, last {last}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let (model, mut ps, samples) = tiny_setup(GnnKind::am_dgcnn());
            let mut trainer = Trainer::new(TrainConfig {
                lr: 5e-3,
                seed: 42,
                ..Default::default()
            });
            trainer.train(&model, &mut ps, &samples, 3).expect("train");
            let probs = predict_probs(&model, &ps, &samples);
            (
                trainer.history.iter().map(|e| e.loss).collect::<Vec<_>>(),
                probs,
            )
        };
        let (h1, p1) = run();
        let (h2, p2) = run();
        assert_eq!(
            h1, h2,
            "loss history must be reproducible under parallelism"
        );
        assert_eq!(p1, p2, "predictions must be reproducible");
    }

    #[test]
    fn predictions_are_valid_distributions() {
        let (model, ps, samples) = tiny_setup(GnnKind::Gcn);
        let probs = predict_probs(&model, &ps, &samples);
        assert_eq!(probs.rows(), samples.len());
        for r in 0..probs.rows() {
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn incremental_training_continues() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&model, &mut ps, &samples, 2).expect("train");
        assert_eq!(trainer.epochs_done(), 2);
        trainer.train(&model, &mut ps, &samples, 3).expect("train");
        assert_eq!(trainer.epochs_done(), 5);
        assert_eq!(trainer.history.len(), 5);
        // Epoch indices are contiguous.
        for (i, e) in trainer.history.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
        }
    }

    #[test]
    fn schedule_drives_optimizer_lr() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 0.8,
            ..Default::default()
        })
        .with_schedule(crate::schedule::LrSchedule::StepDecay {
            every: 1,
            gamma: 0.5,
        });
        trainer.train(&model, &mut ps, &samples, 1).expect("train");
        assert!((trainer.current_lr() - 0.8).abs() < 1e-6);
        trainer.train(&model, &mut ps, &samples, 1).expect("train");
        assert!((trainer.current_lr() - 0.4).abs() < 1e-6);
        trainer.train(&model, &mut ps, &samples, 2).expect("train");
        assert!((trainer.current_lr() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn labels_roundtrip() {
        let (_, _, samples) = tiny_setup(GnnKind::Gcn);
        let labels = labels_of(&samples);
        assert_eq!(labels.len(), samples.len());
        for (l, s) in labels.iter().zip(samples.iter()) {
            assert_eq!(*l, s.label);
        }
    }

    #[test]
    fn empty_split_rejected() {
        let (model, mut ps, _) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig::default());
        let err = trainer.train(&model, &mut ps, &[], 1).unwrap_err();
        assert_eq!(err, Error::EmptySplit);
        assert_eq!(
            trainer.epochs_done(),
            0,
            "failed call must not advance epochs"
        );
    }
}
