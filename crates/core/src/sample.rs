//! Prepared training/evaluation samples: everything a model forward pass
//! needs for one target link, precomputed once (subgraph, features, and the
//! unified [`MessageGraph`] message-passing operand).

use crate::features::{build_node_features, FeatureConfig};
use amdgcnn_data::{Dataset, LabeledLink};
use amdgcnn_graph::khop::{extract_neighborhood, label_with_drnl};
use amdgcnn_graph::LocalEdge;
use amdgcnn_nn::MessageGraph;
use amdgcnn_obs::{Obs, Timer};
use amdgcnn_tensor::Matrix;
use rayon::prelude::*;

/// One fully prepared sample.
#[derive(Debug, Clone)]
pub struct PreparedSample {
    /// Node attribute matrix `[N, feature_dim]`.
    pub features: Matrix,
    /// Unified message-passing operand: CSR topology, relation types, and
    /// expanded edge attributes, consumed by every layer family.
    pub graph: MessageGraph,
    /// Class label.
    pub label: usize,
    /// Subgraph node count.
    pub num_nodes: usize,
    /// Subgraph edge count (target link excluded).
    pub num_edges: usize,
    /// Raw induced edges in local indices (used by the WLNM baseline).
    pub edges: Vec<LocalEdge>,
    /// DRNL label per local node (locals 0 and 1 are the targets).
    pub drnl: Vec<u32>,
}

/// Cached span timers for the three phases of sample preparation.
/// Resolve once per batch (outside the rayon fan-out) and share by
/// reference into the workers — each record is then atomics only.
#[derive(Debug)]
pub struct SampleTimers {
    total: Timer,
    khop: Timer,
    drnl: Timer,
    tensorize: Timer,
}

impl SampleTimers {
    /// Resolve the `pipeline/sample*` spans against `obs` (no-op handles
    /// when `obs` is disabled).
    pub fn new(obs: &Obs) -> Self {
        Self {
            total: obs.timer("pipeline/sample"),
            khop: obs.timer("pipeline/sample/khop"),
            drnl: obs.timer("pipeline/sample/drnl"),
            tensorize: obs.timer("pipeline/sample/tensorize"),
        }
    }
}

/// Prepare one labeled link: extract the enclosing subgraph (target link
/// hidden), label with DRNL, build features and the message-passing
/// operand.
pub fn prepare_sample(ds: &Dataset, link: &LabeledLink, fcfg: &FeatureConfig) -> PreparedSample {
    prepare_sample_obs(ds, link, fcfg, &SampleTimers::new(&Obs::disabled()))
}

/// [`prepare_sample`] with per-phase span timing (k-hop walk, DRNL
/// labeling, tensorization) recorded into the given timers.
pub fn prepare_sample_obs(
    ds: &Dataset,
    link: &LabeledLink,
    fcfg: &FeatureConfig,
    timers: &SampleTimers,
) -> PreparedSample {
    let _total = timers.total.start();
    let khop_span = timers.khop.start();
    let induced = extract_neighborhood(&ds.graph, link.u, link.v, &ds.subgraph);
    khop_span.finish();
    let drnl_span = timers.drnl.start();
    let sub = label_with_drnl(induced);
    drnl_span.finish();
    let _tensorize = timers.tensorize.start();
    let features = build_node_features(&sub, fcfg);
    let graph = message_graph_for(ds, sub.num_nodes(), &sub.edges);
    PreparedSample {
        features,
        graph,
        label: link.class,
        num_nodes: sub.num_nodes(),
        num_edges: sub.num_edges(),
        edges: sub.edges.clone(),
        drnl: sub.drnl.clone(),
    }
}

/// Build the unified message-passing operand for a subgraph's induced
/// edges, expanding per-type edge attributes from the dataset's table.
///
/// Both [`prepare_sample_obs`] and the sample store's decode path
/// ([`crate::store::SampleStore`]) go through this function, so a stored
/// sample is rebuilt by the exact code that built it — bit-identical by
/// construction ([`MessageGraph::from_typed`] is deterministic).
pub fn message_graph_for(ds: &Dataset, num_nodes: usize, edges: &[LocalEdge]) -> MessageGraph {
    let typed = typed_edges(edges);
    let per_edge = per_edge_attrs(ds, edges);
    MessageGraph::from_typed(num_nodes, &typed, per_edge.as_ref())
}

/// Rebuild the message-passing operand from a persisted, already-sorted
/// message list — the sample store's warm-decode path. The topology sort
/// that dominates [`message_graph_for`] is skipped (the store captured
/// its output), leaving only linear counting sorts and copies; the result
/// is bit-identical to the built graph because `messages` *is* its
/// message list ([`MessageGraph::from_message_list`]).
///
/// # Panics
/// Panics on messages inconsistent with `edges`/`num_nodes` — callers
/// deserializing from disk must validate first. `pairs` holds one
/// `(src, dst)` per message grouped by non-decreasing `dst`; `orig` the
/// originating edge index per message (`u32::MAX` for self-loops).
pub fn message_graph_from_messages(
    ds: &Dataset,
    num_nodes: usize,
    edges: &[LocalEdge],
    pairs: &[(u32, u32)],
    orig: &[u32],
) -> MessageGraph {
    let typed = typed_edges(edges);
    let per_edge = per_edge_attrs(ds, edges);
    MessageGraph::from_message_list(num_nodes, &typed, pairs, orig, per_edge.as_ref())
}

fn typed_edges(edges: &[LocalEdge]) -> Vec<(usize, usize, u16)> {
    edges
        .iter()
        .map(|e| (e.u as usize, e.v as usize, e.etype))
        .collect()
}

/// Expand the dataset's per-type edge-attribute table to one row per
/// induced edge (`None` when the dataset carries no attributes).
fn per_edge_attrs(ds: &Dataset, edges: &[LocalEdge]) -> Option<Matrix> {
    (ds.edge_attrs.dim() > 0).then(|| {
        let mut per_edge = Matrix::zeros(edges.len(), ds.edge_attrs.dim());
        for (i, e) in edges.iter().enumerate() {
            per_edge
                .row_mut(i)
                .copy_from_slice(ds.edge_attrs.row(e.etype));
        }
        per_edge
    })
}

/// Prepare a batch of links in parallel (order preserved).
pub fn prepare_batch(
    ds: &Dataset,
    links: &[LabeledLink],
    fcfg: &FeatureConfig,
) -> Vec<PreparedSample> {
    prepare_batch_obs(ds, links, fcfg, &Obs::disabled())
}

/// [`prepare_batch`] with per-phase span timing recorded into `obs`.
/// Timers are resolved once here, then shared read-only across the rayon
/// workers; timing never influences the prepared samples, so the output is
/// bit-identical to the untimed path.
pub fn prepare_batch_obs(
    ds: &Dataset,
    links: &[LabeledLink],
    fcfg: &FeatureConfig,
    obs: &Obs,
) -> Vec<PreparedSample> {
    let timers = SampleTimers::new(obs);
    links
        .par_iter()
        .map(|l| prepare_sample_obs(ds, l, fcfg, &timers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_data::{cora_like, wn18_like, CoraConfig, Wn18Config};

    #[test]
    fn wn18_sample_has_edge_attrs() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        assert!(s.num_nodes >= 2);
        assert_eq!(s.features.rows(), s.num_nodes);
        assert_eq!(s.features.cols(), fcfg.dim());
        let ea = s.graph.edge_attrs().expect("wn18 has edge attrs");
        assert_eq!(ea.rows(), s.graph.num_messages());
        assert_eq!(ea.cols(), 18);
        assert_eq!(s.graph.num_nodes(), s.num_nodes);
    }

    #[test]
    fn cora_sample_has_no_edge_attrs() {
        let ds = cora_like(&CoraConfig::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let s = prepare_sample(&ds, &ds.train[0], &fcfg);
        assert!(s.graph.edge_attrs().is_none());
    }

    #[test]
    fn target_link_never_appears_in_messages() {
        // Locals 0 and 1 are the targets; no non-self-loop message may join
        // them directly.
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(1);
        for link in ds.train.iter().take(10) {
            let s = prepare_sample(&ds, link, &fcfg);
            let src = s.graph.csr().src_ids();
            let dst = s.graph.csr().dst_ids();
            for m in 0..s.graph.num_messages() {
                assert!(
                    !((src[m] == 0 && dst[m] == 1) || (src[m] == 1 && dst[m] == 0)),
                    "target link leaked into message structure"
                );
            }
        }
    }

    #[test]
    fn batch_preserves_order_and_labels() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(1);
        let batch = prepare_batch(&ds, &ds.train[..8], &fcfg);
        assert_eq!(batch.len(), 8);
        for (s, l) in batch.iter().zip(ds.train.iter()) {
            assert_eq!(s.label, l.class);
        }
    }

    #[test]
    fn preparation_is_deterministic() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(1);
        let a = prepare_sample(&ds, &ds.train[3], &fcfg);
        let b = prepare_sample(&ds, &ds.train[3], &fcfg);
        assert_eq!(a.features, b.features);
        assert_eq!(a.num_nodes, b.num_nodes);
        assert_eq!(a.num_edges, b.num_edges);
        assert_eq!(a.graph.csr().src_ids(), b.graph.csr().src_ids());
        assert_eq!(a.graph.relations(), b.graph.relations());
    }

    #[test]
    fn message_relations_match_induced_edges() {
        // Every non-self-loop message carries the relation of the edge it
        // came from — the R-GCN path reads these directly.
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(1);
        let s = prepare_sample(&ds, &ds.train[1], &fcfg);
        for (m, orig) in s.graph.orig_edge().iter().enumerate() {
            match orig {
                Some(e) => {
                    assert_eq!(s.graph.relations()[m], Some(s.edges[*e].etype));
                }
                None => assert_eq!(s.graph.relations()[m], None),
            }
        }
    }
}
