//! Deterministic fault injection shared by the trainer and the serving
//! layer.
//!
//! Production GNN stacks treat worker crashes, slow calls, transient
//! backend errors, and numerical divergence as expected events. Testing the
//! recovery machinery with real faults (killing threads, racing timers) is
//! flaky by construction, so instead every fault-tolerant component in this
//! workspace consults a [`FaultInjector`]: a seeded, counter-driven
//! schedule that decides — purely from the plan, the seed, and how many
//! times it has been asked — whether the next engine call should panic,
//! fail transiently, or run slow, and whether a training epoch's loss or
//! checkpoint should be corrupted.
//!
//! Determinism contract: with a single consumer per counter (one batch
//! worker, one trainer), the sequence of decisions is a pure function of
//! the [`FaultPlan`]. Rate-based faults draw from an RNG seeded by
//! `plan.seed`, so re-running the same plan against the same call sequence
//! replays the same faults.

use amdgcnn_tensor::DiskFault;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A fault decision for one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// The call panics (simulating a crashed batch worker).
    Panic,
    /// The call fails with a retryable [`TransientFault`].
    Transient,
    /// The call succeeds but only after the given artificial delay.
    Latency(Duration),
}

/// Retryable error returned by an engine call under transient-fault
/// injection (and, in a real deployment, by flaky backends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientFault {
    /// 1-based index of the engine call that failed.
    pub call: u64,
}

impl std::fmt::Display for TransientFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transient engine fault injected at call {}", self.call)
    }
}

impl std::error::Error for TransientFault {}

/// Declarative fault schedule. All fields default to "never fault"; engine
/// faults are decided per call with precedence panic > transient > latency
/// (at most one fault per call).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the rate-based draws below.
    pub seed: u64,
    /// Panic on every n-th engine call (calls are 1-based; fires when
    /// `call % n == 0`).
    pub panic_every_n_calls: Option<u64>,
    /// Panic on exactly these 1-based engine calls.
    pub panic_calls: Vec<u64>,
    /// Per-call panic probability in `[0, 1]`, drawn from the seeded RNG.
    pub panic_rate: f64,
    /// Transient failure on every n-th engine call.
    pub transient_every_n_calls: Option<u64>,
    /// Transient failure on exactly these 1-based engine calls.
    pub transient_calls: Vec<u64>,
    /// Per-call transient-failure probability in `[0, 1]`.
    pub transient_rate: f64,
    /// Artificial latency injected on every n-th engine call.
    pub latency_every_n_calls: Option<u64>,
    /// The injected delay (defaults to zero — set it together with
    /// `latency_every_n_calls`).
    pub latency: Duration,
    /// Force the training loss to NaN on the *first attempt* of these
    /// epochs (1-based). Retries of the same epoch run clean, modelling a
    /// transient numerical glitch the watchdog can recover from.
    pub nan_loss_epochs: Vec<usize>,
    /// Force the training loss to NaN on *every attempt* of these epochs,
    /// modelling genuine divergence that exhausts the retry budget.
    pub persistent_nan_loss_epochs: Vec<usize>,
    /// Corrupt the watchdog's rollback checkpoint taken at these epochs
    /// (1-based), so restoring it must be detected and refused.
    pub corrupt_checkpoint_epochs: Vec<usize>,
    /// Tear these 1-based durable writes: the file is renamed into place
    /// holding only a prefix of its bytes (a crash racing writeback).
    pub torn_write_saves: Vec<u64>,
    /// Flip one bit in the middle of these 1-based durable writes,
    /// modelling silent media corruption only checksums can catch.
    pub bit_flip_saves: Vec<u64>,
    /// Abort these 1-based durable writes before the atomic rename: the
    /// destination file never changes and a stale `.tmp` is left behind
    /// (a crash before commit).
    pub partial_flush_saves: Vec<u64>,
}

impl FaultPlan {
    /// Shorthand: panic every `n` engine calls.
    pub fn panic_every(n: u64) -> Self {
        Self {
            panic_every_n_calls: Some(n),
            ..Self::default()
        }
    }

    /// Shorthand: transient failure on the given 1-based calls.
    pub fn transient_on(calls: &[u64]) -> Self {
        Self {
            transient_calls: calls.to_vec(),
            ..Self::default()
        }
    }

    /// True when some engine-call fault can fire (training-side faults are
    /// not considered).
    pub fn engine_faults_possible(&self) -> bool {
        self.panic_every_n_calls.is_some()
            || !self.panic_calls.is_empty()
            || self.panic_rate > 0.0
            || self.transient_every_n_calls.is_some()
            || !self.transient_calls.is_empty()
            || self.transient_rate > 0.0
            || self.latency_every_n_calls.is_some()
    }
}

/// Thread-safe executor of a [`FaultPlan`]: counts engine calls and answers
/// fault queries deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: AtomicU64,
    saves: AtomicU64,
    rng: Mutex<StdRng>,
}

impl FaultInjector {
    /// Injector executing `plan` from call zero.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xfa01_7fa0);
        Self {
            plan,
            calls: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            rng: Mutex::new(rng),
        }
    }

    /// Number of engine calls observed so far.
    pub fn engine_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Decide the fault (if any) for the next engine call and advance the
    /// call counter.
    pub fn next_engine_fault(&self) -> Option<EngineFault> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let p = &self.plan;
        let hit = |every: Option<u64>, explicit: &[u64], rate: f64| {
            every.is_some_and(|n| n > 0 && call.is_multiple_of(n))
                || explicit.contains(&call)
                || (rate > 0.0 && {
                    let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
                    rng.random_range(0.0..1.0) < rate
                })
        };
        if hit(p.panic_every_n_calls, &p.panic_calls, p.panic_rate) {
            return Some(EngineFault::Panic);
        }
        if hit(
            p.transient_every_n_calls,
            &p.transient_calls,
            p.transient_rate,
        ) {
            return Some(EngineFault::Transient);
        }
        if p.latency_every_n_calls
            .is_some_and(|n| n > 0 && call.is_multiple_of(n))
        {
            return Some(EngineFault::Latency(p.latency));
        }
        None
    }

    /// Should the loss of `epoch` (1-based) at the given 0-based retry
    /// `attempt` be forced to NaN?
    pub fn nan_loss(&self, epoch: usize, attempt: usize) -> bool {
        (attempt == 0 && self.plan.nan_loss_epochs.contains(&epoch))
            || self.plan.persistent_nan_loss_epochs.contains(&epoch)
    }

    /// Should the rollback checkpoint taken at `epoch` be corrupted?
    pub fn corrupt_checkpoint(&self, epoch: usize) -> bool {
        self.plan.corrupt_checkpoint_epochs.contains(&epoch)
    }

    /// Number of durable writes observed so far.
    pub fn disk_saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Decide the durability fault (if any) for the next durable write and
    /// advance the save counter. Wired through the disk checkpoint path
    /// (`am_dgcnn::checkpoint`, `amdgcnn_serve::save_model_file`), so every
    /// crash-recovery branch is reachable deterministically. Precedence on
    /// a collision: torn write > bit flip > partial flush.
    pub fn next_disk_fault(&self) -> Option<DiskFault> {
        let save = self.saves.fetch_add(1, Ordering::Relaxed) + 1;
        let p = &self.plan;
        if p.torn_write_saves.contains(&save) {
            return Some(DiskFault::TornWrite);
        }
        if p.bit_flip_saves.contains(&save) {
            return Some(DiskFault::BitFlip);
        }
        if p.partial_flush_saves.contains(&save) {
            return Some(DiskFault::PartialFlush);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_schedule_fires_on_multiples() {
        let inj = FaultInjector::new(FaultPlan::panic_every(3));
        let faults: Vec<Option<EngineFault>> = (0..9).map(|_| inj.next_engine_fault()).collect();
        for (i, f) in faults.iter().enumerate() {
            let call = i as u64 + 1;
            if call.is_multiple_of(3) {
                assert_eq!(*f, Some(EngineFault::Panic), "call {call}");
            } else {
                assert_eq!(*f, None, "call {call}");
            }
        }
        assert_eq!(inj.engine_calls(), 9);
    }

    #[test]
    fn explicit_calls_and_precedence() {
        let plan = FaultPlan {
            panic_calls: vec![2],
            transient_calls: vec![2, 3],
            latency_every_n_calls: Some(1),
            latency: Duration::from_millis(7),
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.next_engine_fault(),
            Some(EngineFault::Latency(Duration::from_millis(7)))
        );
        // Panic outranks the transient scheduled on the same call.
        assert_eq!(inj.next_engine_fault(), Some(EngineFault::Panic));
        assert_eq!(inj.next_engine_fault(), Some(EngineFault::Transient));
    }

    #[test]
    fn rate_based_draws_replay_for_a_fixed_seed() {
        let plan = FaultPlan {
            seed: 42,
            transient_rate: 0.5,
            ..FaultPlan::default()
        };
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            (0..32).map(|_| inj.next_engine_fault()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "seeded schedule must replay");
        assert!(
            run().iter().any(|f| f.is_some()) && run().iter().any(|f| f.is_none()),
            "a 0.5 rate over 32 calls should mix faults and successes"
        );
    }

    #[test]
    fn training_faults_are_epoch_and_attempt_scoped() {
        let inj = FaultInjector::new(FaultPlan {
            nan_loss_epochs: vec![3],
            persistent_nan_loss_epochs: vec![5],
            corrupt_checkpoint_epochs: vec![4],
            ..FaultPlan::default()
        });
        assert!(inj.nan_loss(3, 0));
        assert!(!inj.nan_loss(3, 1), "transient NaN clears on retry");
        assert!(
            inj.nan_loss(5, 0) && inj.nan_loss(5, 3),
            "persistent NaN stays"
        );
        assert!(!inj.nan_loss(2, 0));
        assert!(inj.corrupt_checkpoint(4));
        assert!(!inj.corrupt_checkpoint(3));
    }

    #[test]
    fn quiet_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!((0..100).all(|_| inj.next_engine_fault().is_none()));
        assert!((0..100).all(|_| inj.next_disk_fault().is_none()));
        assert!(!FaultPlan::default().engine_faults_possible());
        assert!(FaultPlan::panic_every(2).engine_faults_possible());
    }

    #[test]
    fn disk_faults_fire_on_scheduled_saves_with_precedence() {
        let inj = FaultInjector::new(FaultPlan {
            torn_write_saves: vec![2],
            bit_flip_saves: vec![2, 3],
            partial_flush_saves: vec![3, 4],
            ..FaultPlan::default()
        });
        assert_eq!(inj.next_disk_fault(), None);
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::TornWrite));
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::BitFlip));
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::PartialFlush));
        assert_eq!(inj.next_disk_fault(), None);
        assert_eq!(inj.disk_saves(), 5);
    }
}
