//! Deterministic fault injection shared by the trainer and the serving
//! layer.
//!
//! Production GNN stacks treat worker crashes, slow calls, transient
//! backend errors, and numerical divergence as expected events. Testing the
//! recovery machinery with real faults (killing threads, racing timers) is
//! flaky by construction, so instead every fault-tolerant component in this
//! workspace consults a [`FaultInjector`]: a seeded, counter-driven
//! schedule that decides — purely from the plan, the seed, and how many
//! times it has been asked — whether the next engine call should panic,
//! fail transiently, or run slow, and whether a training epoch's loss or
//! checkpoint should be corrupted.
//!
//! Determinism contract: with a single consumer per counter (one batch
//! worker, one trainer), the sequence of decisions is a pure function of
//! the [`FaultPlan`]. Rate-based faults draw from an RNG seeded by
//! `plan.seed`, so re-running the same plan against the same call sequence
//! replays the same faults.

use amdgcnn_tensor::DiskFault;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A fault decision for one engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// The call panics (simulating a crashed batch worker).
    Panic,
    /// The call fails with a retryable [`TransientFault`].
    Transient,
    /// The call succeeds but only after the given artificial delay.
    Latency(Duration),
}

/// Retryable error returned by an engine call under transient-fault
/// injection (and, in a real deployment, by flaky backends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientFault {
    /// 1-based index of the engine call that failed.
    pub call: u64,
}

impl std::fmt::Display for TransientFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transient engine fault injected at call {}", self.call)
    }
}

impl std::error::Error for TransientFault {}

/// Declarative fault schedule. All fields default to "never fault"; engine
/// faults are decided per call with precedence panic > transient > latency
/// (at most one fault per call).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the rate-based draws below.
    pub seed: u64,
    /// Panic on every n-th engine call (calls are 1-based; fires when
    /// `call % n == 0`).
    pub panic_every_n_calls: Option<u64>,
    /// Panic on exactly these 1-based engine calls.
    pub panic_calls: Vec<u64>,
    /// Per-call panic probability in `[0, 1]`, drawn from the seeded RNG.
    pub panic_rate: f64,
    /// Transient failure on every n-th engine call.
    pub transient_every_n_calls: Option<u64>,
    /// Transient failure on exactly these 1-based engine calls.
    pub transient_calls: Vec<u64>,
    /// Per-call transient-failure probability in `[0, 1]`.
    pub transient_rate: f64,
    /// Artificial latency injected on every n-th engine call.
    pub latency_every_n_calls: Option<u64>,
    /// The injected delay (defaults to zero — set it together with
    /// `latency_every_n_calls`).
    pub latency: Duration,
    /// Force the training loss to NaN on the *first attempt* of these
    /// epochs (1-based). Retries of the same epoch run clean, modelling a
    /// transient numerical glitch the watchdog can recover from.
    pub nan_loss_epochs: Vec<usize>,
    /// Force the training loss to NaN on *every attempt* of these epochs,
    /// modelling genuine divergence that exhausts the retry budget.
    pub persistent_nan_loss_epochs: Vec<usize>,
    /// Corrupt the watchdog's rollback checkpoint taken at these epochs
    /// (1-based), so restoring it must be detected and refused.
    pub corrupt_checkpoint_epochs: Vec<usize>,
    /// Tear these 1-based durable writes: the file is renamed into place
    /// holding only a prefix of its bytes (a crash racing writeback).
    pub torn_write_saves: Vec<u64>,
    /// Flip one bit in the middle of these 1-based durable writes,
    /// modelling silent media corruption only checksums can catch.
    pub bit_flip_saves: Vec<u64>,
    /// Abort these 1-based durable writes before the atomic rename: the
    /// destination file never changes and a stale `.tmp` is left behind
    /// (a crash before commit).
    pub partial_flush_saves: Vec<u64>,
    /// Panic the prefetch worker on its *first attempt* at these 0-based
    /// sample indices (positions within the batch being prepared). The
    /// supervisor respawns the worker and the retry runs clean, so the
    /// pipeline's output must still be bit-identical to the serial path.
    pub prefetch_panic_samples: Vec<usize>,
}

impl FaultPlan {
    /// Shorthand: panic every `n` engine calls.
    pub fn panic_every(n: u64) -> Self {
        Self {
            panic_every_n_calls: Some(n),
            ..Self::default()
        }
    }

    /// Shorthand: transient failure on the given 1-based calls.
    pub fn transient_on(calls: &[u64]) -> Self {
        Self {
            transient_calls: calls.to_vec(),
            ..Self::default()
        }
    }

    /// True when some engine-call fault can fire (training-side faults are
    /// not considered).
    pub fn engine_faults_possible(&self) -> bool {
        self.panic_every_n_calls.is_some()
            || !self.panic_calls.is_empty()
            || self.panic_rate > 0.0
            || self.transient_every_n_calls.is_some()
            || !self.transient_calls.is_empty()
            || self.transient_rate > 0.0
            || self.latency_every_n_calls.is_some()
    }
}

/// Thread-safe executor of a [`FaultPlan`]: counts engine calls and answers
/// fault queries deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    calls: AtomicU64,
    saves: AtomicU64,
    prefetch_fired: Mutex<Vec<usize>>,
    rng: Mutex<StdRng>,
}

impl FaultInjector {
    /// Injector executing `plan` from call zero.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xfa01_7fa0);
        Self {
            plan,
            calls: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            prefetch_fired: Mutex::new(Vec::new()),
            rng: Mutex::new(rng),
        }
    }

    /// Should the prefetch worker preparing the 0-based sample `index`
    /// panic? Fires at most once per index — the respawned worker's retry
    /// of the same sample runs clean, modelling a transient worker crash.
    pub fn prefetch_panic(&self, index: usize) -> bool {
        if !self.plan.prefetch_panic_samples.contains(&index) {
            return false;
        }
        let mut fired = self
            .prefetch_fired
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if fired.contains(&index) {
            false
        } else {
            fired.push(index);
            true
        }
    }

    /// Number of engine calls observed so far.
    pub fn engine_calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Decide the fault (if any) for the next engine call and advance the
    /// call counter.
    pub fn next_engine_fault(&self) -> Option<EngineFault> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let p = &self.plan;
        let hit = |every: Option<u64>, explicit: &[u64], rate: f64| {
            every.is_some_and(|n| n > 0 && call.is_multiple_of(n))
                || explicit.contains(&call)
                || (rate > 0.0 && {
                    let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
                    rng.random_range(0.0..1.0) < rate
                })
        };
        if hit(p.panic_every_n_calls, &p.panic_calls, p.panic_rate) {
            return Some(EngineFault::Panic);
        }
        if hit(
            p.transient_every_n_calls,
            &p.transient_calls,
            p.transient_rate,
        ) {
            return Some(EngineFault::Transient);
        }
        if p.latency_every_n_calls
            .is_some_and(|n| n > 0 && call.is_multiple_of(n))
        {
            return Some(EngineFault::Latency(p.latency));
        }
        None
    }

    /// Should the loss of `epoch` (1-based) at the given 0-based retry
    /// `attempt` be forced to NaN?
    pub fn nan_loss(&self, epoch: usize, attempt: usize) -> bool {
        (attempt == 0 && self.plan.nan_loss_epochs.contains(&epoch))
            || self.plan.persistent_nan_loss_epochs.contains(&epoch)
    }

    /// Should the rollback checkpoint taken at `epoch` be corrupted?
    pub fn corrupt_checkpoint(&self, epoch: usize) -> bool {
        self.plan.corrupt_checkpoint_epochs.contains(&epoch)
    }

    /// Number of durable writes observed so far.
    pub fn disk_saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Decide the durability fault (if any) for the next durable write and
    /// advance the save counter. Wired through the disk checkpoint path
    /// (`am_dgcnn::checkpoint`, `amdgcnn_serve::save_model_file`), so every
    /// crash-recovery branch is reachable deterministically. Precedence on
    /// a collision: torn write > bit flip > partial flush.
    pub fn next_disk_fault(&self) -> Option<DiskFault> {
        let save = self.saves.fetch_add(1, Ordering::Relaxed) + 1;
        let p = &self.plan;
        if p.torn_write_saves.contains(&save) {
            return Some(DiskFault::TornWrite);
        }
        if p.bit_flip_saves.contains(&save) {
            return Some(DiskFault::BitFlip);
        }
        if p.partial_flush_saves.contains(&save) {
            return Some(DiskFault::PartialFlush);
        }
        None
    }
}

/// One fleet-scoped chaos action, applied to a replica of a serving fleet
/// between two queries. Actions are *topology* faults — they kill, drain,
/// or degrade whole replicas — and compose with the per-call engine faults
/// of each replica's own [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAction {
    /// Hard-kill the replica: its queued requests are failed (the router
    /// redistributes the callers), nothing drains.
    Crash {
        /// Replica index.
        replica: usize,
    },
    /// Rebuild a previously crashed/drained replica from the artifact and
    /// put it back in rotation.
    Respawn {
        /// Replica index.
        replica: usize,
    },
    /// Gracefully drain the replica: stop routing to it, move its queued
    /// requests to ring successors, let in-flight work finish.
    Drain {
        /// Replica index.
        replica: usize,
    },
    /// Force the replica's circuit breaker open, as a run of consecutive
    /// batch failures would.
    TripBreaker {
        /// Replica index.
        replica: usize,
    },
}

impl FleetAction {
    /// The replica this action targets.
    pub fn replica(&self) -> usize {
        match *self {
            FleetAction::Crash { replica }
            | FleetAction::Respawn { replica }
            | FleetAction::Drain { replica }
            | FleetAction::TripBreaker { replica } => replica,
        }
    }
}

/// A [`FleetAction`] pinned to a position in the query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Fire just before the `at_query`-th submitted query (1-based).
    pub at_query: u64,
    /// What to do.
    pub action: FleetAction,
}

/// A graph-mutation burst pinned to a position in the query stream: the
/// chaos driver generates `ops` concrete mutations (deterministically,
/// from the plan seed and the burst's position) and commits them as one
/// batch through the graph store, optionally under an injected WAL
/// [`DiskFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationEvent {
    /// Commit just before the `at_query`-th submitted query (1-based).
    pub at_query: u64,
    /// Number of mutation operations in this burst (≥ 1).
    pub ops: u32,
    /// Durability fault injected into the WAL append for this batch. A
    /// faulted batch must be *rejected* by a validated commit — the live
    /// graph stays on its previous generation.
    pub disk_fault: Option<DiskFault>,
}

/// A deterministic fleet-wide chaos schedule: topology events positioned in
/// the query stream plus one engine-level [`FaultPlan`] per replica.
///
/// Generated schedules ([`FleetPlan::chaos`]) keep one *protected* replica
/// that is never crashed, drained, breaker-tripped, or given engine
/// faults, so at least one healthy replica exists at every point of the
/// run — the precondition of the fleet invariant ("every query is answered
/// correctly or fails with a typed error").
#[derive(Debug, Clone, Default)]
pub struct FleetPlan {
    /// Seed the schedule was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Number of replicas the plan targets.
    pub replicas: usize,
    /// The replica index guaranteed untouched by every fault in this plan.
    pub protected: usize,
    /// Topology events, sorted by [`FleetEvent::at_query`].
    pub events: Vec<FleetEvent>,
    /// Per-replica engine fault plans (index-aligned; the protected
    /// replica's plan is quiet).
    pub engine_plans: Vec<FaultPlan>,
    /// Graph-mutation bursts, sorted by [`MutationEvent::at_query`]
    /// (empty for static-graph chaos runs).
    pub mutations: Vec<MutationEvent>,
}

impl FleetPlan {
    /// Generate a seeded chaos schedule for `replicas` replicas over a run
    /// of `queries` queries, with roughly `events` topology events.
    ///
    /// The generator tracks which replicas it has taken down so it only
    /// crashes/drains live ones and only respawns dead ones, and it never
    /// targets the protected replica (`seed % replicas`), keeping the
    /// ≥1-healthy-replica precondition true throughout the run by
    /// construction.
    pub fn chaos(seed: u64, replicas: usize, queries: u64, events: usize) -> Self {
        assert!(replicas > 0, "a fleet plan needs at least one replica");
        let protected = (seed % replicas as u64) as usize;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf1ee_7c4a);
        let mut steps: Vec<u64> = (0..events)
            .map(|_| rng.random_range(1..=queries.max(1)))
            .collect();
        steps.sort_unstable();
        let mut alive = vec![true; replicas];
        let mut planned = Vec::with_capacity(events);
        for at_query in steps {
            let up: Vec<usize> = (0..replicas)
                .filter(|&r| r != protected && alive[r])
                .collect();
            let down: Vec<usize> = (0..replicas).filter(|&r| !alive[r]).collect();
            // Bias toward respawns once replicas are down so the fleet
            // oscillates instead of decaying to protected-only.
            let action = if !down.is_empty() && rng.random_range(0.0..1.0) < 0.55 {
                let replica = down[rng.random_range(0..down.len())];
                alive[replica] = true;
                FleetAction::Respawn { replica }
            } else if !up.is_empty() {
                let replica = up[rng.random_range(0..up.len())];
                match rng.random_range(0u32..4) {
                    0 | 1 => {
                        alive[replica] = false;
                        FleetAction::Crash { replica }
                    }
                    2 => {
                        alive[replica] = false;
                        FleetAction::Drain { replica }
                    }
                    _ => FleetAction::TripBreaker { replica },
                }
            } else {
                // Everything but the protected replica is down and nothing
                // is respawnable (single-replica fleet): skip this slot.
                continue;
            };
            planned.push(FleetEvent { at_query, action });
        }
        let engine_plans = (0..replicas)
            .map(|r| {
                if r == protected {
                    FaultPlan::default()
                } else {
                    FaultPlan {
                        seed: seed.wrapping_mul(1_000_003).wrapping_add(r as u64),
                        panic_rate: 0.01,
                        transient_rate: 0.03,
                        latency_every_n_calls: Some(17),
                        latency: Duration::from_micros(500),
                        ..FaultPlan::default()
                    }
                }
            })
            .collect();
        Self {
            seed,
            replicas,
            protected,
            events: planned,
            engine_plans,
            mutations: Vec::new(),
        }
    }

    /// [`chaos`](Self::chaos) plus a seeded schedule of `bursts`
    /// graph-mutation bursts of 1..=`max_ops` operations each, positioned
    /// across the query stream. Roughly one burst in six carries an
    /// injected WAL [`DiskFault`] (cycling torn write / bit flip /
    /// partial flush), exercising the validated-commit rejection path
    /// interleaved with replica crashes and drains.
    pub fn chaos_with_mutations(
        seed: u64,
        replicas: usize,
        queries: u64,
        events: usize,
        bursts: usize,
        max_ops: u32,
    ) -> Self {
        let mut plan = Self::chaos(seed, replicas, queries, events);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut positions: Vec<u64> = (0..bursts)
            .map(|_| rng.random_range(1..=queries.max(1)))
            .collect();
        positions.sort_unstable();
        plan.mutations = positions
            .into_iter()
            .map(|at_query| {
                let ops = rng.random_range(1..=max_ops.max(1));
                let disk_fault = if rng.random_range(0u32..6) == 0 {
                    Some(match rng.random_range(0u32..3) {
                        0 => DiskFault::TornWrite,
                        1 => DiskFault::BitFlip,
                        _ => DiskFault::PartialFlush,
                    })
                } else {
                    None
                };
                MutationEvent {
                    at_query,
                    ops,
                    disk_fault,
                }
            })
            .collect();
        plan
    }

    /// True when any event, engine plan, or mutation burst can fire.
    pub fn faults_possible(&self) -> bool {
        !self.events.is_empty()
            || !self.mutations.is_empty()
            || self
                .engine_plans
                .iter()
                .any(FaultPlan::engine_faults_possible)
    }
}

/// Thread-safe executor of a [`FleetPlan`]'s topology events: counts
/// submitted queries and hands out the actions scheduled before each one.
///
/// Like [`FaultInjector`], determinism holds with a single consumer: one
/// chaos driver calling [`FleetInjector::actions_for_next_query`] per
/// submitted query replays the same action sequence for the same plan.
#[derive(Debug)]
pub struct FleetInjector {
    plan: FleetPlan,
    queries: AtomicU64,
    cursor: Mutex<usize>,
    mutation_cursor: Mutex<usize>,
}

impl FleetInjector {
    /// Executor over `plan`, starting before query 1.
    pub fn new(plan: FleetPlan) -> Self {
        debug_assert!(
            plan.events
                .windows(2)
                .all(|w| w[0].at_query <= w[1].at_query),
            "fleet events must be sorted by at_query"
        );
        debug_assert!(
            plan.mutations
                .windows(2)
                .all(|w| w[0].at_query <= w[1].at_query),
            "mutation events must be sorted by at_query"
        );
        Self {
            plan,
            queries: AtomicU64::new(0),
            cursor: Mutex::new(0),
            mutation_cursor: Mutex::new(0),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FleetPlan {
        &self.plan
    }

    /// Queries observed so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Advance to the next query and return every action scheduled at or
    /// before it that has not fired yet (events land "just before" their
    /// query, so an event at query `n` is returned by the `n`-th call).
    pub fn actions_for_next_query(&self) -> Vec<FleetAction> {
        let query = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        let mut cursor = self.cursor.lock().unwrap_or_else(|e| e.into_inner());
        let mut fired = Vec::new();
        while *cursor < self.plan.events.len() && self.plan.events[*cursor].at_query <= query {
            fired.push(self.plan.events[*cursor].action);
            *cursor += 1;
        }
        fired
    }

    /// Every mutation burst scheduled at or before `query` (1-based) that
    /// has not fired yet. Drive it with the same query index the
    /// [`actions_for_next_query`](Self::actions_for_next_query) call just
    /// advanced to ([`queries`](Self::queries)), so topology actions and
    /// mutations interleave at their planned positions.
    pub fn mutations_before(&self, query: u64) -> Vec<MutationEvent> {
        let mut cursor = self
            .mutation_cursor
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut fired = Vec::new();
        while *cursor < self.plan.mutations.len() && self.plan.mutations[*cursor].at_query <= query
        {
            fired.push(self.plan.mutations[*cursor]);
            *cursor += 1;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_schedule_fires_on_multiples() {
        let inj = FaultInjector::new(FaultPlan::panic_every(3));
        let faults: Vec<Option<EngineFault>> = (0..9).map(|_| inj.next_engine_fault()).collect();
        for (i, f) in faults.iter().enumerate() {
            let call = i as u64 + 1;
            if call.is_multiple_of(3) {
                assert_eq!(*f, Some(EngineFault::Panic), "call {call}");
            } else {
                assert_eq!(*f, None, "call {call}");
            }
        }
        assert_eq!(inj.engine_calls(), 9);
    }

    #[test]
    fn explicit_calls_and_precedence() {
        let plan = FaultPlan {
            panic_calls: vec![2],
            transient_calls: vec![2, 3],
            latency_every_n_calls: Some(1),
            latency: Duration::from_millis(7),
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.next_engine_fault(),
            Some(EngineFault::Latency(Duration::from_millis(7)))
        );
        // Panic outranks the transient scheduled on the same call.
        assert_eq!(inj.next_engine_fault(), Some(EngineFault::Panic));
        assert_eq!(inj.next_engine_fault(), Some(EngineFault::Transient));
    }

    #[test]
    fn rate_based_draws_replay_for_a_fixed_seed() {
        let plan = FaultPlan {
            seed: 42,
            transient_rate: 0.5,
            ..FaultPlan::default()
        };
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            (0..32).map(|_| inj.next_engine_fault()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "seeded schedule must replay");
        assert!(
            run().iter().any(|f| f.is_some()) && run().iter().any(|f| f.is_none()),
            "a 0.5 rate over 32 calls should mix faults and successes"
        );
    }

    #[test]
    fn training_faults_are_epoch_and_attempt_scoped() {
        let inj = FaultInjector::new(FaultPlan {
            nan_loss_epochs: vec![3],
            persistent_nan_loss_epochs: vec![5],
            corrupt_checkpoint_epochs: vec![4],
            ..FaultPlan::default()
        });
        assert!(inj.nan_loss(3, 0));
        assert!(!inj.nan_loss(3, 1), "transient NaN clears on retry");
        assert!(
            inj.nan_loss(5, 0) && inj.nan_loss(5, 3),
            "persistent NaN stays"
        );
        assert!(!inj.nan_loss(2, 0));
        assert!(inj.corrupt_checkpoint(4));
        assert!(!inj.corrupt_checkpoint(3));
    }

    #[test]
    fn quiet_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!((0..100).all(|_| inj.next_engine_fault().is_none()));
        assert!((0..100).all(|_| inj.next_disk_fault().is_none()));
        assert!(!FaultPlan::default().engine_faults_possible());
        assert!(FaultPlan::panic_every(2).engine_faults_possible());
    }

    #[test]
    fn chaos_plans_replay_and_never_touch_the_protected_replica() {
        let plan = FleetPlan::chaos(42, 4, 500, 24);
        assert_eq!(plan.replicas, 4);
        assert_eq!(plan.protected, 42 % 4);
        assert!(plan.faults_possible());
        // Deterministic regeneration.
        let again = FleetPlan::chaos(42, 4, 500, 24);
        assert_eq!(plan.events, again.events);
        // The protected replica is exempt from topology and engine faults.
        for e in &plan.events {
            assert_ne!(e.action.replica(), plan.protected, "event {e:?}");
        }
        assert!(!plan.engine_plans[plan.protected].engine_faults_possible());
        // Events are sorted so the injector can walk them with a cursor.
        assert!(plan
            .events
            .windows(2)
            .all(|w| w[0].at_query <= w[1].at_query));
    }

    #[test]
    fn chaos_plans_only_crash_live_and_respawn_dead_replicas() {
        for seed in [1u64, 7, 19, 133] {
            let plan = FleetPlan::chaos(seed, 3, 400, 40);
            let mut alive = [true; 3];
            for e in &plan.events {
                match e.action {
                    FleetAction::Crash { replica } | FleetAction::Drain { replica } => {
                        assert!(alive[replica], "seed {seed}: downing a dead replica");
                        alive[replica] = false;
                    }
                    FleetAction::Respawn { replica } => {
                        assert!(!alive[replica], "seed {seed}: respawning a live replica");
                        alive[replica] = true;
                    }
                    FleetAction::TripBreaker { replica } => {
                        assert!(alive[replica], "seed {seed}: tripping a dead replica");
                    }
                }
                assert!(
                    alive.iter().any(|&a| a),
                    "seed {seed}: schedule must keep >=1 replica alive"
                );
            }
        }
    }

    #[test]
    fn fleet_injector_fires_events_at_their_query_positions() {
        let plan = FleetPlan {
            replicas: 2,
            events: vec![
                FleetEvent {
                    at_query: 1,
                    action: FleetAction::Crash { replica: 1 },
                },
                FleetEvent {
                    at_query: 3,
                    action: FleetAction::Respawn { replica: 1 },
                },
                FleetEvent {
                    at_query: 3,
                    action: FleetAction::TripBreaker { replica: 1 },
                },
            ],
            ..FleetPlan::default()
        };
        let inj = FleetInjector::new(plan);
        assert_eq!(
            inj.actions_for_next_query(),
            vec![FleetAction::Crash { replica: 1 }]
        );
        assert_eq!(inj.actions_for_next_query(), Vec::new());
        assert_eq!(
            inj.actions_for_next_query(),
            vec![
                FleetAction::Respawn { replica: 1 },
                FleetAction::TripBreaker { replica: 1 }
            ]
        );
        assert_eq!(inj.actions_for_next_query(), Vec::new());
        assert_eq!(inj.queries(), 4);
    }

    #[test]
    fn mutation_chaos_plans_replay_and_interleave() {
        let plan = FleetPlan::chaos_with_mutations(11, 3, 1000, 20, 30, 4);
        assert_eq!(plan.mutations.len(), 30);
        assert!(plan.faults_possible());
        // Deterministic regeneration, sorted positions, sane op counts.
        let again = FleetPlan::chaos_with_mutations(11, 3, 1000, 20, 30, 4);
        assert_eq!(plan.mutations, again.mutations);
        assert_eq!(plan.events, again.events);
        assert!(plan
            .mutations
            .windows(2)
            .all(|w| w[0].at_query <= w[1].at_query));
        assert!(plan.mutations.iter().all(|m| (1..=4).contains(&m.ops)));
        // Over enough seeds, some bursts carry WAL faults and most don't.
        let faulted: usize = [11u64, 29, 47]
            .iter()
            .flat_map(|&s| FleetPlan::chaos_with_mutations(s, 3, 1000, 20, 30, 4).mutations)
            .filter(|m| m.disk_fault.is_some())
            .count();
        assert!(faulted > 0 && faulted < 60, "got {faulted} faulted bursts");
    }

    #[test]
    fn mutation_cursor_fires_bursts_at_their_positions() {
        let plan = FleetPlan {
            replicas: 1,
            mutations: vec![
                MutationEvent {
                    at_query: 2,
                    ops: 3,
                    disk_fault: None,
                },
                MutationEvent {
                    at_query: 2,
                    ops: 1,
                    disk_fault: Some(DiskFault::BitFlip),
                },
                MutationEvent {
                    at_query: 4,
                    ops: 2,
                    disk_fault: None,
                },
            ],
            ..FleetPlan::default()
        };
        let inj = FleetInjector::new(plan);
        assert!(inj.mutations_before(1).is_empty());
        let fired = inj.mutations_before(2);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].ops, 3);
        assert_eq!(fired[1].disk_fault, Some(DiskFault::BitFlip));
        assert!(inj.mutations_before(3).is_empty(), "no double-fire");
        assert_eq!(inj.mutations_before(9).len(), 1);
    }

    #[test]
    fn disk_faults_fire_on_scheduled_saves_with_precedence() {
        let inj = FaultInjector::new(FaultPlan {
            torn_write_saves: vec![2],
            bit_flip_saves: vec![2, 3],
            partial_flush_saves: vec![3, 4],
            ..FaultPlan::default()
        });
        assert_eq!(inj.next_disk_fault(), None);
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::TornWrite));
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::BitFlip));
        assert_eq!(inj.next_disk_fault(), Some(DiskFault::PartialFlush));
        assert_eq!(inj.next_disk_fault(), None);
        assert_eq!(inj.disk_saves(), 5);
    }
}
