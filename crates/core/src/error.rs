//! Error type of the pipeline's public API.
//!
//! The training/serving entry points (`Trainer::train`,
//! `Experiment::session`, `Experiment::run_session`) return these instead of
//! panicking, so long-running callers (the serving layer, the bench harness)
//! can surface misuse to their own callers.

/// Convenient alias used across the pipeline API.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Everything that can go wrong in the high-level pipeline API.
///
/// Mirrors the `thiserror` idiom (one variant per failure, `Display` gives
/// the human message, `std::error::Error` implemented) without the derive
/// dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Training was requested on an empty sample split.
    EmptySplit,
    /// `run_session` was given checkpoints that go backwards: a trainer
    /// cannot un-train epochs.
    DescendingCheckpoints {
        /// Epochs the session had already completed.
        epochs_done: usize,
        /// The (smaller) checkpoint that was requested next.
        requested: usize,
    },
    /// A training-subset size exceeded the available training split.
    SubsetTooLarge {
        /// The subset size the caller asked for.
        requested: usize,
        /// Links actually available in the training split.
        available: usize,
    },
    /// Training diverged (non-finite loss or gradients) and the watchdog's
    /// rollback/LR-halving retries were exhausted without recovering.
    Diverged {
        /// The epoch (1-based) that kept diverging.
        epoch: usize,
        /// Retries spent before giving up.
        retries: usize,
    },
    /// The watchdog's rollback checkpoint held non-finite parameters, so
    /// recovery could not proceed from it.
    CheckpointCorrupt {
        /// The epoch (1-based) whose checkpoint failed validation.
        epoch: usize,
    },
    /// A durable checkpoint could not be written, read, or verified
    /// (I/O failure, truncation, checksum mismatch). The detail carries
    /// the underlying error text; it is a `String` so the error type stays
    /// `Clone + PartialEq + Eq`.
    CheckpointIo {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A checkpoint loaded cleanly but does not belong to this experiment
    /// (different seed, parameter names, or shapes) — resuming from it
    /// would silently change the run.
    ResumeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A sample store file could not be read or written (plain I/O failure,
    /// not a verification failure).
    StoreIo {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A sample store failed integrity verification: unreadable header,
    /// truncated file, or a record whose CRC-32 does not match. Damaged
    /// records surface as store *misses* (the sample is re-prepared), never
    /// as garbage samples.
    StoreCorrupt {
        /// Human-readable description of what failed verification.
        detail: String,
    },
    /// A sample store exists and is intact but was built for different data
    /// or configuration (dataset digest, [`crate::FeatureConfig`]
    /// fingerprint, or graph generation differ). Reusing it would silently
    /// change prepared samples, so it is refused.
    StoreMismatch {
        /// Which fingerprint component diverged, with both values.
        detail: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptySplit => write!(f, "cannot train on an empty split"),
            Error::DescendingCheckpoints {
                epochs_done,
                requested,
            } => write!(
                f,
                "checkpoints must be ascending: {requested} requested after \
                 {epochs_done} epochs were already trained"
            ),
            Error::SubsetTooLarge {
                requested,
                available,
            } => write!(
                f,
                "training subset of {requested} links requested but only \
                 {available} are available"
            ),
            Error::Diverged { epoch, retries } => write!(
                f,
                "training diverged at epoch {epoch}: loss/gradients stayed \
                 non-finite after {retries} rollback retries"
            ),
            Error::CheckpointCorrupt { epoch } => write!(
                f,
                "rollback checkpoint for epoch {epoch} holds non-finite \
                 parameters; cannot recover from it"
            ),
            Error::CheckpointIo { detail } => {
                write!(f, "durable checkpoint failure: {detail}")
            }
            Error::ResumeMismatch { detail } => {
                write!(f, "checkpoint does not match this experiment: {detail}")
            }
            Error::StoreIo { detail } => {
                write!(f, "sample store I/O failure: {detail}")
            }
            Error::StoreCorrupt { detail } => {
                write!(f, "sample store failed verification: {detail}")
            }
            Error::StoreMismatch { detail } => {
                write!(f, "sample store belongs to different data: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_numbers() {
        let e = Error::DescendingCheckpoints {
            epochs_done: 3,
            requested: 1,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("ascending") && msg.contains('3') && msg.contains('1'),
            "{msg}"
        );

        let e = Error::SubsetTooLarge {
            requested: 10,
            available: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('4'), "{msg}");

        assert_eq!(
            Error::EmptySplit.to_string(),
            "cannot train on an empty split"
        );
    }
}
