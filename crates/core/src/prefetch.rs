//! Bounded prefetch pipeline for sample preparation.
//!
//! A pool of producer threads prepares enclosing-subgraph samples and
//! feeds them through a fixed-capacity channel to a consumer that
//! reassembles them **in sample-index order**. Because preparation is a
//! pure function of `(dataset, link, FeatureConfig)` and delivery is keyed
//! by index, the pipelined output is bit-identical to the serial path
//! regardless of worker count, channel capacity, or scheduling — the
//! repo's signature guarantee, proptested in
//! `crates/core/tests/prefetch_determinism.rs`.
//!
//! The pool is supervised: a worker that panics mid-sample (injectable via
//! [`FaultPlan::prefetch_panic_samples`](crate::fault::FaultPlan)) dies
//! after requeueing its claimed index through a `Died` message; the
//! consumer respawns a replacement, and the retried sample lands in its
//! slot as if nothing happened.
//!
//! Note on rayon: this workspace's offline `rayon` stand-in runs
//! sequentially, so the producer pool is built on `std::thread` scoped
//! threads plus a bounded `std::sync::mpsc` channel — real overlap with
//! real threads, while determinism comes from ordered reassembly rather
//! than execution order.
//!
//! When a [`SampleStore`] is attached, each worker first consults the
//! store (a *hit* decodes the persisted record instead of running k-hop /
//! DRNL / tensorize) and every miss is inserted after the batch completes,
//! so the next run over the same data is warm. Hits and misses are
//! recorded on the `pipeline/prefetch/store_hit` / `store_miss` counters;
//! production and consumer-wait time land in `pipeline/prefetch/produce`
//! and `pipeline/prefetch/wait`.

use crate::fault::FaultInjector;
use crate::features::FeatureConfig;
use crate::sample::{prepare_sample_obs, PreparedSample, SampleTimers};
use crate::store::SampleStore;
use amdgcnn_data::{Dataset, LabeledLink};
use amdgcnn_obs::{Obs, Timer};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Mutex;

/// Prefetch-pipeline settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Producer threads. `0` (the default) runs the serial in-line path;
    /// `n >= 1` spawns `n` supervised workers. Results are bit-identical
    /// either way.
    pub workers: usize,
    /// Channel slots between producers and the consumer (clamped to at
    /// least 1). Bounds memory: at most `capacity + workers` samples are
    /// in flight.
    pub capacity: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            capacity: 8,
        }
    }
}

/// What a producer hands the consumer.
enum Produced {
    /// One prepared (or store-decoded) sample, keyed by its index.
    Sample {
        idx: usize,
        hit: bool,
        sample: Box<PreparedSample>,
    },
    /// The worker panicked while holding `idx` and is about to exit; the
    /// consumer requeues the index and respawns a replacement.
    Died { idx: usize },
}

/// Everything a worker thread needs, shared by reference across the pool.
struct WorkerCtx<'a> {
    ds: &'a Dataset,
    links: &'a [LabeledLink],
    fcfg: &'a FeatureConfig,
    timers: &'a SampleTimers,
    produce: &'a Timer,
    store: Option<&'a SampleStore>,
    injector: Option<&'a FaultInjector>,
    queue: &'a Mutex<VecDeque<usize>>,
}

fn produce_one(ctx: &WorkerCtx<'_>, idx: usize) -> Produced {
    if let Some(inj) = ctx.injector {
        if inj.prefetch_panic(idx) {
            panic!("injected prefetch worker panic at sample {idx}");
        }
    }
    let _t = ctx.produce.start();
    let link = &ctx.links[idx];
    if let Some(store) = ctx.store {
        if let Some(sample) = store.get(ctx.ds, link) {
            return Produced::Sample {
                idx,
                hit: true,
                sample: Box::new(sample),
            };
        }
    }
    let sample = prepare_sample_obs(ctx.ds, link, ctx.fcfg, ctx.timers);
    Produced::Sample {
        idx,
        hit: false,
        sample: Box::new(sample),
    }
}

fn worker_loop(ctx: &WorkerCtx<'_>, tx: SyncSender<Produced>) {
    loop {
        let idx = ctx
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        let Some(idx) = idx else { return };
        match catch_unwind(AssertUnwindSafe(|| produce_one(ctx, idx))) {
            Ok(msg) => {
                if tx.send(msg).is_err() {
                    return;
                }
            }
            Err(_) => {
                // Report the orphaned index and die; the supervisor
                // requeues it and respawns.
                let _ = tx.send(Produced::Died { idx });
                return;
            }
        }
    }
}

/// Prepare `links` through the bounded prefetch pipeline, optionally
/// reading from / warming a [`SampleStore`]. Output order matches `links`
/// and every sample is bit-identical to
/// [`crate::sample::prepare_batch_obs`]'s serial result.
///
/// Store misses are inserted into the store (caller flushes); the
/// `injector` supplies deterministic worker panics for supervision tests.
pub fn prepare_batch_pipelined(
    ds: &Dataset,
    links: &[LabeledLink],
    fcfg: &FeatureConfig,
    obs: &Obs,
    cfg: PrefetchConfig,
    mut store: Option<&mut SampleStore>,
    injector: Option<&FaultInjector>,
) -> Vec<PreparedSample> {
    let n = links.len();
    if n == 0 {
        return Vec::new();
    }
    let timers = SampleTimers::new(obs);
    let produce = obs.timer("pipeline/prefetch/produce");
    let wait = obs.timer("pipeline/prefetch/wait");
    let hit_counter = obs.counter("pipeline/prefetch/store_hit");
    let miss_counter = obs.counter("pipeline/prefetch/store_miss");
    let respawn_counter = obs.counter("pipeline/prefetch/respawn");

    let (slots, mut miss_idx) = {
        let store_ro: Option<&SampleStore> = store.as_deref();
        if cfg.workers == 0 {
            // Serial in-line path: same store consultation, no threads.
            let mut slots: Vec<Option<PreparedSample>> = Vec::with_capacity(n);
            let mut miss_idx = Vec::new();
            for (idx, link) in links.iter().enumerate() {
                let _t = produce.start();
                let sample = match store_ro.and_then(|s| s.get(ds, link)) {
                    Some(sample) => {
                        hit_counter.inc();
                        sample
                    }
                    None => {
                        if store_ro.is_some() {
                            miss_counter.inc();
                        }
                        miss_idx.push(idx);
                        prepare_sample_obs(ds, link, fcfg, &timers)
                    }
                };
                slots.push(Some(sample));
            }
            (slots, miss_idx)
        } else {
            let queue = Mutex::new((0..n).collect::<VecDeque<usize>>());
            let ctx = WorkerCtx {
                ds,
                links,
                fcfg,
                timers: &timers,
                produce: &produce,
                store: store_ro,
                injector,
                queue: &queue,
            };
            let mut slots: Vec<Option<PreparedSample>> = (0..n).map(|_| None).collect();
            let mut miss_idx = Vec::new();
            std::thread::scope(|s| {
                let (tx, rx) = sync_channel::<Produced>(cfg.capacity.max(1));
                let ctx = &ctx;
                for _ in 0..cfg.workers {
                    let tx = tx.clone();
                    s.spawn(move || worker_loop(ctx, tx));
                }
                let mut received = 0usize;
                while received < n {
                    let wait_span = wait.start();
                    let msg = rx.recv().expect("prefetch pool disconnected early");
                    wait_span.finish();
                    match msg {
                        Produced::Sample { idx, hit, sample } => {
                            debug_assert!(slots[idx].is_none(), "sample {idx} delivered twice");
                            slots[idx] = Some(*sample);
                            if hit {
                                hit_counter.inc();
                            } else {
                                if ctx.store.is_some() {
                                    miss_counter.inc();
                                }
                                miss_idx.push(idx);
                            }
                            received += 1;
                        }
                        Produced::Died { idx } => {
                            // Supervisor: give the orphaned index back to
                            // the pool and replace the dead worker. The
                            // retry is clean (injected panics fire once),
                            // so the epoch stays bit-identical.
                            ctx.queue
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_front(idx);
                            respawn_counter.inc();
                            obs.event("pipeline/prefetch/respawn", || {
                                format!("worker died at sample {idx}; respawned")
                            });
                            let tx = tx.clone();
                            s.spawn(move || worker_loop(ctx, tx));
                        }
                    }
                }
            });
            (slots, miss_idx)
        }
    };

    // Warm the store with everything it did not already hold. Indices are
    // sorted so insertion order (and hence any store bookkeeping) is
    // independent of thread scheduling.
    if let Some(store) = store.as_deref_mut() {
        miss_idx.sort_unstable();
        for &idx in &miss_idx {
            let sample = slots[idx].as_ref().expect("miss index was delivered");
            store.insert(&links[idx], sample);
        }
    }

    slots
        .into_iter()
        .map(|s| s.expect("every index delivered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultInjector, FaultPlan};
    use crate::sample::prepare_batch;
    use amdgcnn_data::{wn18_like, Wn18Config};
    use std::sync::Arc;

    fn batches_equal(a: &[PreparedSample], b: &[PreparedSample]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.features == y.features
                    && x.label == y.label
                    && x.drnl == y.drnl
                    && x.edges == y.edges
                    && x.graph.csr().src_ids() == y.graph.csr().src_ids()
                    && x.graph.csr().dst_ids() == y.graph.csr().dst_ids()
                    && x.graph.relations() == y.graph.relations()
            })
    }

    #[test]
    fn pipelined_matches_serial_for_every_worker_count() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let links = &ds.train[..12];
        let serial = prepare_batch(&ds, links, &fcfg);
        for workers in [0, 1, 2, 4, 8] {
            for capacity in [1, 3, 16] {
                let cfg = PrefetchConfig { workers, capacity };
                let piped = prepare_batch_pipelined(
                    &ds,
                    links,
                    &fcfg,
                    &Obs::disabled(),
                    cfg,
                    None,
                    None,
                );
                assert!(
                    batches_equal(&piped, &serial),
                    "workers={workers} capacity={capacity} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn injected_worker_panic_is_survived_and_counted() {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let links = &ds.train[..10];
        let serial = prepare_batch(&ds, links, &fcfg);
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            prefetch_panic_samples: vec![0, 4, 9],
            ..FaultPlan::default()
        }));
        let obs = Obs::enabled();
        let piped = prepare_batch_pipelined(
            &ds,
            links,
            &fcfg,
            &obs,
            PrefetchConfig {
                workers: 3,
                capacity: 2,
            },
            None,
            Some(&injector),
        );
        assert!(batches_equal(&piped, &serial), "panic respawn changed output");
        assert_eq!(obs.counter("pipeline/prefetch/respawn").get(), 3);
    }
}
