//! # am-dgcnn
//!
//! The paper's contribution, reproduced: link classification in knowledge
//! graphs with the SEAL framework, comparing **vanilla DGCNN** (GCN message
//! passing, edge-blind) against **AM-DGCNN** (GAT message passing consuming
//! edge attributes).
//!
//! Pipeline (paper §III): extract the 2-hop enclosing subgraph of a target
//! pair (union or intersection mode) with the target link hidden → label
//! nodes with DRNL → build node/edge attribute matrices → run the DGCNN
//! skeleton (message passing → SortPooling → 1-D conv read-out → dense
//! classifier) → softmax over link classes.
//!
//! Entry points: [`pipeline::Experiment`] for end-to-end runs,
//! [`model::DgcnnModel`] for direct model access, [`metrics`] for the
//! paper's AUC/AP definitions.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod fault;
pub mod features;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod prefetch;
pub mod runtime;
pub mod sample;
pub mod sample_cache;
pub mod store;
pub mod schedule;
pub mod train;
pub mod wlnm;

pub use checkpoint::{CheckpointDir, TrainState};
pub use error::Error;
pub use fault::{
    EngineFault, FaultInjector, FaultPlan, FleetAction, FleetEvent, FleetInjector, FleetPlan,
    MutationEvent, TransientFault,
};
pub use features::FeatureConfig;
pub use model::{DgcnnModel, GnnKind, ModelConfig};
pub use pipeline::{
    evaluate_model, CheckpointPolicy, EvalMetrics, Experiment, ExperimentBuilder, Hyperparams,
    Session,
};
pub use prefetch::{prepare_batch_pipelined, PrefetchConfig};
pub use sample::{
    message_graph_for, message_graph_from_messages, prepare_batch, prepare_batch_obs,
    prepare_sample, prepare_sample_obs, PreparedSample, SampleTimers,
};
pub use sample_cache::SampleCache;
pub use store::{SampleStore, StoreKey};
pub use schedule::{EarlyStopping, LrSchedule};
pub use train::{
    predict_probs, DivergenceCause, LinkModel, RecoveryEvent, TrainConfig, Trainer, WatchdogConfig,
};
pub use wlnm::{WlnmConfig, WlnmModel};

pub use amdgcnn_obs as obs;
