//! The prefetch pipeline's signature guarantee, proptested end to end:
//! pipelined sample preparation is **bit-identical** to the serial path
//! regardless of worker count, channel capacity, dataset shape, or
//! feature configuration — and stays bit-identical when workers are
//! killed mid-sample by injected panics (the supervisor respawns them and
//! the orphaned sample is retried into its slot).
//!
//! Losses and probabilities are pinned transitively: training is
//! deterministic given identical prepared samples, so equal parameter
//! digests + equal prediction matrices + equal eval metrics witness that
//! every intermediate loss was equal too.

use am_dgcnn::{
    predict_probs, prepare_batch, prepare_batch_pipelined, Experiment, ExperimentBuilder,
    FaultInjector, FaultPlan, FeatureConfig, GnnKind, Hyperparams, PrefetchConfig, PreparedSample,
    Session,
};
use am_dgcnn::obs::Obs;
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_tensor::io::params_digest;
use proptest::prelude::*;
use std::sync::Arc;

const SEED: u64 = 17;
const EPOCHS: usize = 2;
const TRAIN_SUBSET: usize = 16;

/// Worker counts the pipeline is sworn to be order-independent across.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn builder(seed: u64) -> ExperimentBuilder {
    Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        })
        .seed(seed)
}

fn samples_equal(a: &PreparedSample, b: &PreparedSample) -> bool {
    a.features == b.features
        && a.label == b.label
        && a.num_nodes == b.num_nodes
        && a.num_edges == b.num_edges
        && a.edges == b.edges
        && a.drnl == b.drnl
        && a.graph.csr().src_ids() == b.graph.csr().src_ids()
        && a.graph.csr().dst_ids() == b.graph.csr().dst_ids()
        && a.graph.relations() == b.graph.relations()
        && a.graph.edge_attrs().map(|m| m.data()) == b.graph.edge_attrs().map(|m| m.data())
}

fn batches_equal(a: &[PreparedSample], b: &[PreparedSample]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| samples_equal(x, y))
}

/// Train a session in place and distill it into the three bit-identity
/// witnesses: parameter digest, prediction matrix, eval metrics.
fn train_and_fingerprint(mut session: Session) -> (u32, amdgcnn_tensor::Matrix, f64) {
    session
        .trainer
        .train(
            &session.model,
            &mut session.ps,
            &session.train_samples,
            EPOCHS,
        )
        .expect("train");
    let digest = params_digest(&session.ps);
    let probs = predict_probs(&session.model, &session.ps, &session.test_samples);
    let metrics = session.evaluate();
    (digest, probs, metrics.auc + metrics.ap + metrics.accuracy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Batch-level bit-identity across randomized dataset shapes, feature
    /// configurations, worker counts, and channel capacities.
    #[test]
    fn pipelined_batch_is_bit_identical_to_serial(
        ds_seed in 0u64..4,
        batch in 4usize..24,
        drnl_idx in 0usize..3,
        worker_idx in 0usize..4,
        capacity in 1usize..9,
    ) {
        let max_drnl = [4u32, 8, 16][drnl_idx];
        let ds = wn18_like(&Wn18Config {
            seed: ds_seed,
            ..Wn18Config::tiny()
        });
        let fcfg = FeatureConfig {
            max_drnl,
            ..FeatureConfig::for_graph(ds.graph.num_node_types())
        };
        let links = &ds.train[..batch.min(ds.train.len())];
        let serial = prepare_batch(&ds, links, &fcfg);
        let cfg = PrefetchConfig {
            workers: WORKER_COUNTS[worker_idx],
            capacity,
        };
        let piped =
            prepare_batch_pipelined(&ds, links, &fcfg, &Obs::disabled(), cfg, None, None);
        prop_assert!(
            batches_equal(&piped, &serial),
            "workers={} capacity={} ds_seed={} diverged from serial",
            cfg.workers,
            capacity,
            ds_seed
        );
    }

    /// A worker killed mid-sample by an injected panic is respawned by the
    /// supervisor and the epoch's batch is still bit-identical: the
    /// orphaned index is requeued and retried cleanly.
    #[test]
    fn worker_panic_respawn_keeps_batch_bit_identical(
        panic_at in proptest::collection::vec(0usize..TRAIN_SUBSET, 1..4),
        worker_idx in 0usize..4,
        capacity in 1usize..5,
    ) {
        let panic_at: std::collections::BTreeSet<usize> = panic_at.into_iter().collect();
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let links = &ds.train[..TRAIN_SUBSET];
        let serial = prepare_batch(&ds, links, &fcfg);
        let panics: Vec<usize> = panic_at.iter().copied().collect();
        let injector = FaultInjector::new(FaultPlan {
            prefetch_panic_samples: panics.clone(),
            ..FaultPlan::default()
        });
        let obs = Obs::enabled();
        let cfg = PrefetchConfig {
            workers: WORKER_COUNTS[worker_idx],
            capacity,
        };
        let piped = prepare_batch_pipelined(
            &ds,
            links,
            &fcfg,
            &obs,
            cfg,
            None,
            Some(&injector),
        );
        prop_assert!(
            batches_equal(&piped, &serial),
            "workers={} panics={:?}: respawned batch diverged",
            cfg.workers,
            panics
        );
        prop_assert_eq!(
            obs.counter("pipeline/prefetch/respawn").get(),
            panics.len() as u64,
            "every injected panic must be survived by exactly one respawn"
        );
    }
}

/// Experiment-level bit-identity: a full train + eval through
/// `.prefetch(n)` produces the same parameter trajectory (hence the same
/// losses), the same prediction matrix, and the same metrics as the
/// serial default — for every worker count and a spread of capacities.
#[test]
fn prefetched_training_is_bit_identical_to_serial() {
    let ds = wn18_like(&Wn18Config::tiny());
    let serial = builder(SEED).build();
    let (ref_digest, ref_probs, ref_metrics) = train_and_fingerprint(
        serial
            .session(&ds, Some(TRAIN_SUBSET))
            .expect("serial session"),
    );
    for workers in WORKER_COUNTS {
        for capacity in [1, 4] {
            let exp = builder(SEED)
                .prefetch(workers)
                .prefetch_capacity(capacity)
                .build();
            let (digest, probs, metrics) = train_and_fingerprint(
                exp.session(&ds, Some(TRAIN_SUBSET))
                    .expect("pipelined session"),
            );
            assert_eq!(
                digest, ref_digest,
                "workers={workers} capacity={capacity}: parameter trajectory diverged"
            );
            assert_eq!(
                probs, ref_probs,
                "workers={workers} capacity={capacity}: predictions diverged"
            );
            assert_eq!(
                metrics, ref_metrics,
                "workers={workers} capacity={capacity}: metrics diverged"
            );
        }
    }
}

/// Injected worker panics during session preparation leave the trained
/// epoch bit-identical to a serial run that never saw a fault, and the
/// supervisor's respawn count is visible on the obs registry.
#[test]
fn session_with_worker_panics_trains_bit_identical() {
    let ds = wn18_like(&Wn18Config::tiny());
    let (ref_digest, ref_probs, ref_metrics) = train_and_fingerprint(
        builder(SEED)
            .build()
            .session(&ds, Some(TRAIN_SUBSET))
            .expect("serial session"),
    );
    let obs = Obs::enabled();
    let exp = builder(SEED)
        .prefetch(3)
        .prefetch_capacity(2)
        .fault_injector(Arc::new(FaultInjector::new(FaultPlan {
            prefetch_panic_samples: vec![0, 5, 11],
            ..FaultPlan::default()
        })))
        .observe(obs.clone())
        .build();
    let (digest, probs, metrics) = train_and_fingerprint(
        exp.session(&ds, Some(TRAIN_SUBSET))
            .expect("faulted session"),
    );
    assert_eq!(digest, ref_digest, "panics changed the parameter trajectory");
    assert_eq!(probs, ref_probs, "panics changed the predictions");
    assert_eq!(metrics, ref_metrics, "panics changed the metrics");
    assert_eq!(obs.counter("pipeline/prefetch/respawn").get(), 3);
}

/// The pipeline reports its work: produce time and store counters land on
/// the obs registry without perturbing results (observation never feeds
/// back into the computation).
#[test]
fn obs_spans_record_pipeline_work_without_perturbing_results() {
    let ds = wn18_like(&Wn18Config::tiny());
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let links = &ds.train[..8];
    let quiet =
        prepare_batch_pipelined(&ds, links, &fcfg, &Obs::disabled(), PrefetchConfig {
            workers: 2,
            capacity: 2,
        }, None, None);
    let obs = Obs::enabled();
    let observed = prepare_batch_pipelined(&ds, links, &fcfg, &obs, PrefetchConfig {
        workers: 2,
        capacity: 2,
    }, None, None);
    assert!(batches_equal(&quiet, &observed), "observation changed results");
    assert_eq!(
        obs.timer("pipeline/prefetch/produce").snapshot().count,
        links.len() as u64,
        "every sample's production must be timed"
    );
    // No store attached: the hit/miss counters stay untouched.
    assert_eq!(obs.counter("pipeline/prefetch/store_hit").get(), 0);
    assert_eq!(obs.counter("pipeline/prefetch/store_miss").get(), 0);
}

/// Guard against accidental reliance on dataset-global state: two
/// different datasets pipelined with the same config stay independent
/// (each matches its own serial reference).
#[test]
fn distinct_datasets_stay_independent_under_pipelining() {
    for seed in [1u64, 2] {
        let ds: Dataset = wn18_like(&Wn18Config {
            seed,
            ..Wn18Config::tiny()
        });
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let links = &ds.train[..10];
        let serial = prepare_batch(&ds, links, &fcfg);
        let piped = prepare_batch_pipelined(
            &ds,
            links,
            &fcfg,
            &Obs::disabled(),
            PrefetchConfig {
                workers: 4,
                capacity: 2,
            },
            None,
            None,
        );
        assert!(batches_equal(&piped, &serial), "seed {seed} diverged");
    }
}
