//! Persistence guarantees of the `AMSS` sample store, proptested: a
//! flushed store round-trips bit-identically; every injected disk fault
//! (torn write, bit flip, partial flush) degrades to typed damage plus
//! store *misses* — never a garbage sample; a store keyed to different
//! data, features, or graph generation is refused with a typed error; and
//! a resumed, store-backed experiment re-tensorizes nothing while staying
//! bit-identical to a cold serial run.

use am_dgcnn::{
    predict_probs, prepare_batch, Error, Experiment, ExperimentBuilder, FaultInjector, FaultPlan,
    FeatureConfig, GnnKind, Hyperparams, PreparedSample, SampleStore, Session, StoreKey,
};
use am_dgcnn::obs::Obs;
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_tensor::durable::DiskFault;
use amdgcnn_tensor::io::params_digest;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SEED: u64 = 23;
const EPOCHS: usize = 2;
const TRAIN_SUBSET: usize = 16;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amdgcnn-store-props-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn builder(seed: u64) -> ExperimentBuilder {
    Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        })
        .seed(seed)
}

fn samples_equal(a: &PreparedSample, b: &PreparedSample) -> bool {
    a.features == b.features
        && a.label == b.label
        && a.num_nodes == b.num_nodes
        && a.num_edges == b.num_edges
        && a.edges == b.edges
        && a.drnl == b.drnl
        && a.graph.csr().src_ids() == b.graph.csr().src_ids()
        && a.graph.csr().dst_ids() == b.graph.csr().dst_ids()
        && a.graph.relations() == b.graph.relations()
        && a.graph.edge_attrs().map(|m| m.data()) == b.graph.edge_attrs().map(|m| m.data())
}

/// Train a session and distill the bit-identity witnesses.
fn train_and_fingerprint(mut session: Session) -> (u32, amdgcnn_tensor::Matrix) {
    session
        .trainer
        .train(
            &session.model,
            &mut session.ps,
            &session.train_samples,
            EPOCHS,
        )
        .expect("train");
    let digest = params_digest(&session.ps);
    let probs = predict_probs(&session.model, &session.ps, &session.test_samples);
    (digest, probs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A clean flush round-trips every sample bit-identically across
    /// randomized dataset shapes and feature configurations.
    #[test]
    fn flushed_store_round_trips_bit_identically(
        ds_seed in 0u64..4,
        batch in 4usize..20,
        drnl_idx in 0usize..3,
    ) {
        let ds = wn18_like(&Wn18Config { seed: ds_seed, ..Wn18Config::tiny() });
        let fcfg = FeatureConfig {
            max_drnl: [4u32, 8, 16][drnl_idx],
            ..FeatureConfig::for_graph(ds.graph.num_node_types())
        };
        let links = &ds.train[..batch.min(ds.train.len())];
        let prepared = prepare_batch(&ds, links, &fcfg);
        let key = StoreKey::for_dataset(&ds, &fcfg, 0);
        let path = scratch_dir("roundtrip").join("samples.amss");

        let mut store = SampleStore::open(&path, key).expect("fresh store");
        for (link, sample) in links.iter().zip(&prepared) {
            store.insert(link, sample);
        }
        store.flush(None).expect("flush");

        let store = SampleStore::open(&path, key).expect("reopen");
        prop_assert_eq!(store.len(), links.len());
        prop_assert!(store.damage().is_empty(), "clean flush must not report damage");
        for (link, expected) in links.iter().zip(&prepared) {
            let got = store.get(&ds, link);
            prop_assert!(
                got.as_ref().is_some_and(|s| samples_equal(s, expected)),
                "round-tripped sample diverged for link ({}, {})",
                link.u,
                link.v
            );
        }
    }

    /// Every disk-fault kind on the flush degrades safely: the reopened
    /// store yields each sample either bit-identical or as a miss (typed
    /// damage, re-prepare) — never garbage — and lost records are visible
    /// as damage or absence, not silently papered over.
    #[test]
    fn faulted_flush_degrades_to_typed_misses_never_garbage(
        ds_seed in 0u64..4,
        fault_idx in 0usize..3,
    ) {
        let fault = [DiskFault::TornWrite, DiskFault::BitFlip, DiskFault::PartialFlush][fault_idx];
        let ds = wn18_like(&Wn18Config { seed: ds_seed, ..Wn18Config::tiny() });
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let links = &ds.train[..12];
        let prepared = prepare_batch(&ds, links, &fcfg);
        let key = StoreKey::for_dataset(&ds, &fcfg, 0);
        let path = scratch_dir("faulted").join("samples.amss");

        let mut store = SampleStore::open(&path, key).expect("fresh store");
        for (link, sample) in links.iter().zip(&prepared) {
            store.insert(link, sample);
        }
        store.flush(Some(fault)).expect("faulted flush is simulated, not an I/O error");

        match SampleStore::open(&path, key) {
            Ok(store) => {
                // Recovered records must be bit-identical; everything else
                // must be a miss. Nothing in between.
                let mut hits = 0usize;
                for (link, expected) in links.iter().zip(&prepared) {
                    match store.get(&ds, link) {
                        Some(got) => {
                            prop_assert!(
                                samples_equal(&got, expected),
                                "{fault:?}: damaged store returned a garbage sample"
                            );
                            hits += 1;
                        }
                        None => {}
                    }
                }
                if hits < links.len() {
                    // Lost records: either the file never landed
                    // (PartialFlush keeps the previous file — here,
                    // absence) or the damage is recorded as typed errors.
                    prop_assert!(
                        matches!(fault, DiskFault::PartialFlush) || !store.damage().is_empty(),
                        "{fault:?}: records vanished without recorded damage"
                    );
                    prop_assert!(
                        store
                            .damage()
                            .iter()
                            .all(|e| matches!(e, Error::StoreCorrupt { .. })),
                        "{fault:?}: damage must be typed StoreCorrupt"
                    );
                }
            }
            // Header-level damage is a typed refusal, never a panic or a
            // silently empty store.
            Err(e) => prop_assert!(
                matches!(e, Error::StoreCorrupt { .. } | Error::StoreIo { .. }),
                "{fault:?}: open failed with untyped error {e:?}"
            ),
        }
    }

    /// A store keyed to different inputs is refused with a typed
    /// [`Error::StoreMismatch`] naming the diverging component — changed
    /// feature config, rolled graph generation, or different dataset.
    #[test]
    fn mismatched_store_is_refused_typed(
        ds_seed in 0u64..3,
        which in 0usize..3,
    ) {
        let ds = wn18_like(&Wn18Config { seed: ds_seed, ..Wn18Config::tiny() });
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let key = StoreKey::for_dataset(&ds, &fcfg, 0);
        let path = scratch_dir("mismatch").join("samples.amss");

        let prepared = prepare_batch(&ds, &ds.train[..4], &fcfg);
        let mut store = SampleStore::open(&path, key).expect("fresh store");
        for (link, sample) in ds.train[..4].iter().zip(&prepared) {
            store.insert(link, sample);
        }
        store.flush(None).expect("flush");

        let stale_key = match which {
            // Feature config changed: fingerprint diverges.
            0 => {
                let changed = FeatureConfig { max_drnl: fcfg.max_drnl + 1, ..fcfg.clone() };
                StoreKey::for_dataset(&ds, &changed, 0)
            }
            // Graph mutated since the store was prepared.
            1 => StoreKey::for_dataset(&ds, &fcfg, 1),
            // Different dataset entirely.
            _ => {
                let other = wn18_like(&Wn18Config { seed: ds_seed + 100, ..Wn18Config::tiny() });
                StoreKey::for_dataset(&other, &fcfg, 0)
            }
        };
        prop_assert!(stale_key != key, "stale key failed to diverge (which={which})");
        let err = match SampleStore::open(&path, stale_key) {
            Err(e) => e,
            Ok(_) => {
                prop_assert!(false, "stale store (which={which}) must be refused, not reused");
                unreachable!()
            }
        };
        prop_assert!(
            matches!(err, Error::StoreMismatch { .. }),
            "which={which}: expected StoreMismatch, got {err:?}"
        );
    }
}

/// Satellite regression: on a resumed run, *both* splits route through the
/// store — `store_hit` covers every train and eval sample, `store_miss`
/// stays zero, and the resumed parameters match the uninterrupted
/// storeless run bit-for-bit.
#[test]
fn resumed_run_hits_store_for_train_and_eval_samples() {
    let ds = wn18_like(&Wn18Config::tiny());
    let store_path = scratch_dir("resume").join("samples.amss");
    let ckpt_dir = scratch_dir("resume-ckpt");

    // Storeless uninterrupted reference.
    let (ref_digest, ref_probs) = train_and_fingerprint(
        builder(SEED)
            .build()
            .session(&ds, Some(TRAIN_SUBSET))
            .expect("reference session"),
    );

    // Cold store-backed run: every sample is a miss, then persisted.
    let cold_obs = Obs::enabled();
    let cold = builder(SEED)
        .sample_store(&store_path)
        .checkpoint_to(&ckpt_dir, 1)
        .observe(cold_obs.clone())
        .build();
    cold.run_session(
        cold.session(&ds, Some(TRAIN_SUBSET)).expect("cold session"),
        &[EPOCHS],
    )
    .expect("cold run");
    let total = (TRAIN_SUBSET + ds.test.len()) as u64;
    assert_eq!(cold_obs.counter("pipeline/prefetch/store_miss").get(), total);
    assert_eq!(cold_obs.counter("pipeline/prefetch/store_hit").get(), 0);

    // Resume: preparation is skipped entirely — all hits, zero misses —
    // and training continues bit-identically.
    let warm_obs = Obs::enabled();
    let resumed = builder(SEED)
        .sample_store(&store_path)
        .resume_from(&ckpt_dir)
        .observe(warm_obs.clone())
        .build();
    let session = resumed
        .session(&ds, Some(TRAIN_SUBSET))
        .expect("resumed session");
    assert_eq!(session.trainer.epochs_done(), EPOCHS, "resume restored progress");
    assert_eq!(warm_obs.counter("pipeline/prefetch/store_hit").get(), total);
    assert_eq!(warm_obs.counter("pipeline/prefetch/store_miss").get(), 0);
    assert_eq!(
        params_digest(&session.ps),
        ref_digest,
        "resumed store-backed parameters diverged from the storeless run"
    );
    assert_eq!(
        predict_probs(&session.model, &session.ps, &session.test_samples),
        ref_probs,
        "resumed store-backed predictions diverged"
    );
}

/// A warm store-backed run (with prefetch workers, for good measure) is
/// bit-identical to a cold serial storeless run.
#[test]
fn warm_store_run_is_bit_identical_to_cold_serial() {
    let ds = wn18_like(&Wn18Config::tiny());
    let store_path = scratch_dir("warm").join("samples.amss");
    let (ref_digest, ref_probs) = train_and_fingerprint(
        builder(SEED)
            .build()
            .session(&ds, Some(TRAIN_SUBSET))
            .expect("serial session"),
    );
    // Cold pass populates; warm pass decodes everything from disk.
    for pass in ["cold", "warm"] {
        let exp = builder(SEED)
            .sample_store(&store_path)
            .prefetch(4)
            .prefetch_capacity(2)
            .build();
        let (digest, probs) =
            train_and_fingerprint(exp.session(&ds, Some(TRAIN_SUBSET)).expect("session"));
        assert_eq!(digest, ref_digest, "{pass} store-backed digest diverged");
        assert_eq!(probs, ref_probs, "{pass} store-backed predictions diverged");
    }
}

/// A disk fault on the store flush never poisons results: the faulted run
/// itself and the next run over the damaged store both stay bit-identical
/// to the serial reference (damaged records are re-prepared, and the
/// repaired store is flushed again).
#[test]
fn faulted_store_flush_keeps_every_run_bit_identical() {
    let ds = wn18_like(&Wn18Config::tiny());
    let (ref_digest, ref_probs) = train_and_fingerprint(
        builder(SEED)
            .build()
            .session(&ds, Some(TRAIN_SUBSET))
            .expect("serial session"),
    );
    for (tag, plan) in [
        ("torn", FaultPlan { torn_write_saves: vec![1], ..FaultPlan::default() }),
        ("bitflip", FaultPlan { bit_flip_saves: vec![1], ..FaultPlan::default() }),
        ("flush", FaultPlan { partial_flush_saves: vec![1], ..FaultPlan::default() }),
    ] {
        let store_path = scratch_dir(tag).join("samples.amss");
        // Run 1: cold, the store flush itself is hit by the fault.
        let faulted = builder(SEED)
            .sample_store(&store_path)
            .fault_injector(Arc::new(FaultInjector::new(plan)))
            .build();
        let (digest, probs) = train_and_fingerprint(
            faulted
                .session(&ds, Some(TRAIN_SUBSET))
                .expect("faulted session"),
        );
        assert_eq!(digest, ref_digest, "{tag}: faulted-flush run diverged");
        assert_eq!(probs, ref_probs, "{tag}: faulted-flush predictions diverged");

        // Run 2: opens whatever the fault left behind; damaged or missing
        // records are misses, re-prepared, and the result is still exact.
        let recovered = builder(SEED).sample_store(&store_path).build();
        let (digest, probs) = train_and_fingerprint(
            recovered
                .session(&ds, Some(TRAIN_SUBSET))
                .expect("recovery session over damaged store"),
        );
        assert_eq!(digest, ref_digest, "{tag}: recovery run diverged");
        assert_eq!(probs, ref_probs, "{tag}: recovery predictions diverged");

        // Run 3: the recovery run repaired and re-flushed, so now the
        // store is fully warm.
        let warm_obs = Obs::enabled();
        let warm = builder(SEED)
            .sample_store(&store_path)
            .observe(warm_obs.clone())
            .build();
        let (digest, _) = train_and_fingerprint(
            warm.session(&ds, Some(TRAIN_SUBSET)).expect("warm session"),
        );
        assert_eq!(digest, ref_digest, "{tag}: warm run diverged");
        assert_eq!(
            warm_obs.counter("pipeline/prefetch/store_miss").get(),
            0,
            "{tag}: repaired store must be fully warm"
        );
    }
}

/// The session refuses a store whose graph generation lags the
/// experiment's — surfacing the staleness instead of training on stale
/// tensors.
#[test]
fn session_refuses_store_from_older_graph_generation() {
    let ds = wn18_like(&Wn18Config::tiny());
    let store_path = scratch_dir("generation").join("samples.amss");
    let exp = builder(SEED).sample_store(&store_path).build();
    exp.run(&ds, 1).expect("generation-0 run");

    let err = match builder(SEED)
        .sample_store(&store_path)
        .graph_generation(1)
        .build()
        .session(&ds, Some(TRAIN_SUBSET))
    {
        Err(e) => e,
        Ok(_) => panic!("stale generation must be refused"),
    };
    assert!(matches!(err, Error::StoreMismatch { .. }), "{err:?}");
    let Error::StoreMismatch { detail } = err else {
        unreachable!()
    };
    assert!(
        detail.contains("generation"),
        "error must name the diverging component: {detail}"
    );
}
