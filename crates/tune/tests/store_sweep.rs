//! Store-backed trial sweeps: all trials share one `AMSS` sample store,
//! so the sweep prepares each sample **exactly once** (auditable on the
//! obs counters), and every trial's metrics are bit-identical to a
//! store-less sweep — with or without prefetch workers. A store belonging
//! to different data aborts the sweep with a typed error instead of
//! training on the wrong tensors.

use am_dgcnn::obs::Obs;
use am_dgcnn::{Error, GnnKind};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_tune::{sweep, ParamSpec, SearchSpace, SweepConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TRAIN_SUBSET: usize = 12;
const BUDGET: usize = 3;

fn scratch_store(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "amdgcnn-store-sweep-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join("samples.amss")
}

/// A shrunken Table I layout (same dimension order: lr, hidden_dim,
/// sort_k) that keeps trials fast.
fn small_space() -> SearchSpace {
    let mut space = SearchSpace::new();
    space.add("lr", ParamSpec::LogUniform { lo: 1e-4, hi: 1e-2 });
    space.add("hidden_dim", ParamSpec::Choice(vec![8.0]));
    space.add("sort_k", ParamSpec::IntRange { lo: 5, hi: 10 });
    space
}

fn config() -> SweepConfig {
    SweepConfig {
        gnn: GnnKind::am_dgcnn(),
        epochs: 1,
        budget: BUDGET,
        seed: 31,
        train_subset: Some(TRAIN_SUBSET),
        store: None,
        prefetch_workers: 0,
    }
}

#[test]
fn shared_store_prepares_each_sample_exactly_once_and_stays_bit_identical() {
    let ds = wn18_like(&Wn18Config::tiny());

    // Store-less serial reference sweep.
    let reference = sweep(&small_space(), &ds, &config(), &Obs::disabled()).expect("reference");
    assert_eq!(reference.history.len(), BUDGET);

    // Store-backed sweep (with prefetch workers, the production shape).
    let obs = Obs::enabled();
    let cfg = SweepConfig {
        store: Some(scratch_store("shared")),
        prefetch_workers: 2,
        ..config()
    };
    let stored = sweep(&small_space(), &ds, &cfg, &obs).expect("store-backed sweep");

    // Preparation ran exactly once across the whole sweep: the first trial
    // missed every sample and persisted it; every later trial hit.
    let per_trial = (TRAIN_SUBSET + ds.test.len()) as u64;
    assert_eq!(
        obs.counter("pipeline/prefetch/store_miss").get(),
        per_trial,
        "only the first trial may prepare samples"
    );
    assert_eq!(
        obs.counter("pipeline/prefetch/store_hit").get(),
        per_trial * (BUDGET as u64 - 1),
        "every later trial must be served from the store"
    );
    assert_eq!(obs.counter("tune/trials").get(), BUDGET as u64);

    // Trial-for-trial bit-identity: same sampled points, same objective
    // values, same winner.
    assert_eq!(stored.history.len(), reference.history.len());
    for (i, (a, b)) in stored.history.iter().zip(&reference.history).enumerate() {
        assert_eq!(a.point, b.point, "trial {i} sampled a different point");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "trial {i} objective diverged from the store-less sweep"
        );
    }
    assert_eq!(stored.best.point, reference.best.point);
    assert_eq!(stored.best.value.to_bits(), reference.best.value.to_bits());
}

#[test]
fn second_sweep_over_warm_store_prepares_nothing() {
    let ds = wn18_like(&Wn18Config::tiny());
    let store = scratch_store("warm");
    let cfg = SweepConfig {
        store: Some(store),
        ..config()
    };
    sweep(&small_space(), &ds, &cfg, &Obs::disabled()).expect("cold sweep");

    let obs = Obs::enabled();
    let warm = sweep(&small_space(), &ds, &cfg, &obs).expect("warm sweep");
    assert_eq!(warm.history.len(), BUDGET);
    assert_eq!(
        obs.counter("pipeline/prefetch/store_miss").get(),
        0,
        "a warm store must serve the entire sweep"
    );
    assert_eq!(
        obs.counter("pipeline/prefetch/store_hit").get(),
        (TRAIN_SUBSET + ds.test.len()) as u64 * BUDGET as u64
    );
}

#[test]
fn store_for_different_dataset_aborts_the_sweep_typed() {
    let store = scratch_store("mismatch");
    let cfg = SweepConfig {
        store: Some(store),
        ..config()
    };
    let ds_a = wn18_like(&Wn18Config::tiny());
    sweep(&small_space(), &ds_a, &cfg, &Obs::disabled()).expect("populate");

    let ds_b = wn18_like(&Wn18Config {
        seed: 99,
        ..Wn18Config::tiny()
    });
    let err = match sweep(&small_space(), &ds_b, &cfg, &Obs::disabled()) {
        Err(e) => e,
        Ok(_) => panic!("sweep over a mismatched store must be refused"),
    };
    assert!(matches!(err, Error::StoreMismatch { .. }), "{err:?}");
}
