//! # amdgcnn-tune
//!
//! Hyperparameter optimization standing in for DeepHyper (§III-D): the
//! Table I search space, random search, successive halving, and GP-based
//! Bayesian optimization with Expected Improvement (the paper's Centralized
//! Bayesian Optimization strategy).
//!
//! # Example: Bayesian optimization of a toy objective
//!
//! ```
//! use amdgcnn_tune::{bayes_opt, BayesConfig, ParamSpec, SearchSpace};
//!
//! let mut space = SearchSpace::new();
//! space.add("x", ParamSpec::IntRange { lo: 0, hi: 100 });
//! let objective = |p: &[f64]| -(p[0] - 42.0).abs(); // maximum at x = 42
//! let result = bayes_opt(&space, objective, 20, BayesConfig::default(), 7);
//! assert!((result.best.point[0] - 42.0).abs() < 25.0);
//! ```

#![warn(missing_docs)]

pub mod gp;
pub mod search;
pub mod space;
pub mod sweep;

pub use gp::{GaussianProcess, GpConfig, Posterior};
pub use search::{bayes_opt, random_search, successive_halving, BayesConfig, SearchResult, Trial};
pub use space::{ParamSpec, SearchSpace};
pub use sweep::{hyperparams_at, sweep, SweepConfig};
