//! Store-backed trial sweeps: hyperparameter search over full experiment
//! runs that share one persistent sample store.
//!
//! Sample preparation (k-hop extraction, DRNL labeling, tensorization) is
//! independent of every tunable hyperparameter — Table I varies learning
//! rate, hidden dimension, and sort-k, none of which touch the prepared
//! tensors. A sweep therefore prepares each sample **exactly once**: the
//! first trial populates the [`SampleStore`](am_dgcnn::SampleStore) and
//! every later trial decodes from it bit-identically, which is why a
//! store-backed sweep's trial metrics match a store-less sweep
//! bit-for-bit (proptested in `crates/tune/tests/store_sweep.rs`).
//!
//! Observability: each trial is wrapped in a `tune/trial` span and counted
//! on `tune/trials`; store traffic lands on the usual
//! `pipeline/prefetch/store_hit` / `store_miss` counters, so "prepared
//! exactly once" is directly auditable from the obs registry.

use crate::search::{random_search, SearchResult};
use crate::space::SearchSpace;
use am_dgcnn::{Error, Experiment, GnnKind, Hyperparams};
use amdgcnn_data::Dataset;
use amdgcnn_obs::Obs;
use std::path::PathBuf;

/// Settings for a [`sweep`] — everything about the trials that is *not*
/// being searched over.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Model variant trained by every trial.
    pub gnn: GnnKind,
    /// Epochs each trial trains for.
    pub epochs: usize,
    /// Number of random-search trials.
    pub budget: usize,
    /// Seed shared by the search's sampler and every trial's training run
    /// (trials are deterministic, so the whole sweep is).
    pub seed: u64,
    /// Optional cap on training links per trial (`None` = full split).
    pub train_subset: Option<usize>,
    /// Shared `AMSS` sample-store path. `None` disables persistence and
    /// every trial re-prepares from scratch.
    pub store: Option<PathBuf>,
    /// Prefetch workers per trial (0 = serial in-line preparation).
    pub prefetch_workers: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            gnn: GnnKind::am_dgcnn(),
            epochs: 1,
            budget: 8,
            seed: 0,
            train_subset: None,
            store: None,
            prefetch_workers: 0,
        }
    }
}

/// Map a Table I search-space point onto the pipeline's [`Hyperparams`].
pub fn hyperparams_at(point: &[f64]) -> Hyperparams {
    Hyperparams {
        lr: point[0] as f32,
        hidden_dim: point[1] as usize,
        sort_k: point[2] as usize,
    }
}

/// Random-search `cfg.budget` trials of full train-and-evaluate runs over
/// `space` (Table I layout: `lr`, `hidden_dim`, `sort_k`), maximizing test
/// AUC. With [`SweepConfig::store`] set, all trials share one sample
/// store, so preparation runs exactly once across the sweep.
///
/// # Errors
/// The first trial failure aborts the sweep and is returned as-is —
/// notably [`Error::StoreMismatch`] when the configured store belongs to
/// different data.
pub fn sweep(
    space: &SearchSpace,
    ds: &Dataset,
    cfg: &SweepConfig,
    obs: &Obs,
) -> Result<SearchResult, Error> {
    let trials = obs.counter("tune/trials");
    let mut failure: Option<Error> = None;
    let result = random_search(
        space,
        |point| {
            if failure.is_some() {
                // A trial already failed; stop doing real work and let the
                // error surface after the search loop unwinds.
                return f64::NEG_INFINITY;
            }
            let span = obs.span("tune/trial");
            let mut builder = Experiment::builder()
                .gnn(cfg.gnn)
                .hyper(hyperparams_at(point))
                .seed(cfg.seed)
                .prefetch(cfg.prefetch_workers)
                .observe(obs.clone());
            if let Some(store) = &cfg.store {
                builder = builder.sample_store(store);
            }
            let exp = builder.build();
            let value = exp
                .session(ds, cfg.train_subset)
                .and_then(|session| exp.run_session(session, &[cfg.epochs]))
                .map(|metrics| metrics[0].auc);
            span.finish();
            trials.inc();
            match value {
                Ok(auc) => auc,
                Err(e) => {
                    failure = Some(e);
                    f64::NEG_INFINITY
                }
            }
        },
        cfg.budget,
        cfg.seed,
    );
    match failure {
        Some(e) => Err(e),
        None => Ok(result),
    }
}
