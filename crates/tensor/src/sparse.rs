//! Compressed-sparse-row (CSR) `f32` matrix, used for normalized adjacency
//! operators in GCN message passing (`SpMM`).

use crate::matrix::Matrix;
use rayon::prelude::*;

/// CSR sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index per stored value.
    indices: Vec<u32>,
    /// Stored values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from COO triplets `(row, col, value)`. Duplicate coordinates are
    /// summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
            if let (Some(&last_c), true) = (indices.last(), indptr[r + 1] > indptr[r]) {
                if last_c == c as u32 && indices.len() > indptr[r] {
                    // Same coordinate as the previous entry in this row: merge.
                    *values
                        .last_mut()
                        .expect("values nonempty when indices nonempty") += v;
                    continue;
                }
            }
            indices.push(c as u32);
            values.push(v);
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored entries of row `r` as `(col, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Dense copy (test helper; avoid on large matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }

    /// Sparse-dense product `self · dense`, parallel over output rows.
    ///
    /// # Panics
    /// Panics if `self.cols() != dense.rows()`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: inner dimension mismatch {}x{} · {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        let work = self.nnz() * n;
        let body = |r: usize, orow: &mut [f32]| {
            for (c, v) in self.row_entries(r) {
                let drow = dense.row(c);
                for (o, &d) in orow.iter_mut().zip(drow.iter()) {
                    *o += v * d;
                }
            }
        };
        if work >= 1 << 16 {
            out.data_mut()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(r, orow)| body(r, orow));
        } else {
            for r in 0..self.rows {
                let orow = &mut out.data_mut()[r * n..(r + 1) * n];
                // Re-borrow self immutably inside the loop body.
                for (c, v) in self.row_entries(r) {
                    let drow = dense.row(c);
                    for (o, &d) in orow.iter_mut().zip(drow.iter()) {
                        *o += v * d;
                    }
                }
            }
        }
        out
    }

    /// Build the symmetric-normalized GCN propagation operator
    /// `Â = D^{-1/2} (A + I) D^{-1/2}` from an undirected edge list over `n`
    /// nodes. Each `(u, v)` pair contributes both directions; self-loops are
    /// added once per node.
    pub fn gcn_norm_from_edges(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(edges.len() * 2 + n);
        for &(u, v) in edges {
            triplets.push((u, v, 1.0));
            if u != v {
                triplets.push((v, u, 1.0));
            }
        }
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        // Degree = row sum of A + I.
        let inv_sqrt_deg: Vec<f32> = (0..n)
            .map(|r| {
                let d: f32 = a.row_entries(r).map(|(_, v)| v).sum();
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut norm = a;
        for r in 0..n {
            let lo = norm.indptr[r];
            let hi = norm.indptr[r + 1];
            for k in lo..hi {
                let c = norm.indices[k] as usize;
                norm.values[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[c];
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_roundtrip_and_duplicates_sum() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (0, 1, 3.0), (2, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(2, 0), 1.0);
        assert_eq!(d.sum(), 6.0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let m =
            CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, -1.0), (2, 2, 0.5)]);
        let x = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let expect = crate::matmul::matmul(&m.to_dense(), &x);
        assert!(m.spmm(&x).max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    fn spmm_parallel_path_matches() {
        let triplets: Vec<(usize, usize, f32)> = (0..500)
            .map(|i| (i % 100, (i * 7) % 100, 1.0 + i as f32 * 0.01))
            .collect();
        let m = CsrMatrix::from_triplets(100, 100, &triplets);
        let x = Matrix::from_fn(100, 200, |r, c| ((r * 3 + c) % 11) as f32 - 5.0);
        let expect = crate::matmul::matmul(&m.to_dense(), &x);
        assert!(m.spmm(&x).max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn transpose_is_involution() {
        let m = CsrMatrix::from_triplets(2, 5, &[(0, 4, 1.5), (1, 0, -2.0), (1, 4, 3.0)]);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn gcn_norm_rows_of_isolated_graph() {
        // Graph with no edges: Â = D^{-1/2} I D^{-1/2} = I (degree 1 from the
        // self loop).
        let m = CsrMatrix::gcn_norm_from_edges(3, &[]);
        assert!(m.to_dense().max_abs_diff(&Matrix::eye(3)) < 1e-6);
    }

    #[test]
    fn gcn_norm_path_graph_values() {
        // 0 - 1 - 2 path. Degrees with self loops: 2, 3, 2.
        let m = CsrMatrix::gcn_norm_from_edges(3, &[(0, 1), (1, 2)]).to_dense();
        let s2 = 1.0 / 2.0f32; // 1/(sqrt2*sqrt2)
        let s23 = 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt());
        let s3 = 1.0 / 3.0f32;
        assert!((m.get(0, 0) - s2).abs() < 1e-6);
        assert!((m.get(0, 1) - s23).abs() < 1e-6);
        assert!((m.get(1, 1) - s3).abs() < 1e-6);
        assert!((m.get(1, 0) - s23).abs() < 1e-6);
        assert_eq!(m.get(0, 2), 0.0);
        // Symmetric.
        assert!(m.max_abs_diff(&m.transpose()) < 1e-6);
    }

    #[test]
    fn gcn_norm_spectral_radius_at_most_one() {
        // Power iteration on Â: the largest eigenvalue of the symmetric
        // normalized operator with self loops is exactly 1.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let a = CsrMatrix::gcn_norm_from_edges(4, &edges);
        let mut v = Matrix::ones(4, 1);
        for _ in 0..100 {
            v = a.spmm(&v);
            let n = v.norm();
            v.scale_inplace(1.0 / n);
        }
        let av = a.spmm(&v);
        let lambda = av.norm() / v.norm();
        assert!(lambda <= 1.0 + 1e-4, "spectral radius {lambda} > 1");
        assert!(lambda > 0.9, "spectral radius {lambda} unexpectedly small");
    }
}
