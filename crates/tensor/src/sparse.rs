//! Compressed-sparse-row (CSR) sparse operators.
//!
//! Two structures live here:
//!
//! * [`CsrMatrix`] — a general sparse `f32` matrix (row pointers + column
//!   indices + values) with `spmm`/`spmv_f64`. Used for graph-algorithm
//!   linear algebra (Katz, PageRank) and anywhere a weighted operator is
//!   the natural object.
//! * [`CsrGraph`] — a *topology-only* CSR over messages `(src → dst)`,
//!   grouped by destination, carrying both the forward layout and its
//!   transpose. This is the substrate for the generalized g-SpMM /
//!   g-SDDMM kernel pair (Wang et al., DGL): every message-passing layer
//!   reduces to a handful of calls against it, and every backward pass is
//!   the transposed kernel of its forward.

use crate::matrix::Matrix;
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};

/// CSR sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index per stored value.
    indices: Vec<u32>,
    /// Stored values.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from COO triplets `(row, col, value)` in any order.
    ///
    /// **Duplicate rule (contract):** duplicate coordinates — adjacent or
    /// split anywhere across the input — are **summed** by an explicit
    /// dedup pass after sorting; the result holds one entry per distinct
    /// coordinate whose value is the sum of every occurrence, and input
    /// order never matters. This is *not* last-wins. Adjacency matrices
    /// built from multigraph edge lists (katz/pagerank weighting, GCN
    /// normalization) rely on parallel edges accumulating multiplicity,
    /// and graph-mutation replay relies on a replayed edge list producing
    /// the same matrix as the live one regardless of the order mutations
    /// interleaved — both hold only under summation, which is
    /// order-independent.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        Self::from_sorted_coo(rows, cols, &sorted)
    }

    /// Build from COO triplets already sorted by `(row, col)` — the fast
    /// path for block-diagonal batchers, which produce sorted output by
    /// construction and must not pay a redundant sort. Runs of equal
    /// coordinates are merged by summation.
    ///
    /// # Panics
    /// Panics if the triplets are out of order or out of bounds.
    pub fn from_sorted_coo(rows: usize, cols: usize, sorted: &[(usize, usize, f32)]) -> Self {
        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(r, c, v) in sorted {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds {rows}x{cols}"
            );
            match prev {
                Some(p) if p == (r, c) => {
                    // Explicit dedup: same coordinate as the previous entry.
                    *values.last_mut().expect("values nonempty once prev is set") += v;
                }
                Some(p) => {
                    assert!(
                        p < (r, c),
                        "from_sorted_coo: triplet ({r},{c}) out of order after {p:?}"
                    );
                    indices.push(c as u32);
                    values.push(v);
                    indptr[r + 1] += 1;
                    prev = Some((r, c));
                }
                None => {
                    indices.push(c as u32);
                    values.push(v);
                    indptr[r + 1] += 1;
                    prev = Some((r, c));
                }
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Stored entries of row `r` as `(col, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(self.values[lo..hi].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Dense copy (test helper; avoid on large matrices).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }

    /// Sparse-dense product `self · dense`, parallel over output rows.
    ///
    /// # Panics
    /// Panics if `self.cols() != dense.rows()`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: inner dimension mismatch {}x{} · {:?}",
            self.rows,
            self.cols,
            dense.shape()
        );
        let n = dense.cols();
        let mut out = Matrix::zeros(self.rows, n);
        let work = self.nnz() * n;
        let body = |r: usize, orow: &mut [f32]| {
            for (c, v) in self.row_entries(r) {
                let drow = dense.row(c);
                for (o, &d) in orow.iter_mut().zip(drow.iter()) {
                    *o += v * d;
                }
            }
        };
        if work >= 1 << 16 {
            out.data_mut()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(r, orow)| body(r, orow));
        } else {
            for r in 0..self.rows {
                let orow = &mut out.data_mut()[r * n..(r + 1) * n];
                // Re-borrow self immutably inside the loop body.
                for (c, v) in self.row_entries(r) {
                    let drow = dense.row(c);
                    for (o, &d) in orow.iter_mut().zip(drow.iter()) {
                        *o += v * d;
                    }
                }
            }
        }
        out
    }

    /// Sparse-vector product `self · x` with `f64` accumulation, for
    /// iterative graph algorithms (Katz, PageRank) whose convergence
    /// tolerances sit below single-precision roundoff. Values are widened
    /// per element; the summation itself runs entirely in `f64`.
    pub fn spmv_f64(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "spmv_f64: vector length {} != cols {}",
            x.len(),
            self.cols
        );
        (0..self.rows)
            .map(|r| {
                self.row_entries(r)
                    .map(|(c, v)| v as f64 * x[c])
                    .sum::<f64>()
            })
            .collect()
    }

    /// Build the symmetric-normalized GCN propagation operator
    /// `Â = D^{-1/2} (A + I) D^{-1/2}` from an undirected edge list over `n`
    /// nodes. Each `(u, v)` pair contributes both directions; self-loops are
    /// added once per node.
    pub fn gcn_norm_from_edges(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(edges.len() * 2 + n);
        for &(u, v) in edges {
            triplets.push((u, v, 1.0));
            if u != v {
                triplets.push((v, u, 1.0));
            }
        }
        for i in 0..n {
            triplets.push((i, i, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        // Degree = row sum of A + I.
        let inv_sqrt_deg: Vec<f32> = (0..n)
            .map(|r| {
                let d: f32 = a.row_entries(r).map(|(_, v)| v).sum();
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut norm = a;
        for r in 0..n {
            let lo = norm.indptr[r];
            let hi = norm.indptr[r + 1];
            for k in lo..hi {
                let c = norm.indices[k] as usize;
                norm.values[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[c];
            }
        }
        norm
    }
}

/// Work threshold (stored entries × feature width) above which sparse
/// kernels fan rows out over the rayon pool. Both paths sum each output
/// row in the same order, so the cutover is bit-inert.
const PAR_WORK: usize = 1 << 16;

/// Message chunk size for per-edge kernels (every output element is
/// independent, so chunking is bit-inert too).
const EDGE_CHUNK: usize = 256;

/// Reduction applied by [`CsrGraph::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Plain sum over incoming messages.
    Sum,
    /// Sum scaled by `1 / in-degree` of the destination (nodes with no
    /// incoming messages stay zero).
    Mean,
}

/// Topology-only CSR over directed messages `src → dst`, grouped by
/// destination, with the transposed layout precomputed.
///
/// This is the operand of the generalized sparse kernel pair:
///
/// * **g-SpMM** ([`spmm_ew`](Self::spmm_ew) and friends): gather node
///   features along incoming messages, scale by per-message weights, and
///   reduce per destination — `out[d] = Σ_{m ∈ in(d)} w[m] · h[src[m]]`.
/// * **g-SDDMM** ([`sddmm_dot`](Self::sddmm_dot) /
///   [`sddmm_add`](Self::sddmm_add)): produce one scalar per message from
///   the feature rows at its endpoints.
///
/// The two are adjoint: the backward pass of every g-SpMM is a transposed
/// g-SpMM (for the node features) plus a g-SDDMM dot (for the message
/// weights), and vice versa. The autograd layer leans on exactly that
/// pairing.
///
/// Message ids are positions in the construction order, which callers use
/// to attach per-message payloads (edge attributes, attention logits).
/// Within one destination the construction order is preserved, so all
/// per-destination reductions are deterministic, and packing disjoint
/// graphs block-diagonally preserves every per-sample summation order
/// bit-for-bit.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    num_nodes: usize,
    /// Message pointer per destination node, length `num_nodes + 1`.
    indptr: Vec<usize>,
    /// Source node per message.
    src: Vec<u32>,
    /// Destination node per message (redundant with `indptr`, kept for
    /// O(1) per-message access in the edge-parallel kernels).
    dst: Vec<u32>,
    /// Transposed layout: message ids grouped by source node.
    t_indptr: Vec<usize>,
    t_msg: Vec<u32>,
    /// Cached reducer weight vectors (`Sum` = ones, `Mean` = 1/in-degree).
    w_ones: OnceLock<Arc<Vec<f32>>>,
    w_mean: OnceLock<Arc<Vec<f32>>>,
}

impl CsrGraph {
    /// Build from messages `(src, dst)` that are already grouped by
    /// non-decreasing destination (the message id is the position).
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or if destinations decrease.
    pub fn from_messages(num_nodes: usize, messages: &[(u32, u32)]) -> Self {
        let mut indptr = vec![0usize; num_nodes + 1];
        let mut src = Vec::with_capacity(messages.len());
        let mut dst = Vec::with_capacity(messages.len());
        let mut prev_dst = 0u32;
        for &(s, d) in messages {
            assert!(
                (s as usize) < num_nodes && (d as usize) < num_nodes,
                "message ({s} -> {d}) out of bounds for {num_nodes} nodes"
            );
            assert!(
                d >= prev_dst,
                "messages must be grouped by non-decreasing destination ({d} after {prev_dst})"
            );
            prev_dst = d;
            indptr[d as usize + 1] += 1;
            src.push(s);
            dst.push(d);
        }
        for d in 0..num_nodes {
            indptr[d + 1] += indptr[d];
        }
        // Transpose: counting sort of message ids by source. Scanning in
        // message order keeps ids ascending within each source bucket, so
        // the transposed reduction order is deterministic as well.
        let mut t_indptr = vec![0usize; num_nodes + 1];
        for &s in &src {
            t_indptr[s as usize + 1] += 1;
        }
        for s in 0..num_nodes {
            t_indptr[s + 1] += t_indptr[s];
        }
        let mut cursor = t_indptr[..num_nodes].to_vec();
        let mut t_msg = vec![0u32; src.len()];
        for (m, &s) in src.iter().enumerate() {
            t_msg[cursor[s as usize]] = m as u32;
            cursor[s as usize] += 1;
        }
        Self {
            num_nodes,
            indptr,
            src,
            dst,
            t_indptr,
            t_msg,
            w_ones: OnceLock::new(),
            w_mean: OnceLock::new(),
        }
    }

    /// Block-diagonal concatenation of disjoint message graphs: part `k`'s
    /// node ids are shifted by the node total of parts `0..k` and its
    /// message ids by the message total.
    ///
    /// Because every part is already grouped by destination and parts are
    /// appended in node order, the shifted message list is globally
    /// dst-sorted — so the result equals [`CsrGraph::from_messages`] on
    /// that list (including the transposed layout) but is assembled by
    /// pure offset-shifted concatenation: no counting sort, no degree
    /// recount. This keeps the batcher's per-minibatch packing cost at a
    /// handful of linear copies.
    pub fn concat_block_diag(parts: &[&CsrGraph]) -> CsrGraph {
        let total_nodes: usize = parts.iter().map(|p| p.num_nodes).sum();
        let total_msgs: usize = parts.iter().map(|p| p.src.len()).sum();
        let mut indptr = Vec::with_capacity(total_nodes + 1);
        let mut t_indptr = Vec::with_capacity(total_nodes + 1);
        indptr.push(0usize);
        t_indptr.push(0usize);
        let mut src = Vec::with_capacity(total_msgs);
        let mut dst = Vec::with_capacity(total_msgs);
        let mut t_msg = Vec::with_capacity(total_msgs);
        let (mut node_off, mut msg_off) = (0usize, 0usize);
        for p in parts {
            let n_off = node_off as u32;
            let m_off = msg_off as u32;
            indptr.extend(p.indptr[1..].iter().map(|&x| x + msg_off));
            t_indptr.extend(p.t_indptr[1..].iter().map(|&x| x + msg_off));
            src.extend(p.src.iter().map(|&s| s + n_off));
            dst.extend(p.dst.iter().map(|&d| d + n_off));
            t_msg.extend(p.t_msg.iter().map(|&m| m + m_off));
            node_off += p.num_nodes;
            msg_off += p.src.len();
        }
        CsrGraph {
            num_nodes: total_nodes,
            indptr,
            src,
            dst,
            t_indptr,
            t_msg,
            w_ones: OnceLock::new(),
            w_mean: OnceLock::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of messages.
    pub fn num_messages(&self) -> usize {
        self.src.len()
    }

    /// Source node per message.
    pub fn src_ids(&self) -> &[u32] {
        &self.src
    }

    /// Destination node per message.
    pub fn dst_ids(&self) -> &[u32] {
        &self.dst
    }

    /// In-degree (incoming message count) of node `d`.
    pub fn in_degree(&self, d: usize) -> usize {
        self.indptr[d + 1] - self.indptr[d]
    }

    /// Contiguous message range `(start, end)` per destination node — the
    /// segment table consumed by per-destination softmax normalization.
    pub fn dst_segments(&self) -> Vec<(usize, usize)> {
        (0..self.num_nodes)
            .map(|d| (self.indptr[d], self.indptr[d + 1]))
            .collect()
    }

    /// Per-message weight vector realizing a [`Reduce`] mode (cached).
    pub fn reduce_weights(&self, reduce: Reduce) -> Arc<Vec<f32>> {
        match reduce {
            Reduce::Sum => self
                .w_ones
                .get_or_init(|| Arc::new(vec![1.0; self.num_messages()]))
                .clone(),
            Reduce::Mean => self
                .w_mean
                .get_or_init(|| {
                    let mut w = vec![0.0f32; self.num_messages()];
                    for d in 0..self.num_nodes {
                        let deg = self.in_degree(d);
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            for slot in &mut w[self.indptr[d]..self.indptr[d + 1]] {
                                *slot = inv;
                            }
                        }
                    }
                    Arc::new(w)
                })
                .clone(),
        }
    }

    /// g-SpMM with a [`Reduce`] mode: `out[d] = reduce_{m ∈ in(d)} h[src[m]]`.
    pub fn aggregate(&self, h: &Matrix, reduce: Reduce) -> Matrix {
        self.spmm_ew(&self.reduce_weights(reduce), h)
    }

    /// Transposed [`aggregate`](Self::aggregate) (its autograd adjoint).
    pub fn aggregate_t(&self, g: &Matrix, reduce: Reduce) -> Matrix {
        self.spmm_ew_t(&self.reduce_weights(reduce), g)
    }

    /// Edge-weighted g-SpMM: `out[d] = Σ_{m ∈ in(d)} w[m] · h[src[m]]`.
    /// `h` is `[N, F]`, `w` one weight per message; returns `[N, F]`.
    pub fn spmm_ew(&self, w: &[f32], h: &Matrix) -> Matrix {
        assert_eq!(w.len(), self.num_messages(), "spmm_ew: weight count");
        assert_eq!(h.rows(), self.num_nodes, "spmm_ew: feature rows");
        let f = h.cols();
        let mut out = Matrix::zeros(self.num_nodes, f);
        let body = |d: usize, orow: &mut [f32]| {
            let (lo, hi) = (self.indptr[d], self.indptr[d + 1]);
            for (&wm, &s) in w[lo..hi].iter().zip(&self.src[lo..hi]) {
                let hrow = h.row(s as usize);
                for (o, &hv) in orow.iter_mut().zip(hrow.iter()) {
                    *o += wm * hv;
                }
            }
        };
        run_rows(&mut out, f, self.num_messages() * f, body);
        out
    }

    /// Transposed edge-weighted g-SpMM:
    /// `out[s] = Σ_{m ∈ out(s)} w[m] · g[dst[m]]` — the adjoint of
    /// [`spmm_ew`](Self::spmm_ew), used as its backward rule for the node
    /// features.
    pub fn spmm_ew_t(&self, w: &[f32], g: &Matrix) -> Matrix {
        assert_eq!(w.len(), self.num_messages(), "spmm_ew_t: weight count");
        assert_eq!(g.rows(), self.num_nodes, "spmm_ew_t: gradient rows");
        let f = g.cols();
        let mut out = Matrix::zeros(self.num_nodes, f);
        let body = |s: usize, orow: &mut [f32]| {
            for k in self.t_indptr[s]..self.t_indptr[s + 1] {
                let m = self.t_msg[k] as usize;
                let wm = w[m];
                let grow = g.row(self.dst[m] as usize);
                for (o, &gv) in orow.iter_mut().zip(grow.iter()) {
                    *o += wm * gv;
                }
            }
        };
        run_rows(&mut out, f, self.num_messages() * f, body);
        out
    }

    /// g-SDDMM (dot flavor): `out[m] = ⟨a[dst[m]], b[src[m]]⟩` → `[M, 1]`.
    /// This is the adjoint of [`spmm_ew`](Self::spmm_ew) with respect to
    /// the message weights.
    pub fn sddmm_dot(&self, a_dst: &Matrix, b_src: &Matrix) -> Matrix {
        assert_eq!(a_dst.rows(), self.num_nodes, "sddmm_dot: dst rows");
        assert_eq!(b_src.rows(), self.num_nodes, "sddmm_dot: src rows");
        assert_eq!(a_dst.cols(), b_src.cols(), "sddmm_dot: width mismatch");
        let mut out = Matrix::zeros(self.num_messages(), 1);
        self.run_edges(&mut out, a_dst.cols(), |m, slot| {
            let ar = a_dst.row(self.dst[m] as usize);
            let br = b_src.row(self.src[m] as usize);
            slot[0] = ar.iter().zip(br.iter()).map(|(&x, &y)| x * y).sum();
        });
        out
    }

    /// g-SDDMM (dot flavor) against per-message rows:
    /// `out[m] = ⟨a[dst[m]], x[m]⟩` where `x` is `[M, F]`.
    pub fn sddmm_dot_edge(&self, a_dst: &Matrix, x: &Matrix) -> Matrix {
        assert_eq!(a_dst.rows(), self.num_nodes, "sddmm_dot_edge: dst rows");
        assert_eq!(x.rows(), self.num_messages(), "sddmm_dot_edge: msg rows");
        assert_eq!(a_dst.cols(), x.cols(), "sddmm_dot_edge: width mismatch");
        let mut out = Matrix::zeros(self.num_messages(), 1);
        self.run_edges(&mut out, x.cols(), |m, slot| {
            let ar = a_dst.row(self.dst[m] as usize);
            let xr = x.row(m);
            slot[0] = ar.iter().zip(xr.iter()).map(|(&a, &b)| a * b).sum();
        });
        out
    }

    /// g-SDDMM (add flavor): per-message score
    /// `out[m] = dst_col[dst[m]] + src_col[src[m]] (+ edge_col[m])` over
    /// `[N, 1]` endpoint columns and an optional `[M, 1]` message column —
    /// the decomposed GAT attention logit.
    pub fn sddmm_add(
        &self,
        src_col: &Matrix,
        dst_col: &Matrix,
        edge_col: Option<&Matrix>,
    ) -> Matrix {
        assert_eq!(src_col.shape(), (self.num_nodes, 1), "sddmm_add: src col");
        assert_eq!(dst_col.shape(), (self.num_nodes, 1), "sddmm_add: dst col");
        if let Some(e) = edge_col {
            assert_eq!(e.shape(), (self.num_messages(), 1), "sddmm_add: edge col");
        }
        let mut out = Matrix::zeros(self.num_messages(), 1);
        self.run_edges(&mut out, 1, |m, slot| {
            let mut v = dst_col.data()[self.dst[m] as usize] + src_col.data()[self.src[m] as usize];
            if let Some(e) = edge_col {
                v += e.data()[m];
            }
            slot[0] = v;
        });
        out
    }

    /// Weighted per-message aggregation: `out[d] = Σ_{m ∈ in(d)} w[m] · x[m]`
    /// where `x` is `[M, F]` — reduces message payloads (attended edge
    /// attributes) instead of source-node features.
    pub fn edge_aggregate(&self, w: &[f32], x: &Matrix) -> Matrix {
        assert_eq!(w.len(), self.num_messages(), "edge_aggregate: weights");
        assert_eq!(x.rows(), self.num_messages(), "edge_aggregate: msg rows");
        let f = x.cols();
        let mut out = Matrix::zeros(self.num_nodes, f);
        let body = |d: usize, orow: &mut [f32]| {
            let (lo, hi) = (self.indptr[d], self.indptr[d + 1]);
            for (m, &wm) in (lo..hi).zip(&w[lo..hi]) {
                let xr = x.row(m);
                for (o, &xv) in orow.iter_mut().zip(xr.iter()) {
                    *o += wm * xv;
                }
            }
        };
        run_rows(&mut out, f, self.num_messages() * f, body);
        out
    }

    /// Broadcast destination rows back onto messages with per-message
    /// scaling: `out[m] = w[m] · g[dst[m]]` → `[M, F]`. Adjoint of
    /// [`edge_aggregate`](Self::edge_aggregate) for the payload.
    pub fn expand_dst(&self, w: &[f32], g: &Matrix) -> Matrix {
        assert_eq!(w.len(), self.num_messages(), "expand_dst: weights");
        assert_eq!(g.rows(), self.num_nodes, "expand_dst: rows");
        let f = g.cols();
        let mut out = Matrix::zeros(self.num_messages(), f);
        self.run_edges(&mut out, f, |m, orow| {
            let wm = w[m];
            for (o, &gv) in orow.iter_mut().zip(g.row(self.dst[m] as usize)) {
                *o = wm * gv;
            }
        });
        out
    }

    /// Scatter a `[M, 1]` message column onto sources:
    /// `out[s] = Σ_{m ∈ out(s)} e[m]`.
    pub fn scatter_src(&self, e: &Matrix) -> Matrix {
        assert_eq!(e.shape(), (self.num_messages(), 1), "scatter_src: shape");
        let mut out = Matrix::zeros(self.num_nodes, 1);
        let body = |s: usize, orow: &mut [f32]| {
            for k in self.t_indptr[s]..self.t_indptr[s + 1] {
                orow[0] += e.data()[self.t_msg[k] as usize];
            }
        };
        run_rows(&mut out, 1, self.num_messages(), body);
        out
    }

    /// Scatter a `[M, 1]` message column onto destinations:
    /// `out[d] = Σ_{m ∈ in(d)} e[m]`.
    pub fn scatter_dst(&self, e: &Matrix) -> Matrix {
        assert_eq!(e.shape(), (self.num_messages(), 1), "scatter_dst: shape");
        let mut out = Matrix::zeros(self.num_nodes, 1);
        let body = |d: usize, orow: &mut [f32]| {
            for m in self.indptr[d]..self.indptr[d + 1] {
                orow[0] += e.data()[m];
            }
        };
        run_rows(&mut out, 1, self.num_messages(), body);
        out
    }

    /// Dense weighted adjacency `A[d, s] += w[m]` (test/reference helper).
    pub fn to_dense_adj(&self, w: &[f32]) -> Matrix {
        assert_eq!(w.len(), self.num_messages());
        let mut a = Matrix::zeros(self.num_nodes, self.num_nodes);
        for (m, &wm) in w.iter().enumerate() {
            let (d, s) = (self.dst[m] as usize, self.src[m] as usize);
            a.set(d, s, a.get(d, s) + wm);
        }
        a
    }

    /// Run a per-message kernel over chunks of the `[M, F]` output. Every
    /// output row depends on exactly one message, so chunking is safe and
    /// bit-inert.
    fn run_edges(&self, out: &mut Matrix, width: usize, body: impl Fn(usize, &mut [f32]) + Sync) {
        let f = out.cols();
        let rows_per_chunk = EDGE_CHUNK;
        let work = self.num_messages() * width.max(1);
        if work >= PAR_WORK {
            out.data_mut()
                .par_chunks_mut((rows_per_chunk * f).max(1))
                .enumerate()
                .for_each(|(ci, chunk)| {
                    for (j, orow) in chunk.chunks_mut(f.max(1)).enumerate() {
                        body(ci * rows_per_chunk + j, orow);
                    }
                });
        } else {
            for (m, orow) in out.data_mut().chunks_mut(f.max(1)).enumerate() {
                body(m, orow);
            }
        }
    }
}

/// Fan a per-output-row kernel over the rayon pool above the work
/// threshold; run it sequentially below. Row order inside each output row
/// is identical either way, so the cutover never changes results.
fn run_rows(out: &mut Matrix, f: usize, work: usize, body: impl Fn(usize, &mut [f32]) + Sync) {
    if work >= PAR_WORK {
        out.data_mut()
            .par_chunks_mut(f.max(1))
            .enumerate()
            .for_each(|(r, orow)| body(r, orow));
    } else {
        for (r, orow) in out.data_mut().chunks_mut(f.max(1)).enumerate() {
            body(r, orow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_block_diag_equals_from_messages_on_shifted_list() {
        // Three parts of varying shape, including an isolated-node part
        // (self-loop style messages) and an empty part.
        let a = CsrGraph::from_messages(3, &[(1, 0), (2, 0), (0, 1), (1, 2), (2, 2)]);
        let b = CsrGraph::from_messages(0, &[]);
        let c = CsrGraph::from_messages(2, &[(0, 0), (0, 1), (1, 1)]);
        let packed = CsrGraph::concat_block_diag(&[&a, &b, &c]);

        let mut shifted: Vec<(u32, u32)> = Vec::new();
        let mut off = 0u32;
        for p in [&a, &b, &c] {
            for m in 0..p.num_messages() {
                shifted.push((p.src_ids()[m] + off, p.dst_ids()[m] + off));
            }
            off += p.num_nodes() as u32;
        }
        let reference = CsrGraph::from_messages(5, &shifted);
        assert_eq!(packed.num_nodes, reference.num_nodes);
        assert_eq!(packed.indptr, reference.indptr);
        assert_eq!(packed.src, reference.src);
        assert_eq!(packed.dst, reference.dst);
        assert_eq!(packed.t_indptr, reference.t_indptr);
        assert_eq!(packed.t_msg, reference.t_msg);
    }

    #[test]
    fn triplets_roundtrip_and_duplicates_sum() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (0, 1, 3.0), (2, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(2, 0), 1.0);
        assert_eq!(d.sum(), 6.0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let m =
            CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (0, 3, 2.0), (1, 1, -1.0), (2, 2, 0.5)]);
        let x = Matrix::from_fn(4, 2, |r, c| (r + c) as f32);
        let expect = crate::matmul::matmul(&m.to_dense(), &x);
        assert!(m.spmm(&x).max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    fn spmm_parallel_path_matches() {
        let triplets: Vec<(usize, usize, f32)> = (0..500)
            .map(|i| (i % 100, (i * 7) % 100, 1.0 + i as f32 * 0.01))
            .collect();
        let m = CsrMatrix::from_triplets(100, 100, &triplets);
        let x = Matrix::from_fn(100, 200, |r, c| ((r * 3 + c) % 11) as f32 - 5.0);
        let expect = crate::matmul::matmul(&m.to_dense(), &x);
        assert!(m.spmm(&x).max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn transpose_is_involution() {
        let m = CsrMatrix::from_triplets(2, 5, &[(0, 4, 1.5), (1, 0, -2.0), (1, 4, 3.0)]);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn gcn_norm_rows_of_isolated_graph() {
        // Graph with no edges: Â = D^{-1/2} I D^{-1/2} = I (degree 1 from the
        // self loop).
        let m = CsrMatrix::gcn_norm_from_edges(3, &[]);
        assert!(m.to_dense().max_abs_diff(&Matrix::eye(3)) < 1e-6);
    }

    #[test]
    fn gcn_norm_path_graph_values() {
        // 0 - 1 - 2 path. Degrees with self loops: 2, 3, 2.
        let m = CsrMatrix::gcn_norm_from_edges(3, &[(0, 1), (1, 2)]).to_dense();
        let s2 = 1.0 / 2.0f32; // 1/(sqrt2*sqrt2)
        let s23 = 1.0 / (2.0f32.sqrt() * 3.0f32.sqrt());
        let s3 = 1.0 / 3.0f32;
        assert!((m.get(0, 0) - s2).abs() < 1e-6);
        assert!((m.get(0, 1) - s23).abs() < 1e-6);
        assert!((m.get(1, 1) - s3).abs() < 1e-6);
        assert!((m.get(1, 0) - s23).abs() < 1e-6);
        assert_eq!(m.get(0, 2), 0.0);
        // Symmetric.
        assert!(m.max_abs_diff(&m.transpose()) < 1e-6);
    }

    #[test]
    fn duplicates_split_across_input_are_merged() {
        // The same coordinate appears at the start, middle, and end of the
        // triplet list, interleaved with other rows — the explicit dedup
        // pass must merge all three occurrences after sorting.
        let m = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (1, 2, 1.0),
                (0, 0, 5.0),
                (1, 2, 2.0),
                (2, 1, -1.0),
                (1, 2, 4.0),
            ],
        );
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.to_dense().get(1, 2), 7.0);
        assert_eq!(m.to_dense().get(0, 0), 5.0);
    }

    #[test]
    fn duplicate_rule_is_sum_not_last_wins_and_order_free() {
        // Pin the documented duplicate contract: duplicate (u,v) entries
        // sum — the value is NOT the last occurrence — and any input
        // permutation builds the identical matrix. Mutation replay feeds
        // edge lists in whatever order the WAL recorded them, so a
        // replayed adjacency must be bit-identical to the live one.
        let dup = &[(0usize, 1usize, 2.0f32), (2, 2, 9.0), (0, 1, 3.0)];
        let m = CsrMatrix::from_triplets(3, 3, dup);
        assert_eq!(m.to_dense().get(0, 1), 5.0, "summed, not last-wins (3.0)");
        let mut reversed = dup.to_vec();
        reversed.reverse();
        assert_eq!(
            m,
            CsrMatrix::from_triplets(3, 3, &reversed),
            "duplicate merging must be order-independent"
        );
    }

    #[test]
    fn from_sorted_coo_matches_from_triplets() {
        let trips = vec![(0, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0), (2, 2, 4.0)];
        let a = CsrMatrix::from_sorted_coo(3, 3, &trips);
        let b = CsrMatrix::from_triplets(3, 3, &trips);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn from_sorted_coo_rejects_unsorted() {
        let _ = CsrMatrix::from_sorted_coo(2, 2, &[(1, 0, 1.0), (0, 0, 1.0)]);
    }

    #[test]
    fn spmv_f64_matches_dense() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 2.0)]);
        let y = m.spmv_f64(&[0.5, 0.25, -1.0]);
        assert_eq!(y, vec![0.25, 0.5, -2.0]);
    }

    /// Small reference graph: messages (src → dst), dst-grouped.
    /// 0→0, 1→0, 2→1, 0→2, 2→2.
    fn tiny_graph() -> CsrGraph {
        CsrGraph::from_messages(3, &[(0, 0), (1, 0), (2, 1), (0, 2), (2, 2)])
    }

    #[test]
    fn csr_graph_spmm_ew_matches_dense() {
        let g = tiny_graph();
        let w = [0.5, 1.0, 2.0, -1.0, 0.25];
        let h = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let dense = crate::matmul::matmul(&g.to_dense_adj(&w), &h);
        assert!(g.spmm_ew(&w, &h).max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn csr_graph_transpose_pair_is_adjoint() {
        // ⟨A·h, g⟩ == ⟨h, Aᵀ·g⟩ for the weighted operator.
        let g = tiny_graph();
        let w = [1.0, 0.5, -2.0, 3.0, 0.1];
        let h = Matrix::from_fn(3, 4, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let y = Matrix::from_fn(3, 4, |r, c| ((r + c * 2) % 3) as f32);
        let lhs: f32 = g
            .spmm_ew(&w, &h)
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = h
            .data()
            .iter()
            .zip(g.spmm_ew_t(&w, &y).data())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn csr_graph_aggregate_mean_and_sum() {
        let g = tiny_graph();
        let h = Matrix::from_fn(3, 1, |r, _| (r + 1) as f32);
        let sum = g.aggregate(&h, Reduce::Sum);
        // in(0) = {0, 1} → 1+2 = 3; in(1) = {2} → 3; in(2) = {0, 2} → 4.
        assert_eq!(sum.data(), &[3.0, 3.0, 4.0]);
        let mean = g.aggregate(&h, Reduce::Mean);
        assert_eq!(mean.data(), &[1.5, 3.0, 2.0]);
    }

    #[test]
    fn csr_graph_sddmm_dot_and_add() {
        let g = tiny_graph();
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        let d = g.sddmm_dot(&a, &b);
        // m0: dst 0, src 0 → ⟨[0,1],[0,1]⟩ = 1.
        // m4: dst 2, src 2 → ⟨[2,3],[4,5]⟩ = 23.
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(4, 0), 23.0);

        let sc = Matrix::col_vector(&[10.0, 20.0, 30.0]);
        let dc = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        let ec = Matrix::col_vector(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let s = g.sddmm_add(&sc, &dc, Some(&ec));
        // m1: src 1, dst 0 → 1 + 20 + 0.2 = 21.2.
        assert!((s.get(1, 0) - 21.2).abs() < 1e-6);
        let s2 = g.sddmm_add(&sc, &dc, None);
        assert_eq!(s2.get(1, 0), 21.0);
    }

    #[test]
    fn csr_graph_scatters_and_edge_aggregate() {
        let g = tiny_graph();
        let e = Matrix::col_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // out(s): s0 → {m0, m3}, s1 → {m1}, s2 → {m2, m4}.
        assert_eq!(g.scatter_src(&e).data(), &[5.0, 2.0, 8.0]);
        assert_eq!(g.scatter_dst(&e).data(), &[3.0, 3.0, 9.0]);

        let x = Matrix::from_fn(5, 2, |r, _| r as f32);
        let w = [1.0; 5];
        let agg = g.edge_aggregate(&w, &x);
        assert_eq!(agg.row(0), &[1.0, 1.0]); // m0 + m1 payloads: 0 + 1
        assert_eq!(agg.row(2), &[7.0, 7.0]); // m3 + m4: 3 + 4
        let back = g.expand_dst(&w, &agg);
        assert_eq!(back.row(0), agg.row(0));
        assert_eq!(back.row(2), agg.row(1));
    }

    #[test]
    fn csr_graph_segments_cover_all_messages() {
        let g = tiny_graph();
        let segs = g.dst_segments();
        assert_eq!(segs, vec![(0, 2), (2, 3), (3, 5)]);
        assert_eq!(g.in_degree(0), 2);
        assert_eq!(g.num_messages(), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing destination")]
    fn csr_graph_rejects_unsorted_destinations() {
        let _ = CsrGraph::from_messages(2, &[(0, 1), (0, 0)]);
    }

    #[test]
    fn gcn_norm_spectral_radius_at_most_one() {
        // Power iteration on Â: the largest eigenvalue of the symmetric
        // normalized operator with self loops is exactly 1.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let a = CsrMatrix::gcn_norm_from_edges(4, &edges);
        let mut v = Matrix::ones(4, 1);
        for _ in 0..100 {
            v = a.spmm(&v);
            let n = v.norm();
            v.scale_inplace(1.0 / n);
        }
        let av = a.spmm(&v);
        let lambda = av.norm() / v.norm();
        assert!(lambda <= 1.0 + 1e-4, "spectral radius {lambda} > 1");
        assert!(lambda > 0.9, "spectral radius {lambda} unexpectedly small");
    }
}
