//! # amdgcnn-tensor
//!
//! Dense `f32` matrix algebra, sparse CSR operators, small dense linear
//! algebra, and tape-based reverse-mode automatic differentiation — the
//! numeric substrate underneath the AM-DGCNN reproduction.
//!
//! Design notes:
//!
//! * Everything is 2-D. GNN workloads over enclosing subgraphs decompose
//!   into node-major `[N, F]`, edge-major `[E, F]`, and channel-major
//!   `[C, L]` matrices; full tensor-rank generality would buy nothing.
//! * Parallelism follows the rayon idiom: kernels above a FLOP threshold
//!   fan output rows out over the global pool ([`matmul::PAR_FLOP_THRESHOLD`]),
//!   and the autodiff [`autograd::Tape`] is strictly per-sample so training
//!   batches parallelize at the sample level with zero shared mutable state.
//! * Determinism: all randomness flows through explicit [`rand::rngs::StdRng`]
//!   seeds (see [`init`]).
//!
//! # Example: reverse-mode autodiff
//!
//! ```
//! use amdgcnn_tensor::{Matrix, ParamStore, Tape};
//!
//! // loss = mean((x·W)²) — gradient flows back to W.
//! let mut params = ParamStore::new();
//! let w = params.register("w", Matrix::eye(2));
//!
//! let mut tape = Tape::new();
//! let wv = tape.param(w, params.get(w).clone());
//! let x = tape.leaf(Matrix::row_vector(&[3.0, -1.0]));
//! let y = tape.matmul(x, wv);
//! let y2 = tape.mul(y, y);
//! let loss = tape.mean_all(y2);
//!
//! let grads = tape.backward(loss, params.len());
//! let gw = grads.get(w).expect("W participates in the loss");
//! // d/dW_00 of (x·W)_0² / 2 = x_0 · 2·(x·W)_0 / 2 = 3 · 3 = 9.
//! assert!((gw.get(0, 0) - 9.0).abs() < 1e-5);
//! ```

#![warn(missing_docs)]

pub mod autograd;
pub mod durable;
pub mod init;
pub mod io;
pub mod linalg;
pub mod matmul;
pub mod matrix;
pub mod param;
pub mod sparse;
pub mod wal;

pub use autograd::{Conv1dSpec, Tape, Var};
pub use durable::{crc32, write_atomic, DiskFault};
pub use matrix::Matrix;
pub use param::{GradStore, ParamId, ParamStore};
pub use sparse::{CsrGraph, CsrMatrix, Reduce};
pub use wal::{Wal, WalReplay};
