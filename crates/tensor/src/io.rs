//! Parameter checkpointing: save/load a [`ParamStore`] to a compact
//! self-describing binary format (no external serialization dependency —
//! little-endian, versioned, name-checked on load).
//!
//! Format (version 2):
//! ```text
//! magic "AMDG" | u32 version | u32 param count |
//!   per param: u32 name len | name bytes | u32 rows | u32 cols | f32 data...
//!              | u32 section CRC-32
//! | u32 footer CRC-32
//! ```
//!
//! Each parameter record carries a CRC-32 over its own bytes, and the file
//! ends with a CRC-32 over every header and record byte, so a torn write or
//! a flipped bit anywhere in the file is detected at load time instead of
//! silently corrupting a model. Version 1 files (no checksums) remain
//! loadable.

use crate::durable::{crc32, CrcReader, CrcWriter, DiskFault};
use crate::matrix::Matrix;
use crate::param::ParamStore;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"AMDG";
/// Current write-side format version (checksummed records + footer).
const VERSION: u32 = 2;
/// Oldest version [`load_params`] still reads (pre-checksum format).
const MIN_VERSION: u32 = 1;

/// Hard ceilings on header-declared sizes. A checkpoint we write ourselves
/// stays far below all of them; anything above is a corrupt or hostile file
/// and is rejected before memory is committed to it.
const MAX_PARAMS: usize = 1 << 20;
const MAX_NAME_LEN: usize = 1 << 16;
const MAX_ELEMS: usize = 1 << 28;

/// Elements per chunked read while streaming tensor data in. Allocation
/// grows only as bytes actually arrive, so a header that lies about
/// `rows * cols` hits end-of-stream long before exhausting memory.
const READ_CHUNK_ELEMS: usize = 16 * 1024;

/// Serialize every parameter (ids are positional, names included for
/// verification), with per-record and whole-file CRC-32 checksums.
pub fn save_params<W: Write>(ps: &ParamStore, w: W) -> io::Result<()> {
    let mut w = CrcWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ps.len() as u32).to_le_bytes())?;
    for (id, value) in ps.iter() {
        w.reset_section();
        let name = ps.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        write_matrix(&mut w, value)?;
        let section = w.section_crc();
        w.write_unchecked(&section.to_le_bytes())?;
    }
    let footer = w.total_crc();
    w.write_unchecked(&footer.to_le_bytes())?;
    Ok(())
}

/// Serialize a [`ParamStore`] to `path` crash-safely (write-to-temp +
/// fsync + atomic rename). `fault` is the deterministic durability fault
/// to inject, for testing recovery paths; pass `None` in production.
pub fn save_params_file(path: &Path, ps: &ParamStore, fault: Option<DiskFault>) -> io::Result<()> {
    let mut buf = Vec::new();
    save_params(ps, &mut buf)?;
    crate::durable::write_atomic(path, &buf, fault)
}

/// Load a [`ParamStore`] from `path`, verifying checksums.
pub fn load_params_file(path: &Path) -> io::Result<ParamStore> {
    load_params(io::BufReader::new(std::fs::File::open(path)?))
}

/// Deserialize into a fresh [`ParamStore`]. Ids are assigned in file order,
/// which matches the registration order of an identically constructed
/// model.
///
/// Every header field is treated as untrusted: counts and shapes are capped,
/// data is read in bounded chunks, and a stream that ends before the header's
/// promise is kept fails with [`io::ErrorKind::InvalidData`] — never a bare
/// `UnexpectedEof` and never an allocation sized by the corrupt header. For
/// version-2 files every record checksum and the footer checksum are
/// verified, so any single corrupted byte in the payload is rejected;
/// version-1 files load without checksum verification.
pub fn load_params<R: Read>(r: R) -> io::Result<ParamStore> {
    let mut r = CrcReader::new(r);
    let mut magic = [0u8; 4];
    read_exact_checked(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(invalid("bad magic"));
    }
    let version = read_u32(&mut r, "version")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(invalid(format!("unsupported checkpoint version {version}")));
    }
    let checksummed = version >= 2;
    let count = read_u32(&mut r, "parameter count")? as usize;
    if count > MAX_PARAMS {
        return Err(invalid(format!("implausible parameter count {count}")));
    }
    let mut ps = ParamStore::new();
    for idx in 0..count {
        r.reset_section();
        let name_len = read_u32(&mut r, "name length")? as usize;
        if name_len > MAX_NAME_LEN {
            return Err(invalid(format!(
                "implausible name length {name_len} for parameter {idx}"
            )));
        }
        let mut name = vec![0u8; name_len];
        read_exact_checked(&mut r, &mut name, "parameter name")?;
        let name = String::from_utf8(name).map_err(|_| invalid("non-utf8 name"))?;
        let value = read_matrix(&mut r, &name)?;
        if checksummed {
            let expect = r.section_crc();
            let stored = read_crc(&mut r, "record checksum")?;
            if stored != expect {
                return Err(invalid(format!(
                    "checksum mismatch in parameter {name}: stored {stored:#010x}, \
                     computed {expect:#010x}"
                )));
            }
        }
        ps.register(name, value);
    }
    if checksummed {
        let expect = r.total_crc();
        let stored = read_crc(&mut r, "footer checksum")?;
        if stored != expect {
            return Err(invalid(format!(
                "footer checksum mismatch: stored {stored:#010x}, computed {expect:#010x}"
            )));
        }
    }
    Ok(ps)
}

/// Copy parameter values from `loaded` into `target`, verifying that
/// names and shapes line up position-by-position (i.e. the two stores were
/// built by the same model constructor).
pub fn restore_into(target: &mut ParamStore, loaded: &ParamStore) -> io::Result<()> {
    if target.len() != loaded.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: {} vs {}",
                target.len(),
                loaded.len()
            ),
        ));
    }
    for (id, value) in loaded.iter() {
        if target.name(id) != loaded.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter {} name mismatch: {} vs {}",
                    id.0,
                    target.name(id),
                    loaded.name(id)
                ),
            ));
        }
        if target.get(id).shape() != value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter {} shape mismatch", loaded.name(id)),
            ));
        }
        target.set(id, (**value).clone());
    }
    Ok(())
}

/// Serialize one matrix as `u32 rows | u32 cols | f32 LE data...` — the
/// element layout every AM* container format shares (parameter checkpoints,
/// training-state snapshots, the sample store).
pub fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> io::Result<()> {
    w.write_all(&(m.rows() as u32).to_le_bytes())?;
    w.write_all(&(m.cols() as u32).to_le_bytes())?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a matrix written by [`write_matrix`]. The declared shape is
/// untrusted: sizes above an internal ceiling are rejected and data is read
/// in bounded chunks, so a corrupt header can never drive a huge
/// allocation. `what` names the tensor in error messages.
pub fn read_matrix<R: Read>(r: &mut R, what: &str) -> io::Result<Matrix> {
    let rows = read_u32(r, "rows")? as usize;
    let cols = read_u32(r, "cols")? as usize;
    let total = rows.saturating_mul(cols);
    if total > MAX_ELEMS {
        return Err(invalid(format!(
            "implausible tensor size {rows}x{cols} for {what}"
        )));
    }
    let mut data: Vec<f32> = Vec::with_capacity(total);
    // Sized to the smaller of one chunk and the whole tensor: small
    // matrices (one store record, one bias vector) shouldn't pay a 64 KiB
    // zeroed allocation each.
    let mut byte_buf = vec![0u8; total.min(READ_CHUNK_ELEMS) * 4];
    let mut remaining = total;
    while remaining > 0 {
        let n = remaining.min(READ_CHUNK_ELEMS);
        read_exact_checked(r, &mut byte_buf[..n * 4], "tensor data")?;
        data.extend(
            byte_buf[..n * 4]
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().expect("4-byte chunk"))),
        );
        remaining -= n;
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_exact` that reports a short stream as corrupt data (the header
/// promised more bytes than exist) instead of a bare `UnexpectedEof`.
fn read_exact_checked<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("checkpoint truncated while reading {what}"))
        } else {
            e
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    read_exact_checked(r, &mut buf, what)?;
    Ok(u32::from_le_bytes(buf))
}

/// Read a stored CRC value without folding it into the running checksums.
fn read_crc<R: Read>(r: &mut CrcReader<R>, what: &str) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact_unchecked(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("checkpoint truncated while reading {what}"))
        } else {
            e
        }
    })?;
    Ok(u32::from_le_bytes(buf))
}

/// Serialize a store exactly as format version 1 did (no checksums).
/// Only used by tests to prove backward compatibility; real writes always
/// use the current version.
#[doc(hidden)]
pub fn save_params_v1_for_tests<W: Write>(ps: &ParamStore, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&1u32.to_le_bytes())?;
    w.write_all(&(ps.len() as u32).to_le_bytes())?;
    for (id, value) in ps.iter() {
        let name = ps.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// CRC-32 of a serialized store — the cheap way for callers to compare two
/// checkpoints for bit-identity.
pub fn params_digest(ps: &ParamStore) -> u32 {
    let mut buf = Vec::new();
    save_params(ps, &mut buf).expect("in-memory save cannot fail");
    crc32(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.register(
            "layer.weight",
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5),
        );
        ps.register(
            "layer.bias",
            Matrix::from_vec(1, 4, vec![-1.0, 0.0, 1.0, 2.5]),
        );
        ps
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_store();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        assert_eq!(loaded.len(), ps.len());
        for (id, value) in ps.iter() {
            assert_eq!(loaded.name(id), ps.name(id));
            assert_eq!(**loaded.get(id), **value);
        }
    }

    #[test]
    fn restore_into_matching_store() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");

        // Fresh store with identical structure but different values.
        let mut fresh = ParamStore::new();
        fresh.register("layer.weight", Matrix::zeros(3, 4));
        fresh.register("layer.bias", Matrix::zeros(1, 4));
        restore_into(&mut fresh, &loaded).expect("restore");
        assert_eq!(
            **fresh.get(crate::param::ParamId(0)),
            **trained.get(crate::param::ParamId(0))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_params(&b"NOPE"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected_as_invalid_data() {
        let ps = sample_store();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        // Truncate at every prefix length: the loader must always report
        // corrupt data, never leak a bare UnexpectedEof.
        for cut in 0..buf.len() {
            let err = load_params(&buf[..cut]).expect_err("truncated must fail");
            assert_eq!(
                err.kind(),
                io::ErrorKind::InvalidData,
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let ps = sample_store();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x10;
            let err = load_params(corrupt.as_slice())
                .expect_err("a flipped byte must never load cleanly");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {pos}");
        }
    }

    #[test]
    fn v1_files_without_checksums_still_load() {
        let ps = sample_store();
        let mut v1 = Vec::new();
        save_params_v1_for_tests(&ps, &mut v1).expect("save v1");
        let loaded = load_params(v1.as_slice()).expect("v1 load");
        assert_eq!(loaded.len(), ps.len());
        for (id, value) in ps.iter() {
            assert_eq!(**loaded.get(id), **value);
        }
    }

    #[test]
    fn lying_count_header_rejected_without_huge_alloc() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd param count
        let err = load_params(buf.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("parameter count"), "{err}");
    }

    #[test]
    fn lying_shape_header_rejected() {
        // One parameter whose header claims a 65536x65536 tensor but whose
        // data section is empty: both the size cap and the chunked read
        // must keep this from allocating gigabytes.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        buf.extend_from_slice(&65536u32.to_le_bytes());
        buf.extend_from_slice(&65536u32.to_le_bytes());
        let err = load_params(buf.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A merely-large claim below the cap still fails fast on truncation
        // instead of allocating the full claimed size up front.
        let mut buf2 = Vec::new();
        buf2.extend_from_slice(MAGIC);
        buf2.extend_from_slice(&VERSION.to_le_bytes());
        buf2.extend_from_slice(&1u32.to_le_bytes());
        buf2.extend_from_slice(&1u32.to_le_bytes());
        buf2.push(b'w');
        buf2.extend_from_slice(&4096u32.to_le_bytes());
        buf2.extend_from_slice(&4096u32.to_le_bytes());
        let err = load_params(buf2.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        let mut wrong = ParamStore::new();
        wrong.register("layer.weight", Matrix::zeros(3, 4));
        wrong.register("layer.bias", Matrix::zeros(1, 5)); // wrong width
        assert!(restore_into(&mut wrong, &loaded).is_err());
    }

    #[test]
    fn restore_rejects_name_mismatch() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        let mut wrong = ParamStore::new();
        wrong.register("other.weight", Matrix::zeros(3, 4));
        wrong.register("layer.bias", Matrix::zeros(1, 4));
        assert!(restore_into(&mut wrong, &loaded).is_err());
    }

    #[test]
    fn digest_distinguishes_stores() {
        let a = sample_store();
        let mut b = sample_store();
        assert_eq!(params_digest(&a), params_digest(&b));
        b.update(crate::param::ParamId(0), |m| m.set(0, 0, 99.0));
        assert_ne!(params_digest(&a), params_digest(&b));
    }

    #[test]
    fn file_roundtrip_is_atomic_and_checksummed() {
        let dir = std::env::temp_dir().join(format!("amdgcnn-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("dir");
        let path = dir.join("params.ckpt");
        let ps = sample_store();
        save_params_file(&path, &ps, None).expect("save");
        let loaded = load_params_file(&path).expect("load");
        assert_eq!(params_digest(&loaded), params_digest(&ps));

        // A torn write is detected at load, not silently accepted.
        save_params_file(&path, &ps, Some(DiskFault::TornWrite)).expect("write");
        let err = load_params_file(&path).expect_err("torn file must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
