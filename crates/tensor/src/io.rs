//! Parameter checkpointing: save/load a [`ParamStore`] to a compact
//! self-describing binary format (no external serialization dependency —
//! little-endian, versioned, name-checked on load).
//!
//! Format:
//! ```text
//! magic "AMDG" | u32 version | u32 param count |
//!   per param: u32 name len | name bytes | u32 rows | u32 cols | f32 data...
//! ```

use crate::matrix::Matrix;
use crate::param::ParamStore;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"AMDG";
const VERSION: u32 = 1;

/// Serialize every parameter (ids are positional, names included for
/// verification).
pub fn save_params<W: Write>(ps: &ParamStore, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ps.len() as u32).to_le_bytes())?;
    for (id, value) in ps.iter() {
        let name = ps.name(id).as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize into a fresh [`ParamStore`]. Ids are assigned in file order,
/// which matches the registration order of an identically constructed
/// model.
pub fn load_params<R: Read>(mut r: R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(&mut r)? as usize;
    let mut ps = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        if name_len > 1 << 16 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible name length",
            ));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 name"))?;
        let rows = read_u32(&mut r)? as usize;
        let cols = read_u32(&mut r)? as usize;
        if rows.saturating_mul(cols) > 1 << 28 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible tensor size",
            ));
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        ps.register(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(ps)
}

/// Copy parameter values from `loaded` into `target`, verifying that
/// names and shapes line up position-by-position (i.e. the two stores were
/// built by the same model constructor).
pub fn restore_into(target: &mut ParamStore, loaded: &ParamStore) -> io::Result<()> {
    if target.len() != loaded.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: {} vs {}",
                target.len(),
                loaded.len()
            ),
        ));
    }
    for (id, value) in loaded.iter() {
        if target.name(id) != loaded.name(id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter {} name mismatch: {} vs {}",
                    id.0,
                    target.name(id),
                    loaded.name(id)
                ),
            ));
        }
        if target.get(id).shape() != value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("parameter {} shape mismatch", loaded.name(id)),
            ));
        }
        target.set(id, (**value).clone());
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.register(
            "layer.weight",
            Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5),
        );
        ps.register(
            "layer.bias",
            Matrix::from_vec(1, 4, vec![-1.0, 0.0, 1.0, 2.5]),
        );
        ps
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ps = sample_store();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        assert_eq!(loaded.len(), ps.len());
        for (id, value) in ps.iter() {
            assert_eq!(loaded.name(id), ps.name(id));
            assert_eq!(**loaded.get(id), **value);
        }
    }

    #[test]
    fn restore_into_matching_store() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");

        // Fresh store with identical structure but different values.
        let mut fresh = ParamStore::new();
        fresh.register("layer.weight", Matrix::zeros(3, 4));
        fresh.register("layer.bias", Matrix::zeros(1, 4));
        restore_into(&mut fresh, &loaded).expect("restore");
        assert_eq!(
            **fresh.get(crate::param::ParamId(0)),
            **trained.get(crate::param::ParamId(0))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_params(&b"NOPE"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let ps = sample_store();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).expect("save");
        buf.truncate(buf.len() - 3);
        assert!(load_params(buf.as_slice()).is_err());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        let mut wrong = ParamStore::new();
        wrong.register("layer.weight", Matrix::zeros(3, 4));
        wrong.register("layer.bias", Matrix::zeros(1, 5)); // wrong width
        assert!(restore_into(&mut wrong, &loaded).is_err());
    }

    #[test]
    fn restore_rejects_name_mismatch() {
        let trained = sample_store();
        let mut buf = Vec::new();
        save_params(&trained, &mut buf).expect("save");
        let loaded = load_params(buf.as_slice()).expect("load");
        let mut wrong = ParamStore::new();
        wrong.register("other.weight", Matrix::zeros(3, 4));
        wrong.register("layer.bias", Matrix::zeros(1, 4));
        assert!(restore_into(&mut wrong, &loaded).is_err());
    }
}
