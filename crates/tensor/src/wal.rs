//! Append-only CRC-guarded write-ahead log.
//!
//! A [`Wal`] is a single file holding a fixed header followed by
//! length-prefixed records, each guarded by its own CRC-32:
//!
//! ```text
//! [ b"AMWL" ][ version u32 LE ]                    file header (8 bytes)
//! [ len u32 LE ][ crc32(payload) u32 LE ][ payload ]   record, repeated
//! ```
//!
//! Appends are flushed (`sync_data`) before returning, so a record whose
//! `append` returned `Ok` survives a crash. A crash *during* an append
//! leaves a torn record at the tail; [`Wal::open`] replays the valid
//! prefix, reports what it had to drop, and truncates the file back to
//! that prefix so later appends extend a clean log. Replay never fails on
//! a damaged tail — that is the expected post-crash state — it only fails
//! on a damaged *header*, which means the file is not a WAL at all.
//!
//! Fault injection mirrors [`durable::write_atomic`](crate::durable):
//! [`Wal::append_faulty`] accepts a [`DiskFault`] that deterministically
//! simulates the three durability failures at the record level (torn
//! tail, bit flip inside a record, record lost before flush).

use crate::durable::{crc32, DiskFault};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"AMWL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Header length: magic + version.
const HEADER_LEN: u64 = 8;
/// Per-record frame overhead: length + CRC.
const FRAME_LEN: usize = 8;
/// Refuse records larger than this (a length field beyond it means the
/// length itself is corrupt, not that someone logged a 2 GiB record).
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// What [`Wal::open`] found when replaying an existing log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Every intact record's payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of valid log (header + intact records) — the offset the file
    /// was truncated back to.
    pub valid_len: u64,
    /// Bytes of damaged tail dropped during repair (0 for a clean log).
    pub dropped_bytes: u64,
}

impl WalReplay {
    /// True when the log ended cleanly, with no damaged tail.
    pub fn clean(&self) -> bool {
        self.dropped_bytes == 0
    }
}

/// An append-only CRC-guarded record log (see module docs for the format).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Records currently durable in this log.
    records: u64,
}

impl Wal {
    /// Create a fresh log at `path`, truncating any existing file.
    ///
    /// # Errors
    /// Propagates I/O errors from create/write/sync.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Open an existing log (or create a fresh one), replaying every
    /// intact record and repairing a damaged tail by truncation. The
    /// returned [`WalReplay`] holds the surviving payloads; subsequent
    /// [`append`](Self::append)s extend the repaired log.
    ///
    /// # Errors
    /// `InvalidData` when the file exists but its header is not a WAL
    /// header (wrong magic or unsupported version); other I/O errors are
    /// propagated.
    pub fn open(path: &Path) -> io::Result<(Self, WalReplay)> {
        if !path.exists() {
            let wal = Self::create(path)?;
            return Ok((
                wal,
                WalReplay {
                    records: Vec::new(),
                    valid_len: HEADER_LEN,
                    dropped_bytes: 0,
                },
            ));
        }
        let replay = replay(path)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        // Repair: drop the damaged tail so future appends start on a
        // record boundary.
        file.set_len(replay.valid_len)?;
        file.sync_all()?;
        let mut wal = Self {
            file,
            path: path.to_path_buf(),
            records: replay.records.len() as u64,
        };
        wal.file.seek(SeekFrom::End(0))?;
        Ok((wal, replay))
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records durably appended so far (including replayed ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one record and flush it to disk. When this returns `Ok`,
    /// the record survives a crash.
    ///
    /// # Errors
    /// Propagates I/O errors; `InvalidInput` when the payload exceeds
    /// [`MAX_RECORD_LEN`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.append_faulty(payload, None)
    }

    /// [`append`](Self::append) with deterministic fault injection:
    /// - [`DiskFault::TornWrite`]: only the first half of the framed
    ///   record reaches the disk (a crash racing writeback) — replay
    ///   drops the torn tail;
    /// - [`DiskFault::BitFlip`]: the full record lands with one bit
    ///   flipped mid-payload — the record CRC catches it on replay;
    /// - [`DiskFault::PartialFlush`]: the record never reaches the disk
    ///   at all (a crash before flush) — the log simply ends earlier.
    ///
    /// All three return `Ok` — the *caller* believed the write succeeded,
    /// which is exactly the lie a crashing disk tells. Recovery happens
    /// in [`Wal::open`].
    ///
    /// # Errors
    /// Same as [`append`](Self::append).
    pub fn append_faulty(&mut self, payload: &[u8], fault: Option<DiskFault>) -> io::Result<()> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("WAL record of {} bytes exceeds cap", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match fault {
            None => {
                self.file.write_all(&frame)?;
                self.file.sync_data()?;
                self.records += 1;
            }
            Some(DiskFault::TornWrite) => {
                self.file.write_all(&frame[..frame.len() / 2])?;
                self.file.sync_data()?;
            }
            Some(DiskFault::BitFlip) => {
                let mid = FRAME_LEN + payload.len() / 2;
                if let Some(b) = frame.get_mut(mid) {
                    *b ^= 0x01;
                }
                self.file.write_all(&frame)?;
                self.file.sync_data()?;
            }
            Some(DiskFault::PartialFlush) => {
                // The bytes sat in a volatile cache when the power went:
                // nothing reaches the file.
            }
        }
        Ok(())
    }

    /// Flush any buffered state (appends already flush; this is for
    /// callers that want an explicit barrier).
    ///
    /// # Errors
    /// Propagates the underlying `sync_data` error.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Append one record, then read it back and verify the frame — the
    /// validated-commit primitive: `Ok(true)` means the record is durable
    /// and intact; `Ok(false)` means the (injected) `fault` damaged or
    /// lost it, in which case the log has already been repaired back to
    /// its pre-append state so the caller can refuse the commit and keep
    /// serving the previous generation.
    ///
    /// # Errors
    /// Propagates I/O errors from the append, read-back, or repair.
    pub fn append_verified(
        &mut self,
        payload: &[u8],
        fault: Option<DiskFault>,
    ) -> io::Result<bool> {
        let start = self.file.seek(SeekFrom::End(0))?;
        self.append_faulty(payload, fault)?;
        // Read the frame back from where it should have landed.
        let intact = (|| -> io::Result<bool> {
            self.file.seek(SeekFrom::Start(start))?;
            let mut frame = [0u8; FRAME_LEN];
            if self.file.read_exact(&mut frame).is_err() {
                return Ok(false);
            }
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
            let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            if len as usize != payload.len() {
                return Ok(false);
            }
            let mut got = vec![0u8; len as usize];
            if self.file.read_exact(&mut got).is_err() {
                return Ok(false);
            }
            Ok(crc32(&got) == stored_crc && got == payload)
        })()?;
        if intact && fault.is_some() {
            // The injected fault turned out harmless (e.g. a flip target
            // beyond a tiny record): the record is durable after all.
            self.records += 1;
        }
        if !intact {
            // Repair: truncate the damaged tail so the next append (and
            // any replay) sees a clean log ending at the last good record.
            self.file.set_len(start)?;
            self.file.sync_data()?;
            if fault.is_none() {
                // No injected fault yet the read-back mismatched: the
                // record the caller believes durable is gone. Surface it.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "WAL read-back verification failed without an injected fault",
                ));
            }
        }
        self.file.seek(SeekFrom::End(0))?;
        Ok(intact)
    }
}

/// Replay the log at `path` without opening it for appends: every intact
/// record in order, plus how much damaged tail (if any) follows them.
/// Read-only — the file is not repaired (use [`Wal::open`] for that).
///
/// # Errors
/// `InvalidData` on a bad header; other I/O errors propagated.
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut header = [0u8; HEADER_LEN as usize];
    if file_len < HEADER_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "WAL shorter than its header",
        ));
    }
    file.read_exact(&mut header)?;
    if &header[..4] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a WAL: bad magic",
        ));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported WAL version {version}"),
        ));
    }
    let mut records = Vec::new();
    let mut valid_len = HEADER_LEN;
    let mut frame = [0u8; FRAME_LEN];
    loop {
        let remaining = file_len - valid_len;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_LEN as u64 {
            // Torn frame header at the tail.
            break;
        }
        file.read_exact(&mut frame)?;
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN || u64::from(len) > remaining - FRAME_LEN as u64 {
            // Corrupt or torn length field: everything from here on is
            // unreadable.
            break;
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != stored_crc {
            // Bit rot inside this record: it and everything after it are
            // untrusted (a later record's framing could itself be part of
            // the damage).
            break;
        }
        valid_len += (FRAME_LEN + payload.len()) as u64;
        records.push(payload);
    }
    Ok(WalReplay {
        records,
        valid_len,
        dropped_bytes: file_len - valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "amdgcnn-wal-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join("log.wal")
    }

    #[test]
    fn append_and_replay_round_trips() {
        let path = scratch("roundtrip");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(b"first").expect("append");
        wal.append(b"").expect("append empty");
        wal.append(&[0xFFu8; 300]).expect("append large");
        assert_eq!(wal.records(), 3);
        let r = replay(&path).expect("replay");
        assert!(r.clean());
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0], b"first");
        assert!(r.records[1].is_empty());
        assert_eq!(r.records[2], vec![0xFFu8; 300]);
    }

    #[test]
    fn open_resumes_appending_after_replay() {
        let path = scratch("resume");
        {
            let mut wal = Wal::create(&path).expect("create");
            wal.append(b"one").expect("append");
        }
        let (mut wal, r) = Wal::open(&path).expect("open");
        assert_eq!(r.records.len(), 1);
        assert_eq!(wal.records(), 1);
        wal.append(b"two").expect("append");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn torn_write_drops_only_the_tail() {
        let path = scratch("torn");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(b"durable-record").expect("append");
        wal.append_faulty(b"torn-record", Some(DiskFault::TornWrite))
            .expect("faulty append reports success");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records, vec![b"durable-record".to_vec()]);
        assert!(!r.clean(), "torn tail must be reported");
        // Open repairs: the file shrinks back to the valid prefix and a
        // fresh append lands cleanly after it.
        let (mut wal, _) = Wal::open(&path).expect("open repairs");
        wal.append(b"after-repair").expect("append");
        let r = replay(&path).expect("replay");
        assert!(r.clean());
        assert_eq!(
            r.records,
            vec![b"durable-record".to_vec(), b"after-repair".to_vec()]
        );
    }

    #[test]
    fn bit_flip_is_caught_by_record_crc() {
        let path = scratch("flip");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(b"good").expect("append");
        wal.append_faulty(b"rotten-record", Some(DiskFault::BitFlip))
            .expect("faulty append");
        wal.append(b"unreachable").expect("append after rot");
        let r = replay(&path).expect("replay");
        // The flipped record *and* the good record after it are dropped:
        // nothing past the first CRC failure is trusted.
        assert_eq!(r.records, vec![b"good".to_vec()]);
        assert!(r.dropped_bytes > 0);
    }

    #[test]
    fn partial_flush_loses_the_record_cleanly() {
        let path = scratch("flush");
        let mut wal = Wal::create(&path).expect("create");
        wal.append(b"kept").expect("append");
        wal.append_faulty(b"lost", Some(DiskFault::PartialFlush))
            .expect("faulty append");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records, vec![b"kept".to_vec()]);
        assert!(r.clean(), "a never-written record leaves no damage");
    }

    #[test]
    fn bad_magic_is_invalid_data_not_a_crash() {
        let path = scratch("magic");
        std::fs::write(&path, b"NOTAWAL-but-long-enough").expect("write");
        let err = replay(&path).expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = Wal::open(&path).expect_err("open refuses too");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_length_field_ends_replay() {
        let path = scratch("oversize");
        {
            let mut wal = Wal::create(&path).expect("create");
            wal.append(b"ok").expect("append");
        }
        // Hand-append a frame whose length field claims more bytes than
        // exist (a torn length write).
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records, vec![b"ok".to_vec()]);
        assert_eq!(r.dropped_bytes, 8);
    }

    #[test]
    fn verified_append_detects_and_repairs_every_fault() {
        let path = scratch("verified");
        let mut wal = Wal::create(&path).expect("create");
        assert!(wal.append_verified(b"clean", None).expect("append"));
        for fault in [
            DiskFault::TornWrite,
            DiskFault::BitFlip,
            DiskFault::PartialFlush,
        ] {
            assert!(
                !wal.append_verified(b"doomed-record", Some(fault))
                    .expect("verified append"),
                "{fault:?} must be detected"
            );
            // The log is repaired in place: still clean, still appendable.
            let r = replay(&path).expect("replay");
            assert!(r.clean(), "{fault:?} left damage behind");
            assert_eq!(r.records, vec![b"clean".to_vec()]);
        }
        assert!(wal.append_verified(b"after", None).expect("append"));
        let r = replay(&path).expect("replay");
        assert_eq!(r.records, vec![b"clean".to_vec(), b"after".to_vec()]);
        assert_eq!(wal.records(), 2);
    }

    #[test]
    fn create_truncates_a_previous_log() {
        let path = scratch("trunc");
        {
            let mut wal = Wal::create(&path).expect("create");
            wal.append(b"old-life").expect("append");
        }
        let wal = Wal::create(&path).expect("re-create");
        assert_eq!(wal.records(), 0);
        let r = replay(&path).expect("replay");
        assert!(r.records.is_empty());
    }
}
