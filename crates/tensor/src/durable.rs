//! Crash-safe file persistence: CRC-32 integrity checksums and
//! write-to-temp → fsync → atomic-rename file replacement.
//!
//! Every on-disk artifact in this workspace (parameter checkpoints, model
//! artifacts, training-state snapshots) goes through [`write_atomic`], so a
//! crash at any instant leaves either the previous complete file or the new
//! complete file — never a half-written one — and the checksums written by
//! the callers let loaders detect the torn or bit-flipped files a broken
//! disk can still produce.
//!
//! Fault injection: [`write_atomic`] accepts an optional [`DiskFault`] that
//! deterministically simulates the three classic durability failures
//! (torn write, bit flip, partial flush). Recovery paths are tested against
//! these instead of real `kill -9`s, which keeps the tests deterministic.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) slicing-by-16 lookup
/// tables, built at compile time. Table 0 is the classic byte-at-a-time
/// table; table `k` folds a byte that sits `k` positions deeper into the
/// stream, letting [`crc32_update`] consume 16 bytes per step with 16
/// independent lookups — the same checksum, over an order of magnitude
/// faster. That throughput is on the hot path of every durable artifact
/// (checkpoints, the WAL, the sample store): a warm sample-store open is
/// one checksum sweep of the file, so CRC speed is open speed.
const CRC32_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 of `bytes` (IEEE, the checksum zlib/PNG use).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32: feed chunks through a running state. Start from
/// `0xFFFF_FFFF`, finish by XOR-ing with `0xFFFF_FFFF`. Uses
/// slicing-by-16 internally; bit-identical to the byte-at-a-time
/// definition for any chunking of the stream.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(16);
    for c in &mut chunks {
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]);
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]);
        crc = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][(a >> 24) as usize]
            ^ t[11][(b & 0xFF) as usize]
            ^ t[10][((b >> 8) & 0xFF) as usize]
            ^ t[9][((b >> 16) & 0xFF) as usize]
            ^ t[8][(b >> 24) as usize]
            ^ t[7][(d & 0xFF) as usize]
            ^ t[6][((d >> 8) & 0xFF) as usize]
            ^ t[5][((d >> 16) & 0xFF) as usize]
            ^ t[4][(d >> 24) as usize]
            ^ t[3][(e & 0xFF) as usize]
            ^ t[2][((e >> 8) & 0xFF) as usize]
            ^ t[1][((e >> 16) & 0xFF) as usize]
            ^ t[0][(e >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// A writer adapter that maintains two running CRC-32 states over
/// everything written: a whole-stream checksum and a resettable section
/// checksum (for per-record integrity footers inside one file).
pub struct CrcWriter<W> {
    inner: W,
    total: u32,
    section: u32,
}

impl<W: Write> CrcWriter<W> {
    /// Wrap `inner`, both checksums fresh.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            total: 0xFFFF_FFFF,
            section: 0xFFFF_FFFF,
        }
    }

    /// Finalized CRC over every byte written so far.
    pub fn total_crc(&self) -> u32 {
        self.total ^ 0xFFFF_FFFF
    }

    /// Finalized CRC over bytes written since the last
    /// [`reset_section`](Self::reset_section).
    pub fn section_crc(&self) -> u32 {
        self.section ^ 0xFFFF_FFFF
    }

    /// Start a fresh section checksum.
    pub fn reset_section(&mut self) {
        self.section = 0xFFFF_FFFF;
    }

    /// Write `bytes` to the inner writer *without* folding them into either
    /// checksum — for writing the checksum values themselves.
    pub fn write_unchecked(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.total = crc32_update(self.total, &buf[..n]);
        self.section = crc32_update(self.section, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter mirroring [`CrcWriter`]: maintains whole-stream and
/// per-section CRC-32 states over everything read, so loaders can verify
/// the checksums the writer appended.
pub struct CrcReader<R> {
    inner: R,
    total: u32,
    section: u32,
}

impl<R: io::Read> CrcReader<R> {
    /// Wrap `inner`, both checksums fresh.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            total: 0xFFFF_FFFF,
            section: 0xFFFF_FFFF,
        }
    }

    /// Finalized CRC over every byte read so far.
    pub fn total_crc(&self) -> u32 {
        self.total ^ 0xFFFF_FFFF
    }

    /// Finalized CRC over bytes read since the last
    /// [`reset_section`](Self::reset_section).
    pub fn section_crc(&self) -> u32 {
        self.section ^ 0xFFFF_FFFF
    }

    /// Start a fresh section checksum.
    pub fn reset_section(&mut self) {
        self.section = 0xFFFF_FFFF;
    }

    /// Read exactly `buf.len()` bytes *without* folding them into either
    /// checksum — for reading stored checksum values.
    pub fn read_exact_unchecked(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)
    }
}

impl<R: io::Read> io::Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.total = crc32_update(self.total, &buf[..n]);
        self.section = crc32_update(self.section, &buf[..n]);
        Ok(n)
    }
}

/// A durability failure [`write_atomic`] can simulate, modelling what a
/// crash or a misbehaving disk does to an in-flight file write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The rename happened but only a prefix of the data reached the disk:
    /// the file at the destination is truncated mid-record. Loaders must
    /// detect this and fall back to the previous generation.
    TornWrite,
    /// All bytes arrived but one bit flipped in flight. Only a checksum can
    /// catch this.
    BitFlip,
    /// The process died after writing part of the temp file and before the
    /// rename: the destination never appears, the previous generation stays
    /// live, and a stale `.tmp` file is left behind.
    PartialFlush,
}

/// Extension a pending write carries until its atomic rename.
pub const TMP_EXTENSION: &str = "tmp";

/// Write `bytes` to `path` crash-safely: write to `path.tmp` in the same
/// directory, fsync the file, rename over `path`, then fsync the directory
/// so the rename itself is durable. At no instant does `path` hold a
/// partially written file (absent injected faults).
///
/// `fault` deterministically simulates a durability failure instead:
/// - [`DiskFault::TornWrite`] renames a file holding only the first half of
///   `bytes` (a crash racing writeback);
/// - [`DiskFault::BitFlip`] renames the full content with one bit flipped
///   in the middle byte;
/// - [`DiskFault::PartialFlush`] writes half of `bytes` to the temp file
///   and never renames (a crash before commit).
///
/// # Errors
/// Propagates any I/O error from create/write/sync/rename.
pub fn write_atomic(path: &Path, bytes: &[u8], fault: Option<DiskFault>) -> io::Result<()> {
    let tmp = tmp_path(path);
    let (payload, rename): (Vec<u8>, bool) = match fault {
        None => (bytes.to_vec(), true),
        Some(DiskFault::TornWrite) => (bytes[..bytes.len() / 2].to_vec(), true),
        Some(DiskFault::BitFlip) => {
            let mut corrupted = bytes.to_vec();
            if let Some(b) = corrupted.get_mut(bytes.len() / 2) {
                *b ^= 0x01;
            }
            (corrupted, true)
        }
        Some(DiskFault::PartialFlush) => (bytes[..bytes.len() / 2].to_vec(), false),
    };
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&payload)?;
        f.sync_all()?;
    }
    if rename {
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
    }
    Ok(())
}

/// The temp-file path a pending [`write_atomic`] to `path` uses.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".");
    name.push(TMP_EXTENSION);
    path.with_file_name(name)
}

/// Fsync the directory containing `path` so a just-committed rename
/// survives power loss. Best-effort: directory fsync is not supported on
/// every platform, and a failure here cannot un-rename the file.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = OpenOptions::new().read(true).open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "amdgcnn-durable-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn sliced_crc_equals_bytewise_for_every_chunking() {
        // The slicing-by-8 fast path must be bit-identical to the
        // byte-at-a-time definition regardless of how the stream is cut
        // (exercises every remainder length 0..8).
        let data: Vec<u8> = (0..97u32).map(|i| (i.wrapping_mul(31) ^ 0xA5) as u8).collect();
        let bytewise = {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in &data {
                crc = crc32_update(crc, &[b]);
            }
            crc ^ 0xFFFF_FFFF
        };
        for chunk in 1..=data.len() {
            let mut state = 0xFFFF_FFFFu32;
            for c in data.chunks(chunk) {
                state = crc32_update(state, c);
            }
            assert_eq!(state ^ 0xFFFF_FFFF, bytewise, "chunk size {chunk}");
        }
        assert_eq!(crc32(&data), bytewise);
    }

    #[test]
    fn streaming_crc_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut state = 0xFFFF_FFFFu32;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn crc_writer_sections_and_total() {
        let mut w = CrcWriter::new(Vec::new());
        w.write_all(b"aaaa").expect("write");
        let s1 = w.section_crc();
        w.reset_section();
        w.write_all(b"bbbb").expect("write");
        assert_eq!(s1, crc32(b"aaaa"));
        assert_eq!(w.section_crc(), crc32(b"bbbb"));
        assert_eq!(w.total_crc(), crc32(b"aaaabbbb"));
        assert_eq!(w.into_inner(), b"aaaabbbb".to_vec());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = scratch_dir("replace");
        let path = dir.join("file.bin");
        write_atomic(&path, b"generation-1", None).expect("write");
        write_atomic(&path, b"generation-2", None).expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"generation-2");
        assert!(!tmp_path(&path).exists(), "tmp must be renamed away");
    }

    #[test]
    fn torn_write_truncates_but_renames() {
        let dir = scratch_dir("torn");
        let path = dir.join("file.bin");
        write_atomic(&path, b"0123456789", Some(DiskFault::TornWrite)).expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"01234");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let dir = scratch_dir("flip");
        let path = dir.join("file.bin");
        let data = b"0123456789".to_vec();
        write_atomic(&path, &data, Some(DiskFault::BitFlip)).expect("write");
        let got = fs::read(&path).expect("read");
        assert_eq!(got.len(), data.len());
        let flipped: u32 = got
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn partial_flush_leaves_previous_file_live() {
        let dir = scratch_dir("flush");
        let path = dir.join("file.bin");
        write_atomic(&path, b"good", None).expect("write");
        write_atomic(&path, b"doomed-write", Some(DiskFault::PartialFlush)).expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"good", "rename never ran");
        assert!(tmp_path(&path).exists(), "stale tmp is left behind");
    }
}
