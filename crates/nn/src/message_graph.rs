//! The unified message-passing view: one [`MessageGraph`] serves every
//! layer family, one [`GraphLayer`] trait gives them a common forward
//! shape, and one [`BlockDiagGraph`] packs many small subgraphs into a
//! single sparse forward.
//!
//! Before this module the three conv layers each demanded their own
//! operand — `GcnConv` a normalized `CsrMatrix`, `GatConv` an `EdgeIndex`
//! with a separate edge-attribute `Var`, `RgcnConv` relation-grouped
//! message lists — so `PreparedSample` carried three parallel encodings of
//! the same subgraph and callers matched on the layer family. A
//! `MessageGraph` is built once per subgraph and carries everything any
//! layer needs:
//!
//! * the message CSR ([`CsrGraph`]: undirected edges expanded to two
//!   directed messages plus one self-loop per node, grouped by
//!   destination),
//! * per-destination segment table (attention softmax),
//! * per-message provenance (originating undirected edge, relation type),
//! * per-message expanded edge attributes,
//! * lazily cached per-message weight vectors (GCN symmetric norm,
//!   R-GCN per-relation in-degree norms).
//!
//! Layers consume it through the g-SpMM / g-SDDMM tape ops, so a forward
//! pass is a handful of large sparse kernel calls instead of per-edge
//! gather/concat chains.

use amdgcnn_tensor::{CsrGraph, Matrix, ParamStore, Tape, Var};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Unified message-passing operand: CSR topology + provenance + edge
/// attributes + cached normalization weights. Cheap to clone (everything
/// heavy is behind `Arc`).
#[derive(Debug, Clone)]
pub struct MessageGraph {
    num_nodes: usize,
    num_edges: usize,
    csr: Arc<CsrGraph>,
    segments: Arc<Vec<(usize, usize)>>,
    /// Originating undirected edge per message (`None` for self-loops).
    orig_edge: Arc<Vec<Option<usize>>>,
    /// Relation type per message (`None` for self-loops).
    rel: Arc<Vec<Option<u16>>>,
    /// Per-message edge attributes `[M, edge_dim]` (self-loop rows zero).
    edge_attrs: EdgeAttrSource,
    /// Cached GCN symmetric-norm weights `d^{-1/2}(dst)·d^{-1/2}(src)`.
    gcn_w: OnceLock<Arc<Vec<f32>>>,
    /// Cached per-relation weight vectors `1/|N_r(dst)|` (self-loops 0).
    rel_w: OnceLock<Arc<RelationWeights>>,
}

/// Per-relation message weights: for each relation id, one weight per
/// message (`1/|N_r(dst)|` on that relation's messages, zero elsewhere).
pub type RelationWeights = Vec<(u16, Arc<Vec<f32>>)>;

/// Where a graph's per-message edge attributes come from: absent,
/// materialized `[M, edge_dim]`, or deferred — the batcher records the
/// parts' attribute matrices and concatenates them only when a layer
/// actually reads attributes, so attribute-blind minibatches (GCN) never
/// pay the multi-megabyte copy.
#[derive(Debug, Clone)]
enum EdgeAttrSource {
    None,
    Ready(Arc<Matrix>),
    Packed {
        width: usize,
        /// `(num_messages, attrs)` per packed part; attr-less parts
        /// contribute zero rows.
        parts: Vec<(usize, Option<Arc<Matrix>>)>,
        cache: OnceLock<Arc<Matrix>>,
    },
}

impl MessageGraph {
    /// Build from an untyped undirected edge list (all edges relation 0,
    /// no attributes). Each edge contributes two directed messages; every
    /// node gets a self-loop.
    pub fn from_undirected(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        let typed: Vec<(usize, usize, u16)> = edges.iter().map(|&(u, v)| (u, v, 0)).collect();
        Self::from_typed(num_nodes, &typed, None)
    }

    /// Build from a typed undirected edge list with optional
    /// per-undirected-edge attribute rows `[E, edge_dim]` (expanded to
    /// per-message rows here; self-loops get zero attributes).
    pub fn from_typed(
        num_nodes: usize,
        edges: &[(usize, usize, u16)],
        per_edge_attrs: Option<&Matrix>,
    ) -> Self {
        if let Some(ea) = per_edge_attrs {
            assert_eq!(
                ea.rows(),
                edges.len(),
                "edge attribute rows must match edge count"
            );
        }
        // (dst, src, orig_edge, rel); self-loops carry no edge or relation.
        let mut msgs: Vec<(usize, usize, Option<usize>, Option<u16>)> =
            Vec::with_capacity(edges.len() * 2 + num_nodes);
        for (idx, &(u, v, r)) in edges.iter().enumerate() {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range"
            );
            msgs.push((v, u, Some(idx), Some(r)));
            if u != v {
                msgs.push((u, v, Some(idx), Some(r)));
            }
        }
        for n in 0..num_nodes {
            msgs.push((n, n, None, None));
        }
        msgs.sort_unstable_by_key(|&(d, s, e, _)| (d, s, e));

        let pairs: Vec<(u32, u32)> = msgs
            .iter()
            .map(|&(d, s, ..)| (s as u32, d as u32))
            .collect();
        let csr = Arc::new(CsrGraph::from_messages(num_nodes, &pairs));
        let segments = Arc::new(csr.dst_segments());
        let edge_attrs = match per_edge_attrs {
            Some(ea) => {
                let mut out = Matrix::zeros(msgs.len(), ea.cols());
                for (m, &(_, _, orig, _)) in msgs.iter().enumerate() {
                    if let Some(e) = orig {
                        out.row_mut(m).copy_from_slice(ea.row(e));
                    }
                }
                EdgeAttrSource::Ready(Arc::new(out))
            }
            None => EdgeAttrSource::None,
        };
        Self {
            num_nodes,
            num_edges: edges.len(),
            csr,
            segments,
            orig_edge: Arc::new(msgs.iter().map(|&(_, _, e, _)| e).collect()),
            rel: Arc::new(msgs.iter().map(|&(_, _, _, r)| r).collect()),
            edge_attrs,
            gcn_w: OnceLock::new(),
            rel_w: OnceLock::new(),
        }
    }

    /// Rebuild from an already-sorted message list — the exact output of
    /// [`MessageGraph::from_typed`]'s sort, as captured by
    /// `csr().src_ids()` / `dst_ids()` / [`MessageGraph::orig_edge`].
    /// Everything here is a counting sort or a linear copy — no re-sort —
    /// which is what makes decoding a persisted sample substantially
    /// cheaper than re-tensorizing it.
    ///
    /// `pairs` are `(src, dst)` per message, grouped by non-decreasing
    /// `dst`; `orig` is the originating undirected edge per message, with
    /// `u32::MAX` marking a self-loop message. Relations and expanded
    /// per-message attributes are rederived from `edges` /
    /// `per_edge_attrs`, so the result is bit-identical to
    /// `from_typed(num_nodes, edges, per_edge_attrs)` whenever the message
    /// list was captured from it.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, decreasing destinations, a
    /// `pairs`/`orig` length mismatch, or an `orig` index past `edges` —
    /// callers deserializing untrusted bytes must validate first (the
    /// sample store CRC-guards records and still pre-validates before
    /// calling this).
    pub fn from_message_list(
        num_nodes: usize,
        edges: &[(usize, usize, u16)],
        pairs: &[(u32, u32)],
        orig: &[u32],
        per_edge_attrs: Option<&Matrix>,
    ) -> Self {
        if let Some(ea) = per_edge_attrs {
            assert_eq!(
                ea.rows(),
                edges.len(),
                "edge attribute rows must match edge count"
            );
        }
        assert_eq!(pairs.len(), orig.len(), "one origin per message");
        let csr = Arc::new(CsrGraph::from_messages(num_nodes, pairs));
        let segments = Arc::new(csr.dst_segments());
        let mut orig_edge: Vec<Option<usize>> = Vec::with_capacity(orig.len());
        let mut rel: Vec<Option<u16>> = Vec::with_capacity(orig.len());
        for &e in orig {
            if e == u32::MAX {
                orig_edge.push(None);
                rel.push(None);
            } else {
                assert!(
                    (e as usize) < edges.len(),
                    "message origin {e} out of range for {} edges",
                    edges.len()
                );
                orig_edge.push(Some(e as usize));
                rel.push(Some(edges[e as usize].2));
            }
        }
        let edge_attrs = match per_edge_attrs {
            Some(ea) => {
                let mut out = Matrix::zeros(orig.len(), ea.cols());
                for (m, o) in orig_edge.iter().enumerate() {
                    if let Some(e) = *o {
                        out.row_mut(m).copy_from_slice(ea.row(e));
                    }
                }
                EdgeAttrSource::Ready(Arc::new(out))
            }
            None => EdgeAttrSource::None,
        };
        Self {
            num_nodes,
            num_edges: edges.len(),
            csr,
            segments,
            orig_edge: Arc::new(orig_edge),
            rel: Arc::new(rel),
            edge_attrs,
            gcn_w: OnceLock::new(),
            rel_w: OnceLock::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of underlying undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed messages (two per edge + one self-loop per node).
    pub fn num_messages(&self) -> usize {
        self.csr.num_messages()
    }

    /// The message CSR consumed by the sparse kernels.
    pub fn csr(&self) -> &Arc<CsrGraph> {
        &self.csr
    }

    /// Per-destination `(start, end)` message segments (attention softmax).
    pub fn segments(&self) -> Arc<Vec<(usize, usize)>> {
        self.segments.clone()
    }

    /// Originating undirected edge per message (`None` for self-loops).
    pub fn orig_edge(&self) -> &[Option<usize>] {
        &self.orig_edge
    }

    /// Relation type per message (`None` for self-loops).
    pub fn relations(&self) -> &[Option<u16>] {
        &self.rel
    }

    /// Expanded per-message edge attributes, when the dataset has them.
    /// For a packed graph the concatenation is deferred to this first
    /// call (and cached), so minibatches whose layers never read
    /// attributes skip the copy entirely.
    pub fn edge_attrs(&self) -> Option<&Arc<Matrix>> {
        match &self.edge_attrs {
            EdgeAttrSource::None => None,
            EdgeAttrSource::Ready(a) => Some(a),
            EdgeAttrSource::Packed {
                width,
                parts,
                cache,
            } => Some(cache.get_or_init(|| {
                let total: usize = parts.iter().map(|(m, _)| m).sum();
                let mut data = Vec::with_capacity(total * width);
                for (m, a) in parts {
                    match a {
                        Some(a) => data.extend_from_slice(a.data()),
                        None => data.resize(data.len() + m * width, 0.0),
                    }
                }
                Arc::new(Matrix::from_vec(total, *width, data))
            })),
        }
    }

    /// GCN symmetric normalization per message:
    /// `w[m] = d^{-1/2}(dst[m]) · d^{-1/2}(src[m])` where the degree is the
    /// message in-degree (self-loop included — the `A + I` convention).
    /// Computed once and cached.
    pub fn gcn_weights(&self) -> Arc<Vec<f32>> {
        self.gcn_w
            .get_or_init(|| {
                let inv: Vec<f32> = (0..self.num_nodes)
                    .map(|n| {
                        let d = self.csr.in_degree(n);
                        if d > 0 {
                            1.0 / (d as f32).sqrt()
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let src = self.csr.src_ids();
                let dst = self.csr.dst_ids();
                Arc::new(
                    (0..self.num_messages())
                        .map(|m| inv[dst[m] as usize] * inv[src[m] as usize])
                        .collect(),
                )
            })
            .clone()
    }

    /// Per-relation R-GCN weight vectors, ascending by relation id:
    /// `w_r[m] = 1/|N_r(dst[m])|` for messages of relation `r`, zero
    /// elsewhere (self-loops carry no relation — the self-connection is a
    /// separate dense term). Computed once and cached.
    pub fn relation_weights(&self) -> Arc<RelationWeights> {
        self.rel_w
            .get_or_init(|| {
                let dst = self.csr.dst_ids();
                let mut indeg: BTreeMap<u16, Vec<u32>> = BTreeMap::new();
                for (m, r) in self.rel.iter().enumerate() {
                    if let Some(r) = *r {
                        indeg.entry(r).or_insert_with(|| vec![0u32; self.num_nodes])
                            [dst[m] as usize] += 1;
                    }
                }
                let groups = indeg
                    .into_iter()
                    .map(|(r, counts)| {
                        let w: Vec<f32> = self
                            .rel
                            .iter()
                            .enumerate()
                            .map(|(m, rr)| {
                                if *rr == Some(r) {
                                    1.0 / counts[dst[m] as usize] as f32
                                } else {
                                    0.0
                                }
                            })
                            .collect();
                        (r, Arc::new(w))
                    })
                    .collect();
                Arc::new(groups)
            })
            .clone()
    }

    /// Assemble directly from packed parts (the batcher's constructor).
    #[allow(clippy::too_many_arguments)]
    fn from_raw(
        num_nodes: usize,
        num_edges: usize,
        csr: Arc<CsrGraph>,
        orig_edge: Vec<Option<usize>>,
        rel: Vec<Option<u16>>,
        edge_attrs: EdgeAttrSource,
    ) -> Self {
        let segments = Arc::new(csr.dst_segments());
        Self {
            num_nodes,
            num_edges,
            csr,
            segments,
            orig_edge: Arc::new(orig_edge),
            rel: Arc::new(rel),
            edge_attrs,
            gcn_w: OnceLock::new(),
            rel_w: OnceLock::new(),
        }
    }
}

/// The one forward shape every message-passing layer implements. Layers
/// read whatever slice of the [`MessageGraph`] they understand — GCN its
/// normalization weights, GAT its segments and edge attributes, R-GCN its
/// relation weights — so model assembly and batching are family-agnostic.
pub trait GraphLayer: Send + Sync {
    /// One message-passing step: node features `[N, in]` → `[N, out]`.
    fn forward(&self, tape: &mut Tape, ps: &ParamStore, graph: &MessageGraph, h: Var) -> Var;

    /// Output feature width of the layer.
    fn output_width(&self) -> usize;
}

/// K variable-size subgraphs packed block-diagonally into one
/// [`MessageGraph`]: node ids and message ids of part `k` are shifted by
/// the offsets recorded here, and because the parts are disjoint every
/// per-destination reduction, segment softmax, and normalization weight is
/// bit-identical to the per-sample computation — a batched forward is a
/// handful of large kernel calls that reproduces K small forwards exactly.
#[derive(Debug, Clone)]
pub struct BlockDiagGraph {
    /// The packed graph (usable anywhere a per-sample graph is).
    pub graph: MessageGraph,
    /// Node offset per part, length `K + 1`.
    node_offsets: Vec<usize>,
    /// Message offset per part, length `K + 1`.
    msg_offsets: Vec<usize>,
}

impl BlockDiagGraph {
    /// Pack parts in order. Edge-attribute widths must agree across parts
    /// that carry attributes; attribute-less parts contribute zero rows
    /// when any part carries them.
    ///
    /// Packing is on the training hot path (the trainer re-packs every
    /// shuffled minibatch each epoch), so everything here is a linear copy
    /// or cheaper: the packed CSR comes from
    /// [`CsrGraph::concat_block_diag`] (no re-sort), the packed GCN norm
    /// cache is pre-filled from the per-part caches — block-diagonal
    /// packing preserves every in-degree, so the per-part weights
    /// concatenate bit-for-bit — and edge attributes are only *recorded*
    /// here; their concatenation is deferred until some layer reads them.
    pub fn pack(parts: &[&MessageGraph]) -> Self {
        let total_msgs: usize = parts.iter().map(|p| p.num_messages()).sum();
        let total_edges: usize = parts.iter().map(|p| p.num_edges()).sum();

        let mut node_offsets = Vec::with_capacity(parts.len() + 1);
        let mut msg_offsets = Vec::with_capacity(parts.len() + 1);
        let mut orig_edge: Vec<Option<usize>> = Vec::with_capacity(total_msgs);
        let mut rel: Vec<Option<u16>> = Vec::with_capacity(total_msgs);
        let mut gcn_w: Vec<f32> = Vec::with_capacity(total_msgs);

        let attr_width = parts
            .iter()
            .filter_map(|p| p.edge_attrs().map(|a| a.cols()))
            .next();
        if let Some(w) = attr_width {
            for p in parts {
                if let Some(a) = p.edge_attrs() {
                    assert_eq!(a.cols(), w, "edge-attribute widths differ across parts");
                }
            }
        }
        let attrs = match attr_width {
            Some(width) => EdgeAttrSource::Packed {
                width,
                parts: parts
                    .iter()
                    .map(|p| (p.num_messages(), p.edge_attrs().cloned()))
                    .collect(),
                cache: OnceLock::new(),
            },
            None => EdgeAttrSource::None,
        };

        let (mut node_off, mut msg_off, mut edge_off) = (0usize, 0usize, 0usize);
        for p in parts {
            node_offsets.push(node_off);
            msg_offsets.push(msg_off);
            orig_edge.extend(p.orig_edge().iter().map(|e| e.map(|i| i + edge_off)));
            rel.extend_from_slice(p.relations());
            gcn_w.extend_from_slice(&p.gcn_weights());
            node_off += p.num_nodes();
            msg_off += p.num_messages();
            edge_off += p.num_edges();
        }
        node_offsets.push(node_off);
        msg_offsets.push(msg_off);

        let csrs: Vec<&CsrGraph> = parts.iter().map(|p| p.csr().as_ref()).collect();
        let csr = Arc::new(CsrGraph::concat_block_diag(&csrs));
        let graph = MessageGraph::from_raw(node_off, total_edges, csr, orig_edge, rel, attrs);
        let _ = graph.gcn_w.set(Arc::new(gcn_w));
        Self {
            graph,
            node_offsets,
            msg_offsets,
        }
    }

    /// Number of packed parts.
    pub fn num_parts(&self) -> usize {
        self.node_offsets.len() - 1
    }

    /// Global node-id range of part `k`.
    pub fn node_range(&self, k: usize) -> std::ops::Range<usize> {
        self.node_offsets[k]..self.node_offsets[k + 1]
    }

    /// Global message-id range of part `k`.
    pub fn msg_range(&self, k: usize) -> std::ops::Range<usize> {
        self.msg_offsets[k]..self.msg_offsets[k + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::Reduce;

    #[test]
    fn message_graph_structure_matches_legacy_edge_index() {
        // Path 0-1-2: 2 edges → 4 directed messages + 3 self-loops.
        let g = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.num_messages(), 7);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.segments().len(), 3);
        // dst grouped; each segment covers that node's incoming messages.
        for (n, &(s, e)) in g.segments().iter().enumerate() {
            for m in s..e {
                assert_eq!(g.csr().dst_ids()[m] as usize, n);
            }
        }
        // Node 1 receives from 0, 2 and itself.
        let (s, e) = g.segments()[1];
        let mut srcs: Vec<u32> = (s..e).map(|m| g.csr().src_ids()[m]).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 1, 2]);
    }

    #[test]
    fn edge_attr_expansion_zeroes_self_loops() {
        let attrs = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let g = MessageGraph::from_typed(2, &[(0, 1, 0)], Some(&attrs));
        let ea = g.edge_attrs().expect("attrs");
        assert_eq!(ea.shape(), (4, 2));
        for (m, orig) in g.orig_edge().iter().enumerate() {
            match orig {
                Some(0) => assert_eq!(ea.row(m), &[1.0, -1.0]),
                None => assert_eq!(ea.row(m), &[0.0, 0.0]),
                other => panic!("unexpected orig edge {other:?}"),
            }
        }
    }

    #[test]
    fn gcn_weights_match_normalized_adjacency() {
        // 0-1-2 path; degrees with self-loops 2, 3, 2. Message 1→0 weight
        // must be 1/(√2·√3).
        let g = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        let w = g.gcn_weights();
        let src = g.csr().src_ids();
        let dst = g.csr().dst_ids();
        for m in 0..g.num_messages() {
            let expect = match (dst[m], src[m]) {
                (0, 0) | (2, 2) => 0.5,
                (1, 1) => 1.0 / 3.0,
                (0, 1) | (1, 0) | (1, 2) | (2, 1) => 1.0 / (2.0f32 * 3.0).sqrt(),
                other => panic!("unexpected message {other:?}"),
            };
            assert!((w[m] - expect).abs() < 1e-6, "message {m}");
        }
        // Aggregating a constant vector with these weights reproduces the
        // Â row sums.
        let ones = Matrix::ones(3, 1);
        let row_sums = g.csr().spmm_ew(&w, &ones);
        let edge_w = 1.0 / (2.0f32 * 3.0).sqrt();
        let expect = [0.5 + edge_w, 1.0 / 3.0 + 2.0 * edge_w, 0.5 + edge_w];
        for (n, &e) in expect.iter().enumerate() {
            assert!((row_sums.get(n, 0) - e).abs() < 1e-6, "row {n}");
        }
    }

    #[test]
    fn relation_weights_group_and_normalize() {
        // Edges (0,1,r0), (1,2,r0), (0,2,r1): node 1 has two incoming r0
        // messages → weight 1/2 each.
        let g = MessageGraph::from_typed(3, &[(0, 1, 0), (1, 2, 0), (0, 2, 1)], None);
        let rw = g.relation_weights();
        assert_eq!(rw.len(), 2);
        assert_eq!(rw[0].0, 0);
        assert_eq!(rw[1].0, 1);
        let dst = g.csr().dst_ids();
        for (m, r) in g.relations().iter().enumerate() {
            match r {
                Some(0) => {
                    let expect = if dst[m] == 1 { 0.5 } else { 1.0 };
                    assert_eq!(rw[0].1[m], expect, "r0 message {m}");
                    assert_eq!(rw[1].1[m], 0.0);
                }
                Some(1) => {
                    assert_eq!(rw[1].1[m], 1.0);
                    assert_eq!(rw[0].1[m], 0.0);
                }
                None => {
                    assert_eq!(rw[0].1[m], 0.0, "self-loops carry no relation");
                    assert_eq!(rw[1].1[m], 0.0);
                }
                other => panic!("unexpected relation {other:?}"),
            }
        }
    }

    #[test]
    fn block_diag_pack_offsets_and_weights() {
        let a = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        let b = MessageGraph::from_undirected(2, &[(0, 1)]);
        let packed = BlockDiagGraph::pack(&[&a, &b]);
        assert_eq!(packed.num_parts(), 2);
        assert_eq!(packed.graph.num_nodes(), 5);
        assert_eq!(
            packed.graph.num_messages(),
            a.num_messages() + b.num_messages()
        );
        assert_eq!(packed.node_range(1), 3..5);
        assert_eq!(packed.msg_range(0), 0..a.num_messages());
        // Per-part normalization weights are reproduced bit-for-bit.
        let wp = packed.graph.gcn_weights();
        let wa = a.gcn_weights();
        let wb = b.gcn_weights();
        assert_eq!(&wp[..wa.len()], &wa[..]);
        assert_eq!(&wp[wa.len()..], &wb[..]);
        // Aggregation over the packed graph matches per-part aggregation.
        let ha = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let hb = Matrix::from_fn(2, 2, |r, c| (r + c) as f32 * 0.5);
        let hp = Matrix::concat_rows(&[&ha, &hb]);
        let agg = packed.graph.csr().aggregate(&hp, Reduce::Sum);
        let agg_a = a.csr().aggregate(&ha, Reduce::Sum);
        let agg_b = b.csr().aggregate(&hb, Reduce::Sum);
        assert_eq!(agg.row(1), agg_a.row(1));
        assert_eq!(agg.row(4), agg_b.row(1));
    }

    #[test]
    fn block_diag_handles_empty_and_isolated_parts() {
        let empty = MessageGraph::from_undirected(0, &[]);
        let isolated = MessageGraph::from_undirected(2, &[]); // self-loops only
        let normal = MessageGraph::from_undirected(2, &[(0, 1)]);
        let packed = BlockDiagGraph::pack(&[&empty, &isolated, &normal]);
        assert_eq!(packed.graph.num_nodes(), 4);
        assert_eq!(packed.node_range(0), 0..0);
        assert_eq!(packed.node_range(1), 0..2);
        // Isolated nodes keep unit self-loop weight in the GCN norm.
        let w = packed.graph.gcn_weights();
        assert_eq!(w[packed.msg_range(1)][0], 1.0);
        // Parts contribute 0, 2, and 4 messages respectively.
        assert_eq!(packed.graph.num_messages(), 2 + 4);
    }

    #[test]
    fn from_message_list_is_bit_identical_to_from_typed() {
        // Mixed shape: a self-loop edge, a repeated pair, typed relations,
        // and per-edge attributes — everything the sort has to order.
        let edges = [(0usize, 1usize, 2u16), (1, 2, 0), (2, 2, 1), (0, 1, 1)];
        let attrs = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
        let built = MessageGraph::from_typed(4, &edges, Some(&attrs));

        // Capture exactly what the store persists per message.
        let pairs: Vec<(u32, u32)> = (0..built.num_messages())
            .map(|m| (built.csr().src_ids()[m], built.csr().dst_ids()[m]))
            .collect();
        let orig: Vec<u32> = built
            .orig_edge()
            .iter()
            .map(|o| o.map_or(u32::MAX, |e| e as u32))
            .collect();
        let rebuilt = MessageGraph::from_message_list(4, &edges, &pairs, &orig, Some(&attrs));

        assert_eq!(rebuilt.num_nodes(), built.num_nodes());
        assert_eq!(rebuilt.num_edges(), built.num_edges());
        assert_eq!(rebuilt.csr().src_ids(), built.csr().src_ids());
        assert_eq!(rebuilt.csr().dst_ids(), built.csr().dst_ids());
        assert_eq!(rebuilt.orig_edge(), built.orig_edge());
        assert_eq!(rebuilt.relations(), built.relations());
        assert_eq!(&*rebuilt.segments(), &*built.segments());
        assert_eq!(
            rebuilt.edge_attrs().map(|a| a.data()),
            built.edge_attrs().map(|a| a.data())
        );
        assert_eq!(&*rebuilt.gcn_weights(), &*built.gcn_weights());
        let (rw_a, rw_b) = (rebuilt.relation_weights(), built.relation_weights());
        assert_eq!(rw_a.len(), rw_b.len());
        for ((ra, wa), (rb, wb)) in rw_a.iter().zip(rw_b.iter()) {
            assert_eq!(ra, rb);
            assert_eq!(&**wa, &**wb);
        }
    }

    #[test]
    fn pack_mixes_attr_and_attrless_parts() {
        let attrs = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let with = MessageGraph::from_typed(2, &[(0, 1, 0)], Some(&attrs));
        let without = MessageGraph::from_undirected(2, &[(0, 1)]);
        let packed = BlockDiagGraph::pack(&[&with, &without]);
        let ea = packed.graph.edge_attrs().expect("width adopted");
        assert_eq!(ea.shape(), (packed.graph.num_messages(), 3));
        // The attr-less part's rows are zero.
        for m in packed.msg_range(1) {
            assert_eq!(ea.row(m), &[0.0, 0.0, 0.0]);
        }
    }
}
