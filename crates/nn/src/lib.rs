//! # amdgcnn-nn
//!
//! Neural-network building blocks over `amdgcnn-tensor`: dense layers, GCN
//! and GAT (with edge attributes) message passing, the DGCNN read-out
//! convolutions, dropout, activations, and first-order optimizers.

#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod dropout;
pub mod gat;
pub mod gcn;
pub mod linear;
pub mod mlp;
pub mod optim;
pub mod rgcn;

pub use activation::Activation;
pub use conv::Conv1dLayer;
pub use dropout::Dropout;
pub use gat::{EdgeIndex, GatConfig, GatConv};
pub use gcn::{GcnAdjacency, GcnConv};
pub use linear::Linear;
pub use mlp::Mlp;
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use rgcn::{RelationalEdges, RgcnConfig, RgcnConv};
