//! Relational GCN layer (Schlichtkrull et al., 2018) with basis
//! decomposition — the classic knowledge-graph message-passing scheme,
//! included as an extension baseline: it consumes *relation identities*
//! (one weight matrix per relation) where AM-DGCNN consumes relation
//! *attribute vectors* through attention.
//!
//! ```text
//! h'_i = W_self·h_i + b + Σ_r Σ_{j ∈ N_r(i)} (1/|N_r(i)|) · W_r·h_j
//! W_r  = Σ_b  C[r,b] · B_b          (basis decomposition)
//! ```

use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Directed messages grouped by relation, with per-destination in-degree
/// normalization — shared by every R-GCN layer of a forward pass.
#[derive(Debug, Clone)]
pub struct RelationalEdges {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Message groups, one per relation present.
    pub groups: Vec<RelGroup>,
}

/// Messages of one relation.
#[derive(Debug, Clone)]
pub struct RelGroup {
    /// Relation id.
    pub relation: u16,
    /// Source node per message.
    pub src: Arc<Vec<usize>>,
    /// Destination node per message.
    pub dst: Arc<Vec<usize>>,
    /// `1/|N_r(dst)|` per message.
    pub norm: Matrix,
}

impl RelationalEdges {
    /// Build from an undirected typed edge list; each edge contributes a
    /// message in both directions under its relation.
    pub fn from_undirected(num_nodes: usize, edges: &[(usize, usize, u16)]) -> Self {
        use std::collections::BTreeMap;
        let mut by_rel: BTreeMap<u16, Vec<(usize, usize)>> = BTreeMap::new();
        for &(u, v, r) in edges {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range"
            );
            by_rel.entry(r).or_default().push((u, v));
            if u != v {
                by_rel.entry(r).or_default().push((v, u));
            }
        }
        let groups = by_rel
            .into_iter()
            .map(|(relation, msgs)| {
                let mut indeg = vec![0usize; num_nodes];
                for &(_, d) in &msgs {
                    indeg[d] += 1;
                }
                let src: Vec<usize> = msgs.iter().map(|&(s, _)| s).collect();
                let dst: Vec<usize> = msgs.iter().map(|&(_, d)| d).collect();
                let norm = Matrix::from_vec(
                    msgs.len(),
                    1,
                    dst.iter().map(|&d| 1.0 / indeg[d] as f32).collect(),
                );
                RelGroup {
                    relation,
                    src: Arc::new(src),
                    dst: Arc::new(dst),
                    norm,
                }
            })
            .collect();
        Self { num_nodes, groups }
    }

    /// Total directed message count.
    pub fn num_messages(&self) -> usize {
        self.groups.iter().map(|g| g.src.len()).sum()
    }
}

/// R-GCN layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct RgcnConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
    /// Number of relations the coefficient table covers.
    pub num_relations: usize,
    /// Number of basis matrices (≤ num_relations keeps parameters bounded).
    pub num_bases: usize,
}

/// One relational graph-convolution layer.
#[derive(Debug, Clone)]
pub struct RgcnConv {
    /// Layer configuration.
    pub cfg: RgcnConfig,
    /// Stacked basis matrices `[num_bases, in*out]`.
    bases: ParamId,
    /// Relation coefficients `[num_relations, num_bases]`.
    coeffs: ParamId,
    /// Self-connection weight `[in, out]`.
    self_weight: ParamId,
    /// Bias `[1, out]`.
    bias: ParamId,
}

impl RgcnConv {
    /// Register parameters for a new layer.
    ///
    /// # Panics
    /// Panics on a zero basis/relation count.
    pub fn new(name: &str, cfg: RgcnConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(cfg.num_bases >= 1, "R-GCN needs at least one basis");
        assert!(cfg.num_relations >= 1, "R-GCN needs at least one relation");
        let bases = ps.register(
            format!("{name}.bases"),
            init::xavier_uniform(cfg.num_bases, cfg.in_dim * cfg.out_dim, rng),
        );
        let coeffs = ps.register(
            format!("{name}.coeffs"),
            init::xavier_uniform(cfg.num_relations, cfg.num_bases, rng),
        );
        let self_weight = ps.register(
            format!("{name}.self_weight"),
            init::xavier_uniform(cfg.in_dim, cfg.out_dim, rng),
        );
        let bias = ps.register(format!("{name}.bias"), Matrix::zeros(1, cfg.out_dim));
        Self {
            cfg,
            bases,
            coeffs,
            self_weight,
            bias,
        }
    }

    /// Forward pass over grouped relational messages.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamStore, re: &RelationalEdges, h: Var) -> Var {
        debug_assert_eq!(
            tape.shape(h).0,
            re.num_nodes,
            "RgcnConv: node count mismatch"
        );
        debug_assert_eq!(
            tape.shape(h).1,
            self.cfg.in_dim,
            "RgcnConv: input width mismatch"
        );
        let bases = tape.param(self.bases, ps.get(self.bases).clone());
        let coeffs = tape.param(self.coeffs, ps.get(self.coeffs).clone());

        // Self connection.
        let ws = tape.param(self.self_weight, ps.get(self.self_weight).clone());
        let mut out = tape.matmul(h, ws);

        for g in &re.groups {
            debug_assert!(
                (g.relation as usize) < self.cfg.num_relations,
                "relation {} outside coefficient table",
                g.relation
            );
            // W_r = C[r, :] · bases, reshaped to [in, out].
            let crow = tape.gather_rows(coeffs, Arc::new(vec![g.relation as usize]));
            let wr_flat = tape.matmul(crow, bases);
            let wr = tape.reshape(wr_flat, self.cfg.in_dim, self.cfg.out_dim);
            let hw = tape.matmul(h, wr);
            let msg = tape.gather_rows(hw, g.src.clone());
            let norm = tape.leaf(g.norm.clone());
            let msg = tape.mul_col_broadcast(msg, norm);
            let agg = tape.scatter_add_rows(msg, g.dst.clone(), re.num_nodes);
            out = tape.add(out, agg);
        }
        let b = tape.param(self.bias, ps.get(self.bias).clone());
        tape.add_row_broadcast(out, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    fn cfg(in_dim: usize, out_dim: usize) -> RgcnConfig {
        RgcnConfig {
            in_dim,
            out_dim,
            num_relations: 3,
            num_bases: 2,
        }
    }

    #[test]
    fn relational_edges_group_and_normalize() {
        // Edges: (0,1,r0), (1,2,r0), (0,2,r1).
        let re = RelationalEdges::from_undirected(3, &[(0, 1, 0), (1, 2, 0), (0, 2, 1)]);
        assert_eq!(re.groups.len(), 2);
        assert_eq!(re.num_messages(), 6);
        let g0 = &re.groups[0];
        assert_eq!(g0.relation, 0);
        // Node 1 receives two r0 messages → each normalized by 1/2.
        for (i, &d) in g0.dst.iter().enumerate() {
            let expect = if d == 1 { 0.5 } else { 1.0 };
            assert_eq!(g0.norm.get(i, 0), expect, "message {i} to node {d}");
        }
    }

    #[test]
    fn forward_shapes_and_isolated_nodes() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = RgcnConv::new("r", cfg(4, 5), &mut ps, &mut rng);
        let re = RelationalEdges::from_undirected(4, &[(0, 1, 0), (1, 2, 2)]); // node 3 isolated
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::from_fn(4, 4, |r, c| (r + c) as f32 * 0.2));
        let out = layer.forward(&mut tape, &ps, &re, h);
        assert_eq!(tape.shape(out), (4, 5));
        // Node 3 gets only the self connection + bias.
        let expect = amdgcnn_tensor::matmul::matmul(
            &tape.value(h).gather_rows(&[3]),
            ps.get(layer.self_weight),
        );
        for c in 0..5 {
            let want = expect.get(0, c) + ps.get(layer.bias).get(0, c);
            assert!((tape.value(out).get(3, c) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn different_relations_use_different_weights() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = RgcnConv::new("r", cfg(3, 3), &mut ps, &mut rng);
        let h = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.4 - 0.5);
        let run = |rel: u16| {
            let re = RelationalEdges::from_undirected(2, &[(0, 1, rel)]);
            let mut tape = Tape::new();
            let hv = tape.leaf(h.clone());
            let out = layer.forward(&mut tape, &ps, &re, hv);
            tape.value(out).clone()
        };
        assert!(
            run(0).max_abs_diff(&run(1)) > 1e-4,
            "relation identity must change the output"
        );
    }

    #[test]
    fn gradients_check_out() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = RgcnConv::new("r", cfg(2, 2), &mut ps, &mut rng);
        let re = RelationalEdges::from_undirected(3, &[(0, 1, 0), (1, 2, 1), (0, 2, 2)]);
        let input = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.37).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &re, h);
                let act = tape.tanh(out);
                let sq = tape.mul(act, act);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn basis_decomposition_bounds_parameters() {
        // Parameter count grows with bases, not relations.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let many_rel = RgcnConfig {
            in_dim: 8,
            out_dim: 8,
            num_relations: 51,
            num_bases: 4,
        };
        let _ = RgcnConv::new("r", many_rel, &mut ps, &mut rng);
        let basis_params = 4 * 64 + 51 * 4 + 64 + 8; // bases + coeffs + self + bias
        assert_eq!(ps.num_elements(), basis_params);
        // Full per-relation weights would need 51 * 64 = 3264 just for W_r.
        assert!(ps.num_elements() < 51 * 64);
    }
}
