//! Graph Attention Network layer (Velickovic et al., 2018) extended with
//! edge attributes — the message passing AM-DGCNN substitutes for GCN.
//!
//! For a directed message `j → i` with edge attribute `x_ij` the attention
//! logit is
//!
//! ```text
//! e_ij = LeakyReLU( aᵀ [ W·h_i ‖ W·h_j ‖ W_e·x_ij ] )
//! ```
//!
//! normalized with a softmax over each destination's incoming messages.
//! The weighted message **includes the transformed edge attribute**:
//! `h'_i = Σ_j α_ij (W·h_j + W_e·x_ij)` — this is the paper's
//! "incorporating link information into node transformations" (§II-A).
//! Gating attention alone would not suffice: on a graph with homogeneous
//! node features (WordNet-18) an attention-weighted sum of identical
//! neighbor vectors is invariant to the weights, so the edge classes would
//! be unreadable no matter how attention uses them. Self-loops are added so
//! every node attends to itself (with a zero edge attribute, matching the
//! "no relation" encoding). Multi-head attention concatenates (hidden
//! layers) or averages (final layer) the per-head outputs.

use crate::activation::Activation;
use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Directed message structure of a (sub)graph, shared by every GAT layer of
/// a forward pass: messages sorted by destination with contiguous
/// per-destination segments for the attention softmax.
#[derive(Debug, Clone)]
pub struct EdgeIndex {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Source node per directed message.
    pub src: Arc<Vec<usize>>,
    /// Destination node per directed message (non-decreasing).
    pub dst: Arc<Vec<usize>>,
    /// Original undirected-edge index per message (`None` for self-loops).
    pub orig_edge: Vec<Option<usize>>,
    /// `(start, end)` message ranges per destination segment.
    pub segments: Arc<Vec<(usize, usize)>>,
}

impl EdgeIndex {
    /// Build from an undirected edge list, adding a self-loop per node.
    /// Each undirected edge yields two directed messages.
    pub fn from_undirected(num_nodes: usize, edges: &[(usize, usize)]) -> Self {
        // (dst, src, orig_edge) triples; self-loops carry no original edge.
        let mut msgs: Vec<(usize, usize, Option<usize>)> =
            Vec::with_capacity(edges.len() * 2 + num_nodes);
        for (idx, &(u, v)) in edges.iter().enumerate() {
            assert!(
                u < num_nodes && v < num_nodes,
                "edge ({u},{v}) out of range"
            );
            msgs.push((v, u, Some(idx)));
            if u != v {
                msgs.push((u, v, Some(idx)));
            }
        }
        for n in 0..num_nodes {
            msgs.push((n, n, None));
        }
        msgs.sort_unstable_by_key(|&(d, s, e)| (d, s, e));

        let mut segments = Vec::with_capacity(num_nodes);
        let mut start = 0usize;
        for n in 0..num_nodes {
            let mut end = start;
            while end < msgs.len() && msgs[end].0 == n {
                end += 1;
            }
            segments.push((start, end));
            start = end;
        }

        Self {
            num_nodes,
            src: Arc::new(msgs.iter().map(|&(_, s, _)| s).collect()),
            dst: Arc::new(msgs.iter().map(|&(d, _, _)| d).collect()),
            orig_edge: msgs.iter().map(|&(_, _, e)| e).collect(),
            segments: Arc::new(segments),
        }
    }

    /// Number of directed messages (including self-loops).
    pub fn num_messages(&self) -> usize {
        self.src.len()
    }

    /// Expand per-undirected-edge attribute rows into per-message rows
    /// (self-loops get all-zero attributes).
    pub fn expand_edge_attrs(&self, edge_attrs: &Matrix) -> Matrix {
        let cols = edge_attrs.cols();
        let mut out = Matrix::zeros(self.num_messages(), cols);
        for (m, orig) in self.orig_edge.iter().enumerate() {
            if let Some(e) = orig {
                out.row_mut(m).copy_from_slice(edge_attrs.row(*e));
            }
        }
        out
    }
}

/// Parameters of one attention head.
#[derive(Debug, Clone)]
struct GatHead {
    weight: ParamId,
    edge_weight: Option<ParamId>,
    attn: ParamId,
    bias: ParamId,
}

/// Configuration of a [`GatConv`] layer.
#[derive(Debug, Clone, Copy)]
pub struct GatConfig {
    /// Input node-feature width.
    pub in_dim: usize,
    /// Output width per head.
    pub out_dim: usize,
    /// Edge-attribute width consumed by attention (0 disables edge attrs —
    /// the ablation switch isolating the paper's edge-attribute claim).
    pub edge_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Concatenate head outputs (`true`, hidden layers) or average them
    /// (`false`, final layer).
    pub concat: bool,
    /// Negative slope of the attention LeakyReLU.
    pub negative_slope: f32,
}

impl GatConfig {
    /// Output width of the layer (`heads * out_dim` when concatenating).
    pub fn output_width(&self) -> usize {
        if self.concat {
            self.heads * self.out_dim
        } else {
            self.out_dim
        }
    }
}

/// Multi-head graph attention layer with optional edge attributes.
#[derive(Debug, Clone)]
pub struct GatConv {
    /// Layer configuration.
    pub cfg: GatConfig,
    heads: Vec<GatHead>,
}

impl GatConv {
    /// Register parameters for a new layer.
    pub fn new(name: &str, cfg: GatConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(cfg.heads >= 1, "GatConv needs at least one head");
        let mut heads = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let weight = ps.register(
                format!("{name}.h{h}.weight"),
                init::xavier_uniform(cfg.in_dim, cfg.out_dim, rng),
            );
            let edge_weight = (cfg.edge_dim > 0).then(|| {
                ps.register(
                    format!("{name}.h{h}.edge_weight"),
                    init::xavier_uniform(cfg.edge_dim, cfg.out_dim, rng),
                )
            });
            let attn_in = 2 * cfg.out_dim + if cfg.edge_dim > 0 { cfg.out_dim } else { 0 };
            let attn = ps.register(
                format!("{name}.h{h}.attn"),
                init::xavier_uniform(attn_in, 1, rng),
            );
            let bias = ps.register(format!("{name}.h{h}.bias"), Matrix::zeros(1, cfg.out_dim));
            heads.push(GatHead {
                weight,
                edge_weight,
                attn,
                bias,
            });
        }
        Self { cfg, heads }
    }

    /// Forward pass.
    ///
    /// * `h` — node features `[N, in_dim]`.
    /// * `edge_attr` — per-message attributes `[M, edge_dim]` (already
    ///   expanded with [`EdgeIndex::expand_edge_attrs`]); required iff the
    ///   layer was configured with `edge_dim > 0`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        ei: &EdgeIndex,
        h: Var,
        edge_attr: Option<Var>,
    ) -> Var {
        debug_assert_eq!(
            tape.shape(h).0,
            ei.num_nodes,
            "GatConv: node count mismatch"
        );
        debug_assert_eq!(
            tape.shape(h).1,
            self.cfg.in_dim,
            "GatConv: input width mismatch"
        );
        assert_eq!(
            edge_attr.is_some(),
            self.cfg.edge_dim > 0,
            "GatConv: edge_attr presence must match configured edge_dim"
        );

        let mut head_outputs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = tape.param(head.weight, ps.get(head.weight).clone());
            let hw = tape.matmul(h, w); // [N, out]
            let src_f = tape.gather_rows(hw, ei.src.clone()); // [M, out]
            let dst_f = tape.gather_rows(hw, ei.dst.clone()); // [M, out]

            let (cat, edge_term) = match (head.edge_weight, edge_attr) {
                (Some(we), Some(ea)) => {
                    let wev = tape.param(we, ps.get(we).clone());
                    let eat = tape.matmul(ea, wev); // [M, out]
                    (tape.concat_cols(&[dst_f, src_f, eat]), Some(eat))
                }
                _ => (tape.concat_cols(&[dst_f, src_f]), None),
            };
            let a = tape.param(head.attn, ps.get(head.attn).clone());
            let logits = tape.matmul(cat, a); // [M, 1]
            let logits = tape.leaky_relu(logits, self.cfg.negative_slope);
            let alpha = tape.segment_softmax(logits, ei.segments.clone());
            // Message value: transformed source plus transformed edge attr.
            let value = match edge_term {
                Some(eat) => tape.add(src_f, eat),
                None => src_f,
            };
            let weighted = tape.mul_col_broadcast(value, alpha); // [M, out]
            let agg = tape.scatter_add_rows(weighted, ei.dst.clone(), ei.num_nodes);
            let b = tape.param(head.bias, ps.get(head.bias).clone());
            head_outputs.push(tape.add_row_broadcast(agg, b));
        }

        if self.cfg.concat || self.heads.len() == 1 {
            if head_outputs.len() == 1 {
                head_outputs[0]
            } else {
                tape.concat_cols(&head_outputs)
            }
        } else {
            // Average heads.
            let mut acc = head_outputs[0];
            for &o in &head_outputs[1..] {
                acc = tape.add(acc, o);
            }
            tape.scale(acc, 1.0 / head_outputs.len() as f32)
        }
    }

    /// Convenience: forward followed by an activation.
    pub fn forward_activated(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        ei: &EdgeIndex,
        h: Var,
        edge_attr: Option<Var>,
        act: Activation,
    ) -> Var {
        let out = self.forward(tape, ps, ei, h, edge_attr);
        act.apply(tape, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    fn cfg(
        in_dim: usize,
        out_dim: usize,
        edge_dim: usize,
        heads: usize,
        concat: bool,
    ) -> GatConfig {
        GatConfig {
            in_dim,
            out_dim,
            edge_dim,
            heads,
            concat,
            negative_slope: 0.2,
        }
    }

    #[test]
    fn edge_index_structure() {
        // Path 0-1-2.
        let ei = EdgeIndex::from_undirected(3, &[(0, 1), (1, 2)]);
        // Messages: 2 per edge + 3 self-loops = 7.
        assert_eq!(ei.num_messages(), 7);
        assert_eq!(ei.segments.len(), 3);
        // dst is sorted; each segment covers that node's incoming msgs.
        for (n, &(s, e)) in ei.segments.iter().enumerate() {
            for m in s..e {
                assert_eq!(ei.dst[m], n);
            }
        }
        // Node 1 receives from 0, 2, and itself.
        let (s, e) = ei.segments[1];
        let mut srcs: Vec<usize> = (s..e).map(|m| ei.src[m]).collect();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 1, 2]);
    }

    #[test]
    fn edge_attr_expansion_zeroes_self_loops() {
        let ei = EdgeIndex::from_undirected(2, &[(0, 1)]);
        let attrs = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let expanded = ei.expand_edge_attrs(&attrs);
        assert_eq!(expanded.shape(), (4, 2));
        for (m, orig) in ei.orig_edge.iter().enumerate() {
            match orig {
                Some(0) => assert_eq!(expanded.row(m), &[1.0, -1.0]),
                None => assert_eq!(expanded.row(m), &[0.0, 0.0]),
                other => panic!("unexpected orig edge {other:?}"),
            }
        }
    }

    #[test]
    fn output_shapes_concat_vs_average() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let ei = EdgeIndex::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let input = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1);

        let layer = GatConv::new("g", cfg(3, 5, 0, 2, true), &mut ps, &mut rng);
        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &ei, h, None);
        assert_eq!(tape.shape(out), (4, 10));

        let layer2 = GatConv::new("g2", cfg(3, 5, 0, 2, false), &mut ps, &mut rng);
        let mut tape2 = Tape::new();
        let h2 = tape2.leaf(input);
        let out2 = layer2.forward(&mut tape2, &ps, &ei, h2, None);
        assert_eq!(tape2.shape(out2), (4, 5));
    }

    #[test]
    fn attention_is_convex_combination() {
        // With identical source features everywhere, the attention-weighted
        // aggregation must reproduce exactly that shared feature (weights
        // sum to 1 within each destination segment).
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatConv::new("g", cfg(2, 3, 0, 1, true), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let shared = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let input = Matrix::from_fn(4, 2, |_, c| shared.get(0, c));

        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &ei, h, None);
        // Expected: shared·W + bias for every node.
        let hw = amdgcnn_tensor::matmul::matmul(&shared, ps.get(layer.heads[0].weight));
        for n in 0..4 {
            for c in 0..3 {
                let expect = hw.get(0, c) + ps.get(layer.heads[0].bias).get(0, c);
                assert!(
                    (tape.value(out).get(n, c) - expect).abs() < 1e-4,
                    "node {n} ch {c}"
                );
            }
        }
    }

    #[test]
    fn edge_attrs_change_the_output() {
        // Same topology, different edge attributes → different outputs.
        // This is precisely the signal GCN cannot see.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GatConv::new("g", cfg(2, 3, 2, 1, true), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(3, &[(0, 1), (1, 2)]);
        let input = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.3);

        let run = |attrs: Matrix, ps: &ParamStore| {
            let mut tape = Tape::new();
            let h = tape.leaf(input.clone());
            let ea = tape.leaf(ei.expand_edge_attrs(&attrs));
            let out = layer.forward(&mut tape, ps, &ei, h, Some(ea));
            tape.value(out).clone()
        };
        let pos = run(Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]), &ps);
        let neg = run(Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]), &ps);
        assert!(
            pos.max_abs_diff(&neg) > 1e-4,
            "edge attributes must influence the output"
        );
    }

    #[test]
    #[should_panic(expected = "edge_attr presence")]
    fn missing_edge_attr_panics_when_configured() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GatConv::new("g", cfg(2, 2, 2, 1, true), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(2, &[(0, 1)]);
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::zeros(2, 2));
        let _ = layer.forward(&mut tape, &ps, &ei, h, None);
    }

    #[test]
    fn gradients_check_out_with_edge_attrs() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let layer = GatConv::new("g", cfg(2, 2, 2, 2, true), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        let input = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.43).sin());
        let attrs = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let expanded = ei.expand_edge_attrs(&attrs);
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let ea = tape.leaf(expanded.clone());
                let out = layer.forward(tape, store, &ei, h, Some(ea));
                let act = tape.tanh(out);
                let sq = tape.mul(act, act);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn gradients_check_out_average_heads() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = GatConv::new("g", cfg(2, 3, 0, 2, false), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(3, &[(0, 1), (1, 2)]);
        let input = Matrix::from_fn(3, 2, |r, c| ((r + 2 * c) as f32 * 0.27).cos());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &ei, h, None);
                let sq = tape.mul(out, out);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn isolated_node_attends_to_itself_only() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let layer = GatConv::new("g", cfg(2, 2, 0, 1, true), &mut ps, &mut rng);
        let ei = EdgeIndex::from_undirected(3, &[(0, 1)]); // node 2 isolated
        let input = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &ei, h, None);
        // Node 2's segment has one message (its self-loop) with weight 1.
        let hw = amdgcnn_tensor::matmul::matmul(&input, ps.get(layer.heads[0].weight));
        for c in 0..2 {
            let expect = hw.get(2, c) + ps.get(layer.heads[0].bias).get(0, c);
            assert!((tape.value(out).get(2, c) - expect).abs() < 1e-5);
        }
    }
}
