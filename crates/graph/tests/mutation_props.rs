//! Property-based tests of the live-mutation substrate: random mutation
//! schedules over random base graphs, checked for the three contracts
//! the serving tier builds on — replay determinism (the WAL rebuilds the
//! live graph bit-identically), snapshot isolation (published
//! generations never change underneath a reader), and region soundness
//! (every endpoint a batch touches lands inside its invalidation
//! region).

use amdgcnn_graph::mutable::replay_log;
use amdgcnn_graph::{
    graph_digest, GraphBuilder, GraphMutation, KnowledgeGraph, MutableGraph, MutationWal,
};
use proptest::prelude::*;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;

/// Strategy: a random multigraph with up to `max_n` nodes and typed
/// edges.
fn random_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = KnowledgeGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0..5u16), 1..max_edges).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, t) in edges {
                    b.add_edge(u, v, t);
                }
                b.build()
            },
        )
    })
}

/// Raw op choices; interpreted against the evolving graph so every
/// generated batch is valid (unknown nodes and double retires are
/// impossible by construction).
type RawOp = (u8, u32, u32, u16);

fn raw_batches() -> impl Strategy<Value = Vec<Vec<RawOp>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..4, 0u32..1_000_000, 0u32..1_000_000, 0u16..5),
            1..5usize,
        ),
        1..8usize,
    )
}

/// Client-side mirror of the graph's slot accounting, so raw choices map
/// to *valid* batches: retires always name a currently live stable id
/// (possibly one added earlier in the same batch — `apply` is
/// sequential), never a tombstone.
struct Mirror {
    num_nodes: u32,
    live: Vec<u32>,
    next_slot: u32,
}

impl Mirror {
    fn new(g: &KnowledgeGraph) -> Self {
        Self {
            num_nodes: g.num_nodes() as u32,
            live: (0..g.num_edges() as u32).collect(),
            next_slot: g.num_edges() as u32,
        }
    }

    fn batch(&mut self, raw: &[RawOp]) -> Vec<GraphMutation> {
        let mut out = Vec::with_capacity(raw.len());
        for &(kind, a, b, t) in raw {
            let m = match kind {
                0 => {
                    self.live.push(self.next_slot);
                    self.next_slot += 1;
                    GraphMutation::AddEdge {
                        u: a % self.num_nodes,
                        v: b % self.num_nodes,
                        etype: t,
                    }
                }
                1 if !self.live.is_empty() => {
                    let e = self.live.swap_remove(a as usize % self.live.len());
                    GraphMutation::RetireEdge { edge: e }
                }
                2 => {
                    self.num_nodes += 1;
                    GraphMutation::AddNode { ntype: t }
                }
                _ => GraphMutation::SetNodeType {
                    node: a % self.num_nodes,
                    ntype: t,
                },
            };
            out.push(m);
        }
        out
    }
}

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("amdgcnn-mutprops-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}-{case}.wal"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay determinism + snapshot isolation: any valid schedule of
    /// mutation batches replays over the base graph to the live digest,
    /// bumps the generation once per batch, and never perturbs an
    /// already-published snapshot.
    #[test]
    fn random_schedules_replay_bit_identically(
        base in random_graph(24, 60),
        raw in raw_batches(),
    ) {
        let base_digest = graph_digest(&base);
        let mut live = MutableGraph::from_graph(base.clone());
        let gen0 = live.snapshot();
        let mut mirror = Mirror::new(&base);
        let mut batches: Vec<Vec<GraphMutation>> = Vec::new();
        let mut snapshots = vec![(0u64, live.digest(), gen0.clone())];
        for r in &raw {
            let batch = mirror.batch(r);
            let commit = live.apply(&batch).expect("interpreted batch is valid");
            prop_assert_eq!(commit.generation, batches.len() as u64 + 1);
            // Region soundness: every endpoint the batch touched is in
            // the invalidation region at any radius.
            let region = commit.region(1);
            for m in &batch {
                match *m {
                    GraphMutation::AddEdge { u, v, .. } => {
                        prop_assert!(region.affects(u, v));
                    }
                    GraphMutation::SetNodeType { node, .. } => {
                        prop_assert!(region.contains(node));
                    }
                    GraphMutation::RetireEdge { .. } | GraphMutation::AddNode { .. } => {}
                }
            }
            batches.push(batch);
            snapshots.push((commit.generation, live.digest(), live.snapshot()));
        }
        prop_assert_eq!(live.generation(), batches.len() as u64);
        // Replay over the base reconstructs the live graph exactly.
        let rebuilt = MutableGraph::replay(base.clone(), &batches).expect("replay");
        prop_assert_eq!(rebuilt.digest(), live.digest());
        prop_assert_eq!(rebuilt.generation(), live.generation());
        // Published snapshots are frozen: each still digests as it did
        // the moment it was published, and generation 0 is the base.
        prop_assert_eq!(graph_digest(&gen0), base_digest);
        for (generation, digest, snap) in &snapshots {
            prop_assert_eq!(
                graph_digest(snap), *digest,
                "generation {} snapshot mutated under a reader", generation
            );
        }
    }

    /// WAL round-trip + torn-tail recovery: logged batches decode back
    /// verbatim, and a partial trailing frame (the post-crash state) is
    /// dropped by truncation without touching the committed prefix.
    #[test]
    fn wal_survives_torn_tails(
        base in random_graph(24, 60),
        raw in raw_batches(),
        garbage in proptest::collection::vec(0u8..255, 1..7usize),
        case in 0u64..1_000_000_000,
    ) {
        let path = scratch("torn", case);
        let mut wal = MutationWal::create(&path).expect("create");
        let mut live = MutableGraph::from_graph(base.clone());
        let mut mirror = Mirror::new(&base);
        let mut batches: Vec<Vec<GraphMutation>> = Vec::new();
        for r in &raw {
            let batch = mirror.batch(r);
            live.apply(&batch).expect("valid");
            wal.log(&batch, None).expect("append");
            batches.push(batch);
        }
        drop(wal);
        // Clean log: everything decodes back verbatim.
        let rec = replay_log(&path).expect("replay");
        prop_assert_eq!(rec.dropped_bytes, 0);
        prop_assert_eq!(&rec.batches, &batches);
        // Torn tail: a partial frame after the last commit (shorter than
        // any complete record) is truncated away on open.
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        f.write_all(&garbage).expect("tear");
        drop(f);
        let (reopened, rec) = MutationWal::open(&path).expect("recover");
        prop_assert_eq!(rec.dropped_bytes, garbage.len() as u64);
        prop_assert_eq!(&rec.batches, &batches);
        drop(reopened);
        let rebuilt = MutableGraph::replay(base, &rec.batches).expect("replay");
        prop_assert_eq!(rebuilt.digest(), live.digest());
        let _ = std::fs::remove_file(&path);
    }
}
