//! Typed knowledge-graph storage.
//!
//! A [`KnowledgeGraph`] is an undirected multigraph with a type tag on every
//! node and every edge, stored as a CSR adjacency over `(neighbor, edge id)`
//! pairs. Edge ids index a canonical edge list, so edge attributes (types)
//! survive subgraph extraction.

/// A single undirected typed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint.
    pub u: u32,
    /// Other endpoint.
    pub v: u32,
    /// Relation / edge-class tag.
    pub etype: u16,
}

/// Typed rejection of malformed graph input. The fallible constructors
/// ([`GraphBuilder::try_add_edge`], [`KnowledgeGraph::try_from_edges`])
/// return these so ingestion of untrusted edge lists surfaces bad data as
/// an error instead of a panic; the panicking counterparts delegate to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge names a node id at or beyond the node count.
    EndpointOutOfRange {
        /// One endpoint of the offending edge.
        u: u32,
        /// Other endpoint of the offending edge.
        v: u32,
        /// Nodes actually present.
        num_nodes: usize,
    },
    /// A node id at or beyond the node count was addressed directly.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Nodes actually present.
        num_nodes: usize,
    },
    /// A mutation names a stable edge id that was never allocated.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: u32,
        /// Edge slots actually allocated.
        num_edges: usize,
    },
    /// A mutation retires an edge that is already retired.
    EdgeRetired {
        /// The already-tombstoned edge id.
        edge: u32,
    },
    /// A serialized mutation record carries an unknown operation tag.
    MalformedMutation {
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// A serialized mutation record ends mid-operation or carries
    /// trailing bytes.
    TruncatedMutation {
        /// Bytes the decoder needed (or had consumed at the mismatch).
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphError::EndpointOutOfRange { u, v, num_nodes } => write!(
                f,
                "edge ({u},{v}) references missing node (have {num_nodes})"
            ),
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (have {num_nodes})")
            }
            GraphError::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge id {edge} out of range (have {num_edges} slots)")
            }
            GraphError::EdgeRetired { edge } => {
                write!(f, "edge id {edge} is already retired")
            }
            GraphError::MalformedMutation { tag } => {
                write!(f, "mutation record has unknown operation tag {tag:#04x}")
            }
            GraphError::TruncatedMutation { expected, actual } => write!(
                f,
                "mutation record truncated: needed {expected} bytes, have {actual}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incrementally assembles a [`KnowledgeGraph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_types: Vec<u16>,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Start a graph with `num_nodes` nodes, all of type 0.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            node_types: vec![0; num_nodes],
            edges: Vec::new(),
        }
    }

    /// Start a graph with explicit node types.
    pub fn with_node_types(node_types: Vec<u16>) -> Self {
        Self {
            node_types,
            edges: Vec::new(),
        }
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of edges so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append a node of the given type, returning its id.
    pub fn add_node(&mut self, ntype: u16) -> u32 {
        self.node_types.push(ntype);
        (self.node_types.len() - 1) as u32
    }

    /// Set a node's type.
    ///
    /// # Panics
    /// Panics if `node` is out of range (see
    /// [`try_set_node_type`](Self::try_set_node_type)).
    pub fn set_node_type(&mut self, node: u32, ntype: u16) {
        self.try_set_node_type(node, ntype)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`set_node_type`](Self::set_node_type).
    ///
    /// # Errors
    /// [`GraphError::NodeOutOfRange`] when `node` does not exist.
    pub fn try_set_node_type(&mut self, node: u32, ntype: u16) -> Result<(), GraphError> {
        match self.node_types.get_mut(node as usize) {
            Some(t) => {
                *t = ntype;
                Ok(())
            }
            None => Err(GraphError::NodeOutOfRange {
                node,
                num_nodes: self.node_types.len(),
            }),
        }
    }

    /// Add an undirected typed edge. Self-loops and parallel edges are
    /// permitted (knowledge graphs routinely hold several relations between
    /// the same pair).
    ///
    /// # Panics
    /// Panics if either endpoint is out of range (see
    /// [`try_add_edge`](Self::try_add_edge) for the fallible form).
    pub fn add_edge(&mut self, u: u32, v: u32, etype: u16) -> u32 {
        self.try_add_edge(u, v, etype)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_edge`](Self::add_edge): the ingestion path for
    /// untrusted edge lists, where a bad endpoint is data to report, not a
    /// programming error to crash on.
    ///
    /// # Errors
    /// [`GraphError::EndpointOutOfRange`] when either endpoint names a
    /// missing node.
    pub fn try_add_edge(&mut self, u: u32, v: u32, etype: u16) -> Result<u32, GraphError> {
        if (u as usize) >= self.node_types.len() || (v as usize) >= self.node_types.len() {
            return Err(GraphError::EndpointOutOfRange {
                u,
                v,
                num_nodes: self.node_types.len(),
            });
        }
        self.edges.push(Edge { u, v, etype });
        Ok((self.edges.len() - 1) as u32)
    }

    /// Finalize into CSR form.
    pub fn build(self) -> KnowledgeGraph {
        let n = self.node_types.len();
        let mut degree = vec![0usize; n];
        for e in &self.edges {
            degree[e.u as usize] += 1;
            if e.u != e.v {
                degree[e.v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor = offsets.clone();
        let mut neigh = vec![(0u32, 0u32); offsets[n]];
        for (eid, e) in self.edges.iter().enumerate() {
            neigh[cursor[e.u as usize]] = (e.v, eid as u32);
            cursor[e.u as usize] += 1;
            if e.u != e.v {
                neigh[cursor[e.v as usize]] = (e.u, eid as u32);
                cursor[e.v as usize] += 1;
            }
        }
        // Sort each adjacency list by (neighbor, edge id) for deterministic
        // traversal order regardless of insertion order.
        for i in 0..n {
            neigh[offsets[i]..offsets[i + 1]].sort_unstable();
        }
        KnowledgeGraph {
            node_types: self.node_types,
            offsets,
            neigh,
            edges: self.edges,
        }
    }
}

/// Finalized undirected typed multigraph in CSR form.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    node_types: Vec<u16>,
    offsets: Vec<usize>,
    neigh: Vec<(u32, u32)>,
    edges: Vec<Edge>,
}

impl KnowledgeGraph {
    /// Build directly from an edge list over `num_nodes` untyped nodes.
    ///
    /// # Panics
    /// Panics if an edge references a missing node (see
    /// [`try_from_edges`](Self::try_from_edges)).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        Self::try_from_edges(num_nodes, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`from_edges`](Self::from_edges): validates every endpoint
    /// before committing, so a malformed edge list from an external source
    /// is reported instead of crashing the process.
    ///
    /// # Errors
    /// [`GraphError::EndpointOutOfRange`] on the first out-of-range edge.
    /// (A zero-node, zero-edge graph is valid — rejecting empty *datasets*
    /// is the ingestion layer's job, see `amdgcnn_data::DataError`.)
    pub fn try_from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(num_nodes);
        for &(u, v) in edges {
            b.try_add_edge(u, v, 0)?;
        }
        Ok(b.build())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Type tag of a node.
    pub fn node_type(&self, node: u32) -> u16 {
        self.node_types[node as usize]
    }

    /// All node types.
    pub fn node_types(&self) -> &[u16] {
        &self.node_types
    }

    /// Number of distinct node types (max tag + 1).
    pub fn num_node_types(&self) -> usize {
        self.node_types
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1)
    }

    /// Number of distinct edge types (max tag + 1).
    pub fn num_edge_types(&self) -> usize {
        self.edges
            .iter()
            .map(|e| e.etype)
            .max()
            .map_or(1, |m| m as usize + 1)
    }

    /// The canonical edge record for `edge_id`.
    pub fn edge(&self, edge_id: u32) -> Edge {
        self.edges[edge_id as usize]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of a node (self-loops count once).
    pub fn degree(&self, node: u32) -> usize {
        let n = node as usize;
        self.offsets[n + 1] - self.offsets[n]
    }

    /// Adjacency of a node as `(neighbor, edge id)` pairs, sorted by
    /// neighbor id.
    pub fn neighbors(&self, node: u32) -> &[(u32, u32)] {
        let n = node as usize;
        &self.neigh[self.offsets[n]..self.offsets[n + 1]]
    }

    /// Iterator over just the neighbor ids of a node (may repeat under
    /// parallel edges).
    pub fn neighbor_ids(&self, node: u32) -> impl Iterator<Item = u32> + '_ {
        self.neighbors(node).iter().map(|&(v, _)| v)
    }

    /// Distinct neighbor ids of a node, sorted.
    pub fn distinct_neighbors(&self, node: u32) -> Vec<u32> {
        let mut out: Vec<u32> = self.neighbor_ids(node).collect();
        out.dedup();
        out
    }

    /// True when at least one edge joins `u` and `v`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let (small, other) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small)
            .binary_search_by_key(&other, |&(n, _)| n)
            .is_ok()
    }

    /// Ids of every edge joining `u` and `v` (usually zero or one).
    pub fn edges_between(&self, u: u32, v: u32) -> Vec<u32> {
        self.neighbors(u)
            .iter()
            .filter(|&&(n, _)| n == v)
            .map(|&(_, eid)| eid)
            .collect()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neigh.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Count of nodes per node type.
    pub fn node_type_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_node_types()];
        for &t in &self.node_types {
            hist[t as usize] += 1;
        }
        hist
    }

    /// Count of edges per edge type.
    pub fn edge_type_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_edge_types()];
        for e in &self.edges {
            hist[e.etype as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> KnowledgeGraph {
        let mut b = GraphBuilder::with_node_types(vec![0, 1, 1]);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 0, 2);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_node_types(), 2);
        assert_eq!(g.num_edge_types(), 3);
        assert_eq!(g.degree(0), 2);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_sorted_and_symmetric() {
        let g = triangle();
        let n0: Vec<u32> = g.neighbor_ids(0).collect();
        assert_eq!(n0, vec![1, 2]);
        let n1: Vec<u32> = g.neighbor_ids(1).collect();
        assert_eq!(n1, vec![0, 2]);
        // Every edge appears from both sides with the same id.
        for (eid, e) in g.edges().iter().enumerate() {
            assert!(g.neighbors(e.u).contains(&(e.v, eid as u32)));
            assert!(g.neighbors(e.v).contains(&(e.u, eid as u32)));
        }
    }

    #[test]
    fn has_edge_and_edges_between() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edges_between(1, 2), vec![1]);
        assert_eq!(g.edges_between(0, 2), vec![2]);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
        let mut between = g.edges_between(0, 1);
        between.sort_unstable();
        assert_eq!(between, vec![0, 1]);
        assert_eq!(g.edge(1).etype, 5);
        assert_eq!(g.num_edge_types(), 6);
    }

    #[test]
    fn self_loop_counts_once_in_adjacency() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 0);
        b.add_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        let ids: Vec<u32> = g.neighbor_ids(0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn histograms() {
        let g = triangle();
        assert_eq!(g.node_type_histogram(), vec![1, 2]);
        assert_eq!(g.edge_type_histogram(), vec![1, 1, 1]);
    }

    #[test]
    fn isolated_nodes_have_empty_adjacency() {
        let g = KnowledgeGraph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
        assert!(g.distinct_neighbors(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "missing node")]
    fn edge_to_missing_node_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 0);
    }

    #[test]
    fn try_add_edge_reports_typed_error() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.try_add_edge(0, 2, 0),
            Err(GraphError::EndpointOutOfRange {
                u: 0,
                v: 2,
                num_nodes: 2
            })
        );
        assert_eq!(b.num_edges(), 0, "rejected edge must not be recorded");
        assert_eq!(b.try_add_edge(0, 1, 3), Ok(0));
    }

    #[test]
    fn try_from_edges_validates_endpoints() {
        let err = KnowledgeGraph::try_from_edges(3, &[(0, 1), (1, 7)]).expect_err("bad edge");
        assert_eq!(
            err,
            GraphError::EndpointOutOfRange {
                u: 1,
                v: 7,
                num_nodes: 3
            }
        );
        assert!(err.to_string().contains("missing node"), "{err}");
        let g = KnowledgeGraph::try_from_edges(3, &[(0, 1)]).expect("good edges");
        assert_eq!(g.num_edges(), 1);
        // Zero-node graphs stay representable (heuristics handle them).
        assert!(KnowledgeGraph::try_from_edges(0, &[]).is_ok());
    }

    #[test]
    fn try_set_node_type_bounds_checked() {
        let mut b = GraphBuilder::new(1);
        assert_eq!(
            b.try_set_node_type(5, 1),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 1
            })
        );
        b.try_set_node_type(0, 9).expect("in range");
        assert_eq!(b.build().node_type(0), 9);
    }

    #[test]
    fn distinct_neighbors_dedups_parallel() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 0);
        let g = b.build();
        assert_eq!(g.distinct_neighbors(0), vec![1, 2]);
    }
}
