//! # amdgcnn-graph
//!
//! Knowledge-graph substrate for the AM-DGCNN reproduction: typed CSR
//! multigraphs, BFS traversals, SEAL enclosing-subgraph extraction with
//! Double-Radius Node Labeling, classical link-prediction heuristics
//! (common neighbors through SimRank), and node2vec embeddings.
//!
//! # Example: extract and label an enclosing subgraph
//!
//! ```
//! use amdgcnn_graph::{GraphBuilder, SubgraphConfig};
//! use amdgcnn_graph::khop::extract_enclosing_subgraph;
//!
//! // A small typed graph: 0-1-2-3 path plus a 1-3 chord.
//! let mut b = GraphBuilder::with_node_types(vec![0, 1, 0, 1]);
//! b.add_edge(0, 1, 0);
//! b.add_edge(1, 2, 1);
//! b.add_edge(2, 3, 0);
//! b.add_edge(1, 3, 2);
//! let g = b.build();
//!
//! let sub = extract_enclosing_subgraph(&g, 1, 3, &SubgraphConfig::default());
//! assert_eq!(sub.nodes[0], 1);      // targets come first...
//! assert_eq!(sub.drnl[0], 1);       // ...with the distinctive DRNL label
//! // The 1-3 target link itself is hidden from the subgraph:
//! assert!(sub.edges.iter().all(|e| (e.u.min(e.v), e.u.max(e.v)) != (0, 1)));
//! ```

#![warn(missing_docs)]

pub mod bfs;
pub mod drnl;
pub mod graph;
pub mod heuristics;
pub mod katz;
pub mod khop;
pub mod mutable;
pub mod node2vec;
pub mod pagerank;
pub mod simrank;
pub mod walks;
pub mod wl;

pub use bfs::UNREACHABLE;
pub use graph::{Edge, GraphBuilder, GraphError, KnowledgeGraph};
pub use khop::{
    extract_neighborhood, label_with_drnl, EnclosingSubgraph, InducedSubgraph, LocalEdge,
    NeighborhoodMode, SubgraphConfig,
};
pub use mutable::{
    graph_digest, AffectedRegion, Commit, GraphMutation, MutableGraph, MutationWal, WalError,
    WalRecovery,
};
