//! Live graph mutation: append/retire edges under generation versioning,
//! with copy-on-write snapshot isolation and a crash-safe mutation WAL.
//!
//! A [`MutableGraph`] owns the authoritative node/edge state plus an
//! immutable [`KnowledgeGraph`] snapshot behind an `Arc`. Readers pin the
//! snapshot of the generation they started on; [`apply`](MutableGraph::apply)
//! stages a whole mutation batch, validates every operation, and only then
//! swaps in a freshly built snapshot under a bumped generation — an
//! in-flight reader never observes a half-applied batch, and a rejected
//! batch changes nothing.
//!
//! Edge ids handed out by [`MutableGraph`] are *stable*: retiring an edge
//! tombstones it rather than renumbering the survivors, so a WAL record
//! naming an edge means the same edge no matter how many retirements came
//! between. Snapshots contain only live edges (their internal CSR ids are
//! per-snapshot and never leak into mutations).
//!
//! Durability: [`MutationWal`] frames one encoded batch per WAL record
//! (CRC-guarded, see [`amdgcnn_tensor::wal`]), logged *before* the
//! in-memory apply. Replaying the log over the base graph reconstructs a
//! graph bit-identical to the live one — [`graph_digest`] is the equality
//! witness. A malformed record decodes to a typed [`GraphError`], never a
//! panic, so replay of a damaged log degrades instead of aborting.
//!
//! Invalidation: every committed batch yields a [`Commit`] from which an
//! [`AffectedRegion`] — the union of k-hop balls around every touched
//! endpoint, on both the before and after snapshots — answers "does this
//! cached query (a, b) need recomputing?" conservatively: any query whose
//! enclosing subgraph could have changed is inside the region.

use crate::graph::{Edge, GraphBuilder, GraphError, KnowledgeGraph};
use amdgcnn_tensor::durable::{crc32_update, DiskFault};
use amdgcnn_tensor::wal::{replay as wal_replay, Wal};
use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// One atomic operation on a [`MutableGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMutation {
    /// Append a node of the given type; it gets the next node id.
    AddNode {
        /// Type tag of the new node.
        ntype: u16,
    },
    /// Append an undirected typed edge; it gets the next stable edge id.
    AddEdge {
        /// One endpoint.
        u: u32,
        /// Other endpoint.
        v: u32,
        /// Relation / edge-class tag.
        etype: u16,
    },
    /// Retire a live edge by stable id (tombstone — ids never renumber).
    RetireEdge {
        /// Stable id of the edge to retire.
        edge: u32,
    },
    /// Change a node's type tag.
    SetNodeType {
        /// The node to retag.
        node: u32,
        /// Its new type.
        ntype: u16,
    },
}

const TAG_ADD_NODE: u8 = 0;
const TAG_ADD_EDGE: u8 = 1;
const TAG_RETIRE_EDGE: u8 = 2;
const TAG_SET_NODE_TYPE: u8 = 3;

impl GraphMutation {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            GraphMutation::AddNode { ntype } => {
                out.push(TAG_ADD_NODE);
                out.extend_from_slice(&ntype.to_le_bytes());
            }
            GraphMutation::AddEdge { u, v, etype } => {
                out.push(TAG_ADD_EDGE);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&etype.to_le_bytes());
            }
            GraphMutation::RetireEdge { edge } => {
                out.push(TAG_RETIRE_EDGE);
                out.extend_from_slice(&edge.to_le_bytes());
            }
            GraphMutation::SetNodeType { node, ntype } => {
                out.push(TAG_SET_NODE_TYPE);
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&ntype.to_le_bytes());
            }
        }
    }
}

/// Encode a mutation batch as one self-delimiting byte record
/// (`[count u32 LE]` followed by tagged operations) — the WAL payload
/// format.
pub fn encode_batch(batch: &[GraphMutation]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + batch.len() * 11);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for m in batch {
        m.encode_into(&mut out);
    }
    out
}

/// Decode a batch produced by [`encode_batch`].
///
/// # Errors
/// [`GraphError::TruncatedMutation`] when the record ends mid-operation
/// or carries trailing garbage; [`GraphError::MalformedMutation`] on an
/// unknown operation tag. Both are *data* errors — a corrupted but
/// CRC-valid record (software bug upstream) must not abort replay.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<GraphMutation>, GraphError> {
    fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], GraphError> {
        let end = at.checked_add(n).filter(|&e| e <= bytes.len()).ok_or(
            GraphError::TruncatedMutation {
                expected: *at + n,
                actual: bytes.len(),
            },
        )?;
        let s = &bytes[*at..end];
        *at = end;
        Ok(s)
    }
    let mut at = 0usize;
    let count = u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap()) as usize;
    // Smallest op is 3 bytes; a count claiming more is a corrupt header.
    if count > bytes.len() {
        return Err(GraphError::TruncatedMutation {
            expected: 4 + count * 3,
            actual: bytes.len(),
        });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = take(bytes, &mut at, 1)?[0];
        let m = match tag {
            TAG_ADD_NODE => GraphMutation::AddNode {
                ntype: u16::from_le_bytes(take(bytes, &mut at, 2)?.try_into().unwrap()),
            },
            TAG_ADD_EDGE => GraphMutation::AddEdge {
                u: u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap()),
                v: u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap()),
                etype: u16::from_le_bytes(take(bytes, &mut at, 2)?.try_into().unwrap()),
            },
            TAG_RETIRE_EDGE => GraphMutation::RetireEdge {
                edge: u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap()),
            },
            TAG_SET_NODE_TYPE => GraphMutation::SetNodeType {
                node: u32::from_le_bytes(take(bytes, &mut at, 4)?.try_into().unwrap()),
                ntype: u16::from_le_bytes(take(bytes, &mut at, 2)?.try_into().unwrap()),
            },
            other => return Err(GraphError::MalformedMutation { tag: other }),
        };
        out.push(m);
    }
    if at != bytes.len() {
        return Err(GraphError::TruncatedMutation {
            expected: at,
            actual: bytes.len(),
        });
    }
    Ok(out)
}

/// Canonical content digest of a graph: CRC-32 over node count, node
/// types, edge count, and every edge's `(u, v, etype)` in id order. Two
/// graphs with equal digests hold identical content in identical order —
/// the witness that WAL replay reconstructed the live graph exactly.
pub fn graph_digest(g: &KnowledgeGraph) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    crc = crc32_update(crc, &(g.num_nodes() as u64).to_le_bytes());
    for &t in g.node_types() {
        crc = crc32_update(crc, &t.to_le_bytes());
    }
    crc = crc32_update(crc, &(g.num_edges() as u64).to_le_bytes());
    for e in g.edges() {
        crc = crc32_update(crc, &e.u.to_le_bytes());
        crc = crc32_update(crc, &e.v.to_le_bytes());
        crc = crc32_update(crc, &e.etype.to_le_bytes());
    }
    crc ^ 0xFFFF_FFFF
}

/// The set of nodes whose cached enclosing subgraphs a committed mutation
/// batch may have changed. Stored sorted for binary-search membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffectedRegion {
    nodes: Vec<u32>,
}

impl AffectedRegion {
    /// The empty region (nothing invalidated).
    pub fn empty() -> Self {
        Self { nodes: Vec::new() }
    }

    /// True when `node` lies inside the region.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// True when the cached query `(a, b)` must be recomputed: its
    /// enclosing subgraph is built from the k-hop neighborhoods of `a`
    /// and `b`, so it can only have changed if one of them sits inside
    /// the region.
    pub fn affects(&self, a: u32, b: u32) -> bool {
        self.contains(a) || self.contains(b)
    }

    /// Nodes in the region, sorted ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Number of nodes in the region.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no cached query is affected.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Union the closed ball of radius `hops` around `center` into `out`.
/// A center beyond the graph's node range contributes nothing (it only
/// exists on the other snapshot). The BFS runs on a ball-local visited
/// set — `out` may already hold nodes from other centers' balls, which
/// must not truncate this one.
fn collect_ball(g: &KnowledgeGraph, center: u32, hops: usize, out: &mut HashSet<u32>) {
    if center as usize >= g.num_nodes() {
        return;
    }
    let mut seen = HashSet::new();
    let mut frontier = vec![center];
    seen.insert(center);
    for _ in 0..hops {
        let mut next = Vec::new();
        for &n in &frontier {
            for v in g.neighbor_ids(n) {
                if seen.insert(v) {
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out.extend(seen);
}

/// Receipt for one committed mutation batch: the generation it produced,
/// the snapshots on either side, and the endpoints it touched.
#[derive(Debug, Clone)]
pub struct Commit {
    /// Generation number the batch committed as.
    pub generation: u64,
    /// Snapshot readers held before the batch.
    pub before: Arc<KnowledgeGraph>,
    /// Snapshot readers pin from now on.
    pub after: Arc<KnowledgeGraph>,
    /// Node ids directly touched by the batch (edge endpoints, retagged
    /// nodes). Deduplicated, unordered.
    pub touched: Vec<u32>,
}

impl Commit {
    /// The conservative invalidation region for this commit at extraction
    /// radius `hops`: the union of `hops`-balls around every touched node
    /// on *both* snapshots. Both sides matter — an added edge can pull a
    /// node into a neighborhood only on the new snapshot, a retired edge
    /// only reached it on the old one.
    pub fn region(&self, hops: usize) -> AffectedRegion {
        let mut set = HashSet::new();
        for &p in &self.touched {
            collect_ball(&self.before, p, hops, &mut set);
            collect_ball(&self.after, p, hops, &mut set);
        }
        let mut nodes: Vec<u32> = set.into_iter().collect();
        nodes.sort_unstable();
        AffectedRegion { nodes }
    }
}

/// A knowledge graph that accepts live mutation batches under generation
/// versioning, publishing an immutable copy-on-write snapshot per
/// generation (see module docs). `Clone` is cheap-ish (the snapshot `Arc`
/// is shared; only the authoritative vectors copy) and gives callers a
/// stage-then-commit idiom: validate a batch on a clone, persist it, then
/// adopt the clone.
#[derive(Debug, Clone)]
pub struct MutableGraph {
    node_types: Vec<u16>,
    /// Stable-id edge list; retired edges stay as tombstones.
    edges: Vec<Edge>,
    retired: Vec<bool>,
    live_edges: usize,
    generation: u64,
    snapshot: Arc<KnowledgeGraph>,
}

impl MutableGraph {
    /// Adopt `graph` as generation 0. The generation-0 snapshot *is*
    /// `graph` (no rebuild), so readers of an unmutated store see the
    /// original bit-for-bit.
    pub fn from_graph(graph: KnowledgeGraph) -> Self {
        let node_types = graph.node_types().to_vec();
        let edges = graph.edges().to_vec();
        let live_edges = edges.len();
        Self {
            node_types,
            retired: vec![false; edges.len()],
            edges,
            live_edges,
            generation: 0,
            snapshot: Arc::new(graph),
        }
    }

    /// Current generation (0 until the first committed batch).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Pin the current snapshot. The `Arc` stays valid (and unchanged)
    /// for as long as the reader holds it, regardless of later commits.
    pub fn snapshot(&self) -> Arc<KnowledgeGraph> {
        Arc::clone(&self.snapshot)
    }

    /// Nodes currently present (nodes are never removed).
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Live (non-retired) edges.
    pub fn num_live_edges(&self) -> usize {
        self.live_edges
    }

    /// Stable edge ids ever allocated (live + tombstoned).
    pub fn num_edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// Content digest of the current snapshot (see [`graph_digest`]).
    pub fn digest(&self) -> u32 {
        graph_digest(&self.snapshot)
    }

    /// Validate and apply `batch` atomically: either every operation
    /// commits under one new generation, or the graph is untouched and
    /// the first offending operation's error is returned. Operations see
    /// the effects of earlier operations in the same batch (an edge may
    /// target a node added two ops earlier).
    ///
    /// # Errors
    /// [`GraphError::EndpointOutOfRange`] / [`GraphError::NodeOutOfRange`]
    /// for ids beyond the (staged) graph, [`GraphError::EdgeOutOfRange`]
    /// for an unknown stable edge id, [`GraphError::EdgeRetired`] when
    /// retiring an already-retired edge.
    pub fn apply(&mut self, batch: &[GraphMutation]) -> Result<Commit, GraphError> {
        let mut node_types = self.node_types.clone();
        let mut edges = self.edges.clone();
        let mut retired = self.retired.clone();
        let mut live = self.live_edges;
        let mut touched: Vec<u32> = Vec::new();
        for m in batch {
            match *m {
                GraphMutation::AddNode { ntype } => {
                    node_types.push(ntype);
                    // A brand-new node has no cached history to touch.
                }
                GraphMutation::AddEdge { u, v, etype } => {
                    let n = node_types.len();
                    if (u as usize) >= n || (v as usize) >= n {
                        return Err(GraphError::EndpointOutOfRange { u, v, num_nodes: n });
                    }
                    edges.push(Edge { u, v, etype });
                    retired.push(false);
                    live += 1;
                    touched.push(u);
                    touched.push(v);
                }
                GraphMutation::RetireEdge { edge } => {
                    let slot =
                        retired
                            .get_mut(edge as usize)
                            .ok_or(GraphError::EdgeOutOfRange {
                                edge,
                                num_edges: edges.len(),
                            })?;
                    if *slot {
                        return Err(GraphError::EdgeRetired { edge });
                    }
                    *slot = true;
                    live -= 1;
                    let e = edges[edge as usize];
                    touched.push(e.u);
                    touched.push(e.v);
                }
                GraphMutation::SetNodeType { node, ntype } => {
                    let num_nodes = node_types.len();
                    let t = node_types
                        .get_mut(node as usize)
                        .ok_or(GraphError::NodeOutOfRange { node, num_nodes })?;
                    *t = ntype;
                    touched.push(node);
                }
            }
        }
        // Build the new snapshot from live edges in stable-id order.
        let mut b = GraphBuilder::with_node_types(node_types.clone());
        for (e, &dead) in edges.iter().zip(&retired) {
            if !dead {
                b.try_add_edge(e.u, e.v, e.etype)?;
            }
        }
        let after = Arc::new(b.build());
        let before = std::mem::replace(&mut self.snapshot, Arc::clone(&after));
        self.node_types = node_types;
        self.edges = edges;
        self.retired = retired;
        self.live_edges = live;
        self.generation += 1;
        touched.sort_unstable();
        touched.dedup();
        Ok(Commit {
            generation: self.generation,
            before,
            after,
            touched,
        })
    }

    /// Rebuild a graph by replaying mutation batches over `base` — the
    /// recovery path after a crash. The result is bit-identical to the
    /// live graph that logged those batches (same generations, same
    /// [`digest`](Self::digest)).
    ///
    /// # Errors
    /// The first batch that fails to apply (see [`apply`](Self::apply)) —
    /// a CRC-valid but semantically impossible record means the log and
    /// base graph disagree, which the caller must surface, not mask.
    pub fn replay(
        base: KnowledgeGraph,
        batches: &[Vec<GraphMutation>],
    ) -> Result<Self, GraphError> {
        let mut g = Self::from_graph(base);
        for batch in batches {
            g.apply(batch)?;
        }
        Ok(g)
    }
}

/// Error surface of [`MutationWal`] recovery: I/O trouble, or a record
/// that passed its CRC but does not decode as a mutation batch.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O (including a non-WAL file at the path).
    Io(io::Error),
    /// Record `record` (0-based) is CRC-valid but not a mutation batch.
    Decode {
        /// Index of the offending record.
        record: usize,
        /// The decode failure.
        err: GraphError,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "mutation WAL I/O: {e}"),
            WalError::Decode { record, err } => {
                write!(f, "mutation WAL record {record} undecodable: {err}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// A crash-safe mutation log: one CRC-guarded WAL record per committed
/// batch. Log *before* applying in memory — a batch whose
/// [`log`](Self::log) returned `Ok` survives a crash and replays.
#[derive(Debug)]
pub struct MutationWal {
    wal: Wal,
}

/// What [`MutationWal::open`] recovered.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every decoded batch, in commit order.
    pub batches: Vec<Vec<GraphMutation>>,
    /// Bytes of damaged tail dropped during repair (0 for a clean log).
    pub dropped_bytes: u64,
}

impl MutationWal {
    /// Create a fresh, empty log at `path`.
    ///
    /// # Errors
    /// Propagates file-creation I/O errors.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            wal: Wal::create(path)?,
        })
    }

    /// Open (or create) the log at `path`, decoding every surviving
    /// batch. A torn/corrupt tail is repaired by truncation — that is
    /// the normal post-crash state; an *undecodable* CRC-valid record is
    /// an error.
    ///
    /// # Errors
    /// [`WalError::Io`] on file trouble or a non-WAL file;
    /// [`WalError::Decode`] naming the first malformed record.
    pub fn open(path: &Path) -> Result<(Self, WalRecovery), WalError> {
        let (wal, replayed) = Wal::open(path)?;
        let mut batches = Vec::with_capacity(replayed.records.len());
        for (i, rec) in replayed.records.iter().enumerate() {
            batches.push(decode_batch(rec).map_err(|err| WalError::Decode { record: i, err })?);
        }
        Ok((
            Self { wal },
            WalRecovery {
                batches,
                dropped_bytes: replayed.dropped_bytes,
            },
        ))
    }

    /// Durably append one batch, optionally under an injected
    /// [`DiskFault`] (see [`Wal::append_faulty`]).
    ///
    /// # Errors
    /// Propagates append I/O errors.
    pub fn log(&mut self, batch: &[GraphMutation], fault: Option<DiskFault>) -> io::Result<()> {
        self.wal.append_faulty(&encode_batch(batch), fault)
    }

    /// Validated append: log the batch, read it back, and report whether
    /// it is durably intact. `Ok(false)` means the (injected) fault
    /// damaged the record — the log has been repaired back to its
    /// pre-append state, so the caller must refuse the commit (see
    /// [`Wal::append_verified`]).
    ///
    /// # Errors
    /// Propagates append/read-back I/O errors.
    pub fn log_verified(
        &mut self,
        batch: &[GraphMutation],
        fault: Option<DiskFault>,
    ) -> io::Result<bool> {
        self.wal.append_verified(&encode_batch(batch), fault)
    }

    /// Batches durably logged (including replayed ones).
    pub fn batches(&self) -> u64 {
        self.wal.records()
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        self.wal.path()
    }
}

/// Read-only decode of the log at `path` (no repair): the surviving
/// batches, for digest checks against a live graph.
///
/// # Errors
/// Same surface as [`MutationWal::open`].
pub fn replay_log(path: &Path) -> Result<WalRecovery, WalError> {
    let replayed = wal_replay(path)?;
    let mut batches = Vec::with_capacity(replayed.records.len());
    for (i, rec) in replayed.records.iter().enumerate() {
        batches.push(decode_batch(rec).map_err(|err| WalError::Decode { record: i, err })?);
    }
    Ok(WalRecovery {
        batches,
        dropped_bytes: replayed.dropped_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "amdgcnn-mutable-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join("mutations.wal")
    }

    /// 0-1-2-3 path plus a 1-3 chord, typed nodes.
    fn base() -> KnowledgeGraph {
        let mut b = GraphBuilder::with_node_types(vec![0, 1, 0, 1]);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 0);
        b.add_edge(1, 3, 2);
        b.build()
    }

    #[test]
    fn snapshot_isolation_pins_the_old_generation() {
        let mut g = MutableGraph::from_graph(base());
        let pinned = g.snapshot();
        assert_eq!(g.generation(), 0);
        let commit = g
            .apply(&[GraphMutation::AddEdge {
                u: 0,
                v: 3,
                etype: 1,
            }])
            .expect("apply");
        assert_eq!(commit.generation, 1);
        assert_eq!(g.generation(), 1);
        // The pinned snapshot is untouched; the new one sees the edge.
        assert!(!pinned.has_edge(0, 3));
        assert!(g.snapshot().has_edge(0, 3));
        assert_eq!(pinned.num_edges(), 4);
        assert_eq!(g.snapshot().num_edges(), 5);
        assert!(Arc::ptr_eq(&commit.before, &pinned));
    }

    #[test]
    fn retire_tombstones_without_renumbering() {
        let mut g = MutableGraph::from_graph(base());
        g.apply(&[GraphMutation::RetireEdge { edge: 1 }])
            .expect("retire");
        assert_eq!(g.num_live_edges(), 3);
        assert_eq!(g.num_edge_slots(), 4);
        assert!(!g.snapshot().has_edge(1, 2));
        // Stable ids survive: edge 3 still names the 1-3 chord, and a
        // second retire of it works even after the earlier retirement.
        g.apply(&[GraphMutation::RetireEdge { edge: 3 }])
            .expect("retire chord");
        assert!(!g.snapshot().has_edge(1, 3));
        // Double-retire is a typed error, not silent.
        let err = g
            .apply(&[GraphMutation::RetireEdge { edge: 1 }])
            .expect_err("double retire");
        assert_eq!(err, GraphError::EdgeRetired { edge: 1 });
    }

    #[test]
    fn batch_is_atomic_and_self_consistent() {
        let mut g = MutableGraph::from_graph(base());
        // An edge may target a node added earlier in the same batch.
        let commit = g
            .apply(&[
                GraphMutation::AddNode { ntype: 2 },
                GraphMutation::AddEdge {
                    u: 4,
                    v: 0,
                    etype: 0,
                },
            ])
            .expect("batch");
        assert_eq!(g.num_nodes(), 5);
        assert!(g.snapshot().has_edge(4, 0));
        assert_eq!(commit.touched, vec![0, 4]);
        // A failing op anywhere in the batch rolls the whole batch back.
        let before_digest = g.digest();
        let err = g
            .apply(&[
                GraphMutation::AddEdge {
                    u: 0,
                    v: 1,
                    etype: 0,
                },
                GraphMutation::RetireEdge { edge: 99 },
            ])
            .expect_err("bad batch");
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                edge: 99,
                num_edges: 6
            }
        );
        assert_eq!(g.digest(), before_digest, "rejected batch changed nothing");
        assert_eq!(g.generation(), 1);
    }

    #[test]
    fn digest_detects_any_content_difference() {
        let g1 = MutableGraph::from_graph(base());
        let mut g2 = MutableGraph::from_graph(base());
        assert_eq!(g1.digest(), g2.digest());
        g2.apply(&[GraphMutation::SetNodeType { node: 0, ntype: 7 }])
            .expect("retag");
        assert_ne!(g1.digest(), g2.digest());
    }

    #[test]
    fn encode_decode_round_trips() {
        let batch = vec![
            GraphMutation::AddNode { ntype: 3 },
            GraphMutation::AddEdge {
                u: 10,
                v: 20,
                etype: 5,
            },
            GraphMutation::RetireEdge { edge: 7 },
            GraphMutation::SetNodeType { node: 2, ntype: 1 },
        ];
        let bytes = encode_batch(&batch);
        assert_eq!(decode_batch(&bytes).expect("decode"), batch);
        assert_eq!(decode_batch(&encode_batch(&[])).expect("decode"), vec![]);
    }

    #[test]
    fn malformed_records_decode_to_typed_errors() {
        // Unknown tag.
        let mut bytes = encode_batch(&[GraphMutation::AddNode { ntype: 0 }]);
        bytes[4] = 0xEE;
        assert_eq!(
            decode_batch(&bytes),
            Err(GraphError::MalformedMutation { tag: 0xEE })
        );
        // Truncated mid-operation.
        let full = encode_batch(&[GraphMutation::AddEdge {
            u: 1,
            v: 2,
            etype: 0,
        }]);
        let err = decode_batch(&full[..full.len() - 3]).expect_err("truncated");
        assert!(matches!(err, GraphError::TruncatedMutation { .. }));
        assert!(err.to_string().contains("truncated"), "{err}");
        // Trailing garbage.
        let mut padded = full.clone();
        padded.push(0);
        assert!(matches!(
            decode_batch(&padded),
            Err(GraphError::TruncatedMutation { .. })
        ));
        // Absurd count field.
        let mut huge = encode_batch(&[]);
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_batch(&huge),
            Err(GraphError::TruncatedMutation { .. })
        ));
    }

    #[test]
    fn wal_replay_rebuilds_bit_identical_graph() {
        let path = scratch("replay");
        let mut live = MutableGraph::from_graph(base());
        let mut wal = MutationWal::create(&path).expect("wal");
        let batches = vec![
            vec![GraphMutation::AddEdge {
                u: 0,
                v: 2,
                etype: 1,
            }],
            vec![
                GraphMutation::AddNode { ntype: 1 },
                GraphMutation::AddEdge {
                    u: 4,
                    v: 1,
                    etype: 0,
                },
            ],
            vec![GraphMutation::RetireEdge { edge: 0 }],
            vec![GraphMutation::SetNodeType { node: 3, ntype: 4 }],
        ];
        for b in &batches {
            wal.log(b, None).expect("log");
            live.apply(b).expect("apply");
        }
        // Crash: reopen from disk, replay over the same base.
        let (_wal2, rec) = MutationWal::open(&path).expect("open");
        assert_eq!(rec.batches, batches);
        let rebuilt = MutableGraph::replay(base(), &rec.batches).expect("replay");
        assert_eq!(rebuilt.generation(), live.generation());
        assert_eq!(rebuilt.digest(), live.digest());
    }

    #[test]
    fn wal_torn_tail_loses_only_the_unacked_batch() {
        let path = scratch("torn");
        let mut live = MutableGraph::from_graph(base());
        let mut wal = MutationWal::create(&path).expect("wal");
        let good = vec![GraphMutation::AddEdge {
            u: 0,
            v: 3,
            etype: 0,
        }];
        wal.log(&good, None).expect("log");
        live.apply(&good).expect("apply");
        let durable_digest = live.digest();
        // This batch is torn mid-write by the crash: it was never acked,
        // so losing it is correct — the WAL contract is exactly "acked
        // batches survive".
        wal.log(
            &[GraphMutation::RetireEdge { edge: 0 }],
            Some(DiskFault::TornWrite),
        )
        .expect("write reported ok");
        let (_wal2, rec) = MutationWal::open(&path).expect("open repairs");
        assert_eq!(rec.batches.len(), 1);
        assert!(rec.dropped_bytes > 0);
        let rebuilt = MutableGraph::replay(base(), &rec.batches).expect("replay");
        assert_eq!(rebuilt.digest(), durable_digest);
    }

    #[test]
    fn affected_region_is_local_and_two_sided() {
        // Path 0-1-2-3-4-5: mutate at one end, the far end is untouched.
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1, 0);
        }
        let mut g = MutableGraph::from_graph(b.build());
        let commit = g
            .apply(&[GraphMutation::AddEdge {
                u: 0,
                v: 1,
                etype: 1,
            }])
            .expect("apply");
        let region = commit.region(1);
        // 1-balls around 0 and 1: {0,1} ∪ {0,1,2}.
        assert_eq!(region.nodes(), &[0, 1, 2]);
        assert!(region.affects(2, 5), "endpoint inside the ball");
        assert!(!region.affects(3, 5), "far pair untouched");
        assert!(!region.affects(4, 5));
        // Radius grows the ball.
        let region2 = commit.region(2);
        assert_eq!(region2.nodes(), &[0, 1, 2, 3]);
    }

    #[test]
    fn retirement_region_covers_the_old_neighborhood() {
        // Star: hub 0 with leaves 1..=4, plus a 1-2 chord whose
        // retirement must invalidate through the *old* adjacency.
        let mut b = GraphBuilder::new(5);
        for leaf in 1..=4u32 {
            b.add_edge(0, leaf, 0);
        }
        b.add_edge(1, 2, 1); // edge id 4
        let mut g = MutableGraph::from_graph(b.build());
        let commit = g
            .apply(&[GraphMutation::RetireEdge { edge: 4 }])
            .expect("retire");
        let region = commit.region(1);
        // Balls around 1 and 2 on the old snapshot include each other and
        // the hub; leaves 3 and 4 are only reachable at radius 2.
        assert_eq!(region.nodes(), &[0, 1, 2]);
        assert!(region.affects(1, 3));
        assert!(!region.affects(3, 4));
    }

    #[test]
    fn add_node_affects_nothing_cached() {
        let mut g = MutableGraph::from_graph(base());
        let commit = g
            .apply(&[GraphMutation::AddNode { ntype: 9 }])
            .expect("apply");
        assert!(commit.region(3).is_empty());
    }

    #[test]
    fn replay_of_impossible_record_is_an_error_not_a_panic() {
        // A CRC-valid batch that retires a nonexistent edge: replay must
        // surface the typed error.
        let err = MutableGraph::replay(base(), &[vec![GraphMutation::RetireEdge { edge: 77 }]])
            .expect_err("impossible record");
        assert_eq!(
            err,
            GraphError::EdgeOutOfRange {
                edge: 77,
                num_edges: 4
            }
        );
    }
}
