//! PrimeKG-like synthetic precision-medicine knowledge graph.
//!
//! Reproduces the *properties* of PrimeKG (Chandak et al., 2023) that the
//! paper's experiments rely on:
//!
//! * 10 node types spanning biological scales, 30 relation types encoding
//!   positive or negative interactions (§IV);
//! * drug–disease target links in three classes — *indication*, *off-label
//!   use*, *contra-indication* (§IV);
//! * the class is recoverable from the **signs of edges** in the 2-hop
//!   enclosing subgraph: each drug and disease carries a latent mechanism
//!   polarity that biases the signs of its protein interactions, and the
//!   link class is the product of the endpoint polarities (neutral →
//!   off-label). An edge-blind model sees only a weak topological
//!   correlate (indication pairs receive a few extra shared proteins), so
//!   vanilla DGCNN lands well above chance but far below AM-DGCNN — the
//!   Table III contrast.

use crate::types::{split_links, Dataset, EdgeAttrTable, LabeledLink};
use amdgcnn_graph::{GraphBuilder, NeighborhoodMode, SubgraphConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Node-type tags (10 biological scales, §IV).
pub mod node_type {
    /// Drug nodes.
    pub const DRUG: u16 = 0;
    /// Disease nodes.
    pub const DISEASE: u16 = 1;
    /// Protein/gene nodes.
    pub const PROTEIN: u16 = 2;
    /// Phenotype nodes.
    pub const PHENOTYPE: u16 = 3;
    /// Exposure nodes.
    pub const EXPOSURE: u16 = 4;
    /// Anatomical-region nodes.
    pub const ANATOMY: u16 = 5;
    /// Pathway nodes.
    pub const PATHWAY: u16 = 6;
    /// Biological-process nodes.
    pub const BIOPROCESS: u16 = 7;
    /// Cellular-component nodes.
    pub const CELLCOMP: u16 = 8;
    /// Molecular-function nodes.
    pub const MOLFUNC: u16 = 9;
}

/// Relation-type tags (30 relations; the drug–disease target relations are
/// 24–26).
pub mod relation {
    /// Drug→protein, activating.
    pub const DRUG_PROTEIN_POS: u16 = 0;
    /// Drug→protein, inhibiting.
    pub const DRUG_PROTEIN_NEG: u16 = 1;
    /// Disease→protein, up-regulated.
    pub const DISEASE_PROTEIN_POS: u16 = 2;
    /// Disease→protein, down-regulated.
    pub const DISEASE_PROTEIN_NEG: u16 = 3;
    /// Target link: indication (class 0).
    pub const INDICATION: u16 = 24;
    /// Target link: off-label use (class 1).
    pub const OFF_LABEL: u16 = 25;
    /// Target link: contra-indication (class 2).
    pub const CONTRA_INDICATION: u16 = 26;
}

/// Relations whose interaction sign is negative; all others are positive.
/// Drives the 2-dimensional sign compression of §III-B.
pub const NEGATIVE_RELATIONS: [u16; 8] = [1, 3, 5, 7, 9, 11, 21, 26];

/// Number of relation types.
pub const NUM_RELATIONS: usize = 30;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct PrimeKgConfig {
    /// Drug-node count.
    pub num_drugs: usize,
    /// Disease-node count.
    pub num_diseases: usize,
    /// Protein-node count.
    pub num_proteins: usize,
    /// Node count for each of the 7 remaining scales.
    pub num_other_per_type: usize,
    /// Drug→protein degree range (inclusive).
    pub drug_degree: (usize, usize),
    /// Disease→protein degree range (inclusive).
    pub disease_degree: (usize, usize),
    /// Probability an edge sign agrees with its endpoint's mechanism.
    pub mechanism_bias: f64,
    /// Probability a drug/disease is polarity-neutral (→ off-label links).
    pub neutral_prob: f64,
    /// Extra shared proteins planted on indication pairs (the weak
    /// topological signal an edge-blind model can still exploit).
    pub indication_extra_shared: usize,
    /// Training-link count.
    pub train_links: usize,
    /// Test-link count.
    pub test_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrimeKgConfig {
    fn default() -> Self {
        Self {
            num_drugs: 400,
            num_diseases: 600,
            num_proteins: 800,
            num_other_per_type: 150,
            drug_degree: (6, 14),
            disease_degree: (8, 20),
            mechanism_bias: 0.93,
            neutral_prob: 0.3,
            indication_extra_shared: 2,
            train_links: 600,
            test_links: 200,
            seed: 0x9121_6b47,
        }
    }
}

impl PrimeKgConfig {
    /// Miniature preset for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_drugs: 60,
            num_diseases: 80,
            num_proteins: 100,
            num_other_per_type: 15,
            train_links: 45,
            test_links: 15,
            ..Self::default()
        }
    }
}

/// Latent mechanism polarity.
fn sample_mechanism(rng: &mut StdRng, neutral_prob: f64) -> i8 {
    let r: f64 = rng.random();
    if r < neutral_prob {
        0
    } else if r < neutral_prob + (1.0 - neutral_prob) / 2.0 {
        1
    } else {
        -1
    }
}

/// Edge sign biased toward the mechanism `m` (random for neutral).
fn sample_sign(rng: &mut StdRng, m: i8, bias: f64) -> i8 {
    if m == 0 {
        if rng.random::<f64>() < 0.5 {
            1
        } else {
            -1
        }
    } else if rng.random::<f64>() < bias {
        m
    } else {
        -m
    }
}

/// Generate a PrimeKG-like dataset.
pub fn primekg_like(cfg: &PrimeKgConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let nd = cfg.num_drugs;
    let nz = cfg.num_diseases;
    let np = cfg.num_proteins;
    let no = cfg.num_other_per_type;

    // Node layout: [drugs | diseases | proteins | 7 x other scales].
    let mut node_types = Vec::new();
    node_types.extend(std::iter::repeat_n(node_type::DRUG, nd));
    node_types.extend(std::iter::repeat_n(node_type::DISEASE, nz));
    node_types.extend(std::iter::repeat_n(node_type::PROTEIN, np));
    for t in [
        node_type::PHENOTYPE,
        node_type::EXPOSURE,
        node_type::ANATOMY,
        node_type::PATHWAY,
        node_type::BIOPROCESS,
        node_type::CELLCOMP,
        node_type::MOLFUNC,
    ] {
        node_types.extend(std::iter::repeat_n(t, no));
    }
    let mut b = GraphBuilder::with_node_types(node_types);

    let drug_id = |d: usize| d as u32;
    let disease_id = |z: usize| (nd + z) as u32;
    let protein_id = |p: usize| (nd + nz + p) as u32;
    let other_id = |scale: usize, i: usize| (nd + nz + np + scale * no + i) as u32;

    // Latent mechanisms.
    let drug_mech: Vec<i8> = (0..nd)
        .map(|_| sample_mechanism(&mut rng, cfg.neutral_prob))
        .collect();
    let disease_mech: Vec<i8> = (0..nz)
        .map(|_| sample_mechanism(&mut rng, cfg.neutral_prob))
        .collect();

    // Drug–protein and disease–protein interactions, signs biased by the
    // endpoint mechanism; remember the signed incidences for labeling.
    let mut drug_proteins: Vec<Vec<(usize, i8)>> = vec![Vec::new(); nd];
    let mut protein_diseases: Vec<Vec<(usize, i8)>> = vec![Vec::new(); np];
    for d in 0..nd {
        let deg = rng.random_range(cfg.drug_degree.0..=cfg.drug_degree.1);
        let mut chosen = HashSet::new();
        while chosen.len() < deg.min(np) {
            chosen.insert(rng.random_range(0..np));
        }
        for p in chosen {
            let s = sample_sign(&mut rng, drug_mech[d], cfg.mechanism_bias);
            let etype = if s > 0 {
                relation::DRUG_PROTEIN_POS
            } else {
                relation::DRUG_PROTEIN_NEG
            };
            b.add_edge(drug_id(d), protein_id(p), etype);
            drug_proteins[d].push((p, s));
        }
    }
    for (z, &mech) in disease_mech.iter().enumerate() {
        let deg = rng.random_range(cfg.disease_degree.0..=cfg.disease_degree.1);
        let mut chosen = HashSet::new();
        while chosen.len() < deg.min(np) {
            chosen.insert(rng.random_range(0..np));
        }
        for p in chosen {
            let s = sample_sign(&mut rng, mech, cfg.mechanism_bias);
            let etype = if s > 0 {
                relation::DISEASE_PROTEIN_POS
            } else {
                relation::DISEASE_PROTEIN_NEG
            };
            b.add_edge(disease_id(z), protein_id(p), etype);
            protein_diseases[p].push((z, s));
        }
    }

    // Scaffold relations across the remaining scales: (relation, from-range
    // picker, to-range picker, count). These flesh out the 30-relation
    // vocabulary and give hub structure to the other 7 scales.
    let scaffold = |rng: &mut StdRng,
                    b: &mut GraphBuilder,
                    etype: u16,
                    from: &dyn Fn(&mut StdRng) -> u32,
                    to: &dyn Fn(&mut StdRng) -> u32,
                    count: usize| {
        for _ in 0..count {
            let u = from(rng);
            let v = to(rng);
            if u != v {
                b.add_edge(u, v, etype);
            }
        }
    };
    let rand_drug = move |r: &mut StdRng| drug_id(r.random_range(0..nd));
    let rand_disease = move |r: &mut StdRng| disease_id(r.random_range(0..nz));
    let rand_protein = move |r: &mut StdRng| protein_id(r.random_range(0..np));
    let rand_other =
        move |scale: usize| move |r: &mut StdRng| other_id(scale, r.random_range(0..no));
    let per = no * 2;
    scaffold(&mut rng, &mut b, 4, &rand_protein, &rand_protein, np); // ppi+
    scaffold(&mut rng, &mut b, 5, &rand_protein, &rand_protein, np / 2); // ppi-
    scaffold(&mut rng, &mut b, 6, &rand_disease, &rand_other(0), per); // disease-phenotype+
    scaffold(&mut rng, &mut b, 7, &rand_disease, &rand_other(0), per / 2); // disease-phenotype-
    scaffold(&mut rng, &mut b, 8, &rand_drug, &rand_other(0), per); // drug-sideeffect+
    scaffold(&mut rng, &mut b, 9, &rand_drug, &rand_other(0), per / 2); // drug-sideeffect-
    scaffold(&mut rng, &mut b, 10, &rand_other(1), &rand_disease, per); // exposure-disease+
    scaffold(&mut rng, &mut b, 11, &rand_other(1), &rand_disease, per / 2); // exposure-disease-
    scaffold(&mut rng, &mut b, 12, &rand_other(2), &rand_protein, per); // anatomy-protein
    scaffold(&mut rng, &mut b, 13, &rand_other(2), &rand_disease, per); // anatomy-disease
    scaffold(&mut rng, &mut b, 14, &rand_other(3), &rand_protein, per); // pathway-protein
    scaffold(&mut rng, &mut b, 15, &rand_other(3), &rand_drug, per); // pathway-drug
    scaffold(&mut rng, &mut b, 16, &rand_other(4), &rand_protein, per); // bioprocess-protein
    scaffold(&mut rng, &mut b, 17, &rand_other(4), &rand_other(3), per); // bioprocess-pathway
    scaffold(&mut rng, &mut b, 18, &rand_other(5), &rand_protein, per); // cellcomp-protein
    scaffold(&mut rng, &mut b, 19, &rand_other(6), &rand_protein, per); // molfunc-protein
    scaffold(&mut rng, &mut b, 20, &rand_drug, &rand_drug, nd / 2); // drug-drug synergy
    scaffold(&mut rng, &mut b, 21, &rand_drug, &rand_drug, nd / 4); // drug-drug antagonism
    scaffold(&mut rng, &mut b, 22, &rand_disease, &rand_disease, nz / 2); // disease-disease
    scaffold(
        &mut rng,
        &mut b,
        23,
        &rand_other(0),
        &rand_other(0),
        per / 2,
    ); // phenotype-phenotype
    scaffold(
        &mut rng,
        &mut b,
        27,
        &rand_other(1),
        &rand_other(4),
        per / 2,
    ); // exposure-bioprocess
    scaffold(
        &mut rng,
        &mut b,
        28,
        &rand_other(6),
        &rand_other(5),
        per / 2,
    ); // molfunc-cellcomp
    scaffold(
        &mut rng,
        &mut b,
        29,
        &rand_other(2),
        &rand_other(2),
        per / 2,
    ); // anatomy-anatomy

    // Candidate drug–disease pairs: share at least one protein. Class from
    // the mechanism product; indication pairs receive a few extra shared
    // proteins (weak topological signal).
    let mut pool: Vec<LabeledLink> = Vec::new();
    let mut taken: HashSet<(u32, u32)> = HashSet::new();
    for d in 0..nd {
        let mut shared: HashMap<usize, usize> = HashMap::new();
        for &(p, _) in &drug_proteins[d] {
            for &(z, _) in &protein_diseases[p] {
                *shared.entry(z).or_insert(0) += 1;
            }
        }
        let mut diseases: Vec<usize> = shared.keys().copied().collect();
        diseases.sort_unstable();
        for z in diseases {
            if !taken.insert((drug_id(d), disease_id(z))) {
                continue;
            }
            let prod = drug_mech[d] as i32 * disease_mech[z] as i32;
            let class = match prod.signum() {
                1 => 0,  // indication
                -1 => 2, // contra-indication
                _ => 1,  // off-label
            };
            let etype = relation::INDICATION + class as u16;
            b.add_edge(drug_id(d), disease_id(z), etype);
            if class == 0 {
                // Extra shared proteins (topological signal); their signs
                // stay mechanism-consistent so they reinforce rather than
                // corrupt the edge-sign evidence.
                for _ in 0..cfg.indication_extra_shared {
                    let p = rng.random_range(0..np);
                    let sd = sample_sign(&mut rng, drug_mech[d], cfg.mechanism_bias);
                    let sz = sample_sign(&mut rng, disease_mech[z], cfg.mechanism_bias);
                    b.add_edge(
                        drug_id(d),
                        protein_id(p),
                        if sd > 0 {
                            relation::DRUG_PROTEIN_POS
                        } else {
                            relation::DRUG_PROTEIN_NEG
                        },
                    );
                    b.add_edge(
                        disease_id(z),
                        protein_id(p),
                        if sz > 0 {
                            relation::DISEASE_PROTEIN_POS
                        } else {
                            relation::DISEASE_PROTEIN_NEG
                        },
                    );
                }
            }
            pool.push(LabeledLink {
                u: drug_id(d),
                v: disease_id(z),
                class,
            });
        }
    }

    let (train, test) = split_links(pool, cfg.train_links, cfg.test_links, 3, &mut rng);

    // Sign compression: 30 relations → 2-dim positive/negative one-hot
    // (§III-B).
    let rows = (0..NUM_RELATIONS)
        .map(|r| {
            if NEGATIVE_RELATIONS.contains(&(r as u16)) {
                vec![0.0, 1.0]
            } else {
                vec![1.0, 0.0]
            }
        })
        .collect();

    let dataset = Dataset {
        name: "primekg-like",
        graph: b.build(),
        edge_attrs: EdgeAttrTable::from_rows(rows),
        num_classes: 3,
        train,
        test,
        subgraph: SubgraphConfig {
            hops: 2,
            mode: NeighborhoodMode::Intersection,
            max_nodes_per_hop: Some(100),
            seed: cfg.seed,
        },
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_spec() {
        let ds = primekg_like(&PrimeKgConfig::tiny());
        assert_eq!(ds.graph.num_node_types(), 10);
        assert_eq!(ds.graph.num_edge_types(), 30);
        assert_eq!(ds.num_classes, 3);
        assert_eq!(ds.edge_attrs.dim(), 2);
        assert_eq!(ds.train.len(), 45);
        assert_eq!(ds.test.len(), 15);
        assert_eq!(ds.subgraph.mode, NeighborhoodMode::Intersection);
    }

    #[test]
    fn target_links_are_drug_disease_edges() {
        let ds = primekg_like(&PrimeKgConfig::tiny());
        for l in ds.train.iter().chain(ds.test.iter()) {
            assert_eq!(ds.graph.node_type(l.u), node_type::DRUG);
            assert_eq!(ds.graph.node_type(l.v), node_type::DISEASE);
            // The link exists in the graph with the matching relation type.
            let eids = ds.graph.edges_between(l.u, l.v);
            assert!(!eids.is_empty(), "target pair missing from graph");
            let expect = relation::INDICATION + l.class as u16;
            assert!(
                eids.iter().any(|&e| ds.graph.edge(e).etype == expect),
                "relation type must encode the class"
            );
        }
    }

    #[test]
    fn classes_are_reasonably_balanced() {
        let ds = primekg_like(&PrimeKgConfig::default());
        let hist = Dataset::class_histogram(&ds.train, 3);
        for (c, &count) in hist.iter().enumerate() {
            assert!(count >= ds.train.len() / 6, "class {c} starved: {hist:?}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = primekg_like(&PrimeKgConfig::tiny());
        let b = primekg_like(&PrimeKgConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn sign_table_matches_relation_polarity() {
        let ds = primekg_like(&PrimeKgConfig::tiny());
        assert_eq!(ds.edge_attrs.row(relation::DRUG_PROTEIN_POS), &[1.0, 0.0]);
        assert_eq!(ds.edge_attrs.row(relation::DRUG_PROTEIN_NEG), &[0.0, 1.0]);
        assert_eq!(ds.edge_attrs.row(relation::CONTRA_INDICATION), &[0.0, 1.0]);
        assert_eq!(ds.edge_attrs.row(relation::INDICATION), &[1.0, 0.0]);
    }

    #[test]
    fn oracle_on_edge_signs_beats_chance() {
        // Bayes-style oracle: estimate each endpoint's polarity from the
        // majority sign of its protein edges, predict class from the
        // product. This must align with the planted labels far above the
        // 1/3 chance rate — the signal AM-DGCNN is supposed to learn.
        let ds = primekg_like(&PrimeKgConfig::default());
        let polarity = |node: u32| -> i32 {
            let mut s = 0i32;
            for &(nb, eid) in ds.graph.neighbors(node) {
                if ds.graph.node_type(nb) != node_type::PROTEIN {
                    continue;
                }
                match ds.graph.edge(eid).etype {
                    relation::DRUG_PROTEIN_POS | relation::DISEASE_PROTEIN_POS => s += 1,
                    relation::DRUG_PROTEIN_NEG | relation::DISEASE_PROTEIN_NEG => s -= 1,
                    _ => {}
                }
            }
            s
        };
        let mut correct = 0usize;
        for l in &ds.test {
            let pu = polarity(l.u);
            let pv = polarity(l.v);
            // Thresholded product mirrors the generative rule: polar nodes
            // have |sign sum| near bias·degree, neutral ones near zero.
            let pred = if pu.abs() < 3 || pv.abs() < 3 {
                1
            } else if pu.signum() * pv.signum() > 0 {
                0
            } else {
                2
            };
            if pred == l.class {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        assert!(acc > 0.55, "edge-sign oracle accuracy only {acc}");
    }

    #[test]
    fn train_and_test_are_disjoint() {
        let ds = primekg_like(&PrimeKgConfig::tiny());
        for t in &ds.test {
            assert!(!ds.train.contains(t));
        }
    }
}
