//! Dataset summary statistics — regenerates the paper's Table II.

use crate::types::Dataset;
use serde::Serialize;

/// One row of Table II plus split sizes.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of node types.
    pub node_types: usize,
    /// Number of edge types.
    pub edge_types: usize,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Target-link class count.
    pub classes: usize,
    /// Training-link count.
    pub train_links: usize,
    /// Test-link count.
    pub test_links: usize,
    /// Mean node degree.
    pub mean_degree: f64,
}

/// Compute summary statistics for a dataset.
pub fn dataset_stats(ds: &Dataset) -> DatasetStats {
    DatasetStats {
        name: ds.name.to_string(),
        node_types: ds.graph.num_node_types(),
        edge_types: ds.graph.num_edge_types(),
        nodes: ds.graph.num_nodes(),
        edges: ds.graph.num_edges(),
        classes: ds.num_classes,
        train_links: ds.train.len(),
        test_links: ds.test.len(),
        mean_degree: ds.graph.mean_degree(),
    }
}

/// Render stats rows as an aligned text table (Table II shape).
pub fn format_table(rows: &[DatasetStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>11} {:>11} {:>8} {:>9} {:>8} {:>7} {:>6}\n",
        "Dataset", "#NodeTypes", "#EdgeTypes", "#Nodes", "#Edges", "#Classes", "#Train", "#Test"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>11} {:>11} {:>8} {:>9} {:>8} {:>7} {:>6}\n",
            r.name,
            r.node_types,
            r.edge_types,
            r.nodes,
            r.edges,
            r.classes,
            r.train_links,
            r.test_links
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cora::{cora_like, CoraConfig};
    use crate::wn18::{wn18_like, Wn18Config};

    #[test]
    fn stats_reflect_dataset() {
        let ds = wn18_like(&Wn18Config::tiny());
        let s = dataset_stats(&ds);
        assert_eq!(s.name, "wn18-like");
        assert_eq!(s.nodes, ds.graph.num_nodes());
        assert_eq!(s.edges, ds.graph.num_edges());
        assert_eq!(s.train_links, ds.train.len());
        assert!(s.mean_degree > 0.0);
    }

    #[test]
    fn table_contains_every_dataset_row() {
        let rows = vec![
            dataset_stats(&wn18_like(&Wn18Config::tiny())),
            dataset_stats(&cora_like(&CoraConfig::tiny())),
        ];
        let table = format_table(&rows);
        assert!(table.contains("wn18-like"));
        assert!(table.contains("cora-like"));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn stats_serialize_to_json() {
        let ds = cora_like(&CoraConfig::tiny());
        let s = dataset_stats(&ds);
        let json = serde_json::to_string(&s).expect("serialize");
        assert!(json.contains("\"name\":\"cora-like\""));
    }
}
