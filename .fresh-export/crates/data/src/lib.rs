//! # amdgcnn-data
//!
//! Synthetic knowledge-graph datasets standing in for the four benchmarks
//! of the paper (PrimeKG, OGBL-BioKG, WordNet-18, Cora). Each generator
//! plants a class signal with the same *location* as its real counterpart —
//! on the edge attributes for the knowledge graphs, on node types and
//! topology for Cora — so the paper's qualitative results (where AM-DGCNN
//! wins and by how much) reproduce without the multi-gigabyte originals.
//! See DESIGN.md §1 for the substitution rationale.

#![warn(missing_docs)]

pub mod biokg;
pub mod cora;
pub mod primekg;
pub mod stats;
pub mod types;
pub mod wn18;

pub use biokg::{biokg_like, BioKgConfig};
pub use cora::{cora_like, CoraConfig};
pub use primekg::{primekg_like, PrimeKgConfig};
pub use stats::{dataset_stats, format_table, DatasetStats};
pub use types::{DataError, Dataset, EdgeAttrTable, LabeledLink};
pub use wn18::{wn18_like, Wn18Config};
