//! Cora-like citation network (Planetoid repository analogue).
//!
//! A clustered citation graph: 2708 papers in 7 topic classes, ~5429
//! undirected citations, a single edge type and **no edge attributes**. The
//! task is binary link prediction (existing citation vs sampled non-edge)
//! with an 80/20 train-test split, exactly the benchmark the paper uses to
//! compare GAT-vs-GCN message passing when edge features cannot help (§IV).
//!
//! Generation note: citation networks are strongly *locally clustered*
//! (papers cite within tight research threads), and that clustering is the
//! signal SEAL-style link predictors live on — with the target edge hidden,
//! a true citation pair still shares neighbors, a random non-edge does not.
//! A flat stochastic block model at Cora's density (mean degree 4 over
//! 387-node classes) has essentially no triangles and makes the task
//! information-free, so we generate *communities* (research threads of
//! ~12 papers, each belonging to one topic class) with dense intra-community
//! citation and sparse global links.

use crate::types::{sample_non_edges, shuffle, Dataset, EdgeAttrTable, LabeledLink};
use amdgcnn_graph::{GraphBuilder, NeighborhoodMode, SubgraphConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashSet;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoraConfig {
    /// Paper-node count (Cora has 2708).
    pub num_nodes: usize,
    /// Topic-class count (Cora has 7).
    pub num_classes: usize,
    /// Citation count (Cora has 5429).
    pub num_edges: usize,
    /// Research-thread (community) size.
    pub community_size: usize,
    /// Probability a citation stays within its community.
    pub intra_community_prob: f64,
    /// Fraction of links used for training (paper: 80/20).
    pub train_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoraConfig {
    fn default() -> Self {
        Self {
            num_nodes: 2708,
            num_classes: 7,
            num_edges: 5429,
            community_size: 12,
            intra_community_prob: 0.8,
            train_fraction: 0.8,
            seed: 0xC04A,
        }
    }
}

impl CoraConfig {
    /// Miniature preset for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_nodes: 300,
            num_edges: 650,
            ..Self::default()
        }
    }
}

/// Generate a Cora-like dataset. Link classes: 0 = non-edge, 1 = edge.
pub fn cora_like(cfg: &CoraConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.num_nodes;

    // Communities (research threads); each community carries one topic
    // class, which becomes the node type the SEAL pipeline one-hot encodes.
    let num_communities = n.div_ceil(cfg.community_size);
    let community_class: Vec<u16> = (0..num_communities)
        .map(|_| rng.random_range(0..cfg.num_classes) as u16)
        .collect();
    let community_of = |node: usize| node / cfg.community_size;
    let topic: Vec<u16> = (0..n).map(|i| community_class[community_of(i)]).collect();
    let mut b = GraphBuilder::with_node_types(topic);

    let mut taken: HashSet<(u32, u32)> = HashSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cfg.num_edges);
    while edges.len() < cfg.num_edges {
        let u = rng.random_range(0..n as u32);
        let v = if rng.random::<f64>() < cfg.intra_community_prob {
            let com = community_of(u as usize);
            let base = com * cfg.community_size;
            let size = cfg.community_size.min(n - base);
            (base + rng.random_range(0..size)) as u32
        } else {
            rng.random_range(0..n as u32)
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if taken.insert(key) {
            b.add_edge(key.0, key.1, 0);
            edges.push(key);
        }
    }
    let graph = b.build();

    // Positives: the citations themselves. Negatives: equally many sampled
    // non-edges.
    let negatives = sample_non_edges(&graph, edges.len(), &edges, &mut rng);
    let mut pool: Vec<LabeledLink> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in &edges {
        pool.push(LabeledLink { u, v, class: 1 });
    }
    for &(u, v) in &negatives {
        pool.push(LabeledLink { u, v, class: 0 });
    }
    shuffle(&mut pool, &mut rng);
    let train_size = (pool.len() as f64 * cfg.train_fraction) as usize;
    let test = pool.split_off(train_size);
    let train = pool;

    let dataset = Dataset {
        name: "cora-like",
        graph,
        edge_attrs: EdgeAttrTable::none(),
        num_classes: 2,
        train,
        test,
        subgraph: SubgraphConfig {
            hops: 2,
            mode: NeighborhoodMode::Union,
            max_nodes_per_hop: Some(30),
            seed: cfg.seed,
        },
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_spec() {
        let ds = cora_like(&CoraConfig::tiny());
        assert!(ds.graph.num_node_types() <= 7);
        assert_eq!(
            ds.graph.num_edge_types(),
            1,
            "Cora has a uniform edge topology"
        );
        assert_eq!(ds.edge_attrs.dim(), 0, "no edge attributes");
        assert_eq!(ds.num_classes, 2);
        assert_eq!(ds.graph.num_edges(), 650);
    }

    #[test]
    fn default_scale_matches_real_cora() {
        let ds = cora_like(&CoraConfig::default());
        assert_eq!(ds.graph.num_nodes(), 2708);
        assert_eq!(ds.graph.num_edges(), 5429);
        assert_eq!(ds.graph.num_node_types(), 7);
    }

    #[test]
    fn split_is_80_20() {
        let ds = cora_like(&CoraConfig::tiny());
        let total = ds.train.len() + ds.test.len();
        assert_eq!(total, 2 * 650, "positives plus equal negatives");
        let frac = ds.train.len() as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.01, "train fraction {frac}");
    }

    #[test]
    fn positive_links_are_edges_negatives_are_not() {
        let ds = cora_like(&CoraConfig::tiny());
        for l in ds.train.iter().chain(ds.test.iter()) {
            if l.class == 1 {
                assert!(
                    ds.graph.has_edge(l.u, l.v),
                    "positive ({},{}) missing",
                    l.u,
                    l.v
                );
            } else {
                assert!(
                    !ds.graph.has_edge(l.u, l.v),
                    "negative ({},{}) is an edge",
                    l.u,
                    l.v
                );
            }
        }
    }

    #[test]
    fn homophily_is_planted() {
        // Most citations stay within a topic class — the signal both GNNs
        // can learn from node types + topology.
        let ds = cora_like(&CoraConfig::default());
        let intra = ds
            .graph
            .edges()
            .iter()
            .filter(|e| ds.graph.node_type(e.u) == ds.graph.node_type(e.v))
            .count();
        let frac = intra as f64 / ds.graph.num_edges() as f64;
        assert!(frac > 0.7, "intra-class citation fraction only {frac}");
    }

    #[test]
    fn clustering_makes_positives_distinguishable() {
        // The load-bearing property: with the target edge hidden, positive
        // pairs still share neighbors far more often than negative pairs.
        let ds = cora_like(&CoraConfig::default());
        let common = |u: u32, v: u32| amdgcnn_graph::heuristics::common_neighbors(&ds.graph, u, v);
        let pos_with_cn = ds
            .test
            .iter()
            .filter(|l| l.class == 1 && common(l.u, l.v) >= 1.0)
            .count() as f64;
        let pos_total = ds.test.iter().filter(|l| l.class == 1).count() as f64;
        let neg_with_cn = ds
            .test
            .iter()
            .filter(|l| l.class == 0 && common(l.u, l.v) >= 1.0)
            .count() as f64;
        let neg_total = ds.test.iter().filter(|l| l.class == 0).count() as f64;
        let pos_rate = pos_with_cn / pos_total;
        let neg_rate = neg_with_cn / neg_total;
        assert!(
            pos_rate > neg_rate + 0.3,
            "positives share neighbors at {pos_rate}, negatives at {neg_rate}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = cora_like(&CoraConfig::tiny());
        let b = cora_like(&CoraConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn class_balance_is_even() {
        let ds = cora_like(&CoraConfig::tiny());
        let all: Vec<_> = ds.train.iter().chain(ds.test.iter()).collect();
        let pos = all.iter().filter(|l| l.class == 1).count();
        assert_eq!(pos * 2, all.len(), "positives and negatives must balance");
    }
}
