//! Shared dataset types: labeled links, train/test splits, and the
//! [`Dataset`] bundle consumed by the SEAL pipeline.

use amdgcnn_graph::{KnowledgeGraph, SubgraphConfig};
use rand::{rngs::StdRng, RngExt};

/// One labeled target link for classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledLink {
    /// One endpoint.
    pub u: u32,
    /// Other endpoint.
    pub v: u32,
    /// Class index in `0..num_classes`.
    pub class: usize,
}

/// Typed rejection of a malformed dataset. Returned by the fallible
/// validation/construction paths ([`Dataset::try_validate`],
/// [`EdgeAttrTable::try_from_rows`]) so loaders fed untrusted files can
/// refuse bad data without crashing; the panicking counterparts delegate
/// to these.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// The dataset's graph has no nodes: nothing can be trained or served.
    EmptyGraph,
    /// A split link names a node beyond the graph.
    LinkOutOfRange {
        /// Split name (`"train"` / `"test"`).
        split: &'static str,
        /// One endpoint.
        u: u32,
        /// Other endpoint.
        v: u32,
        /// Nodes present in the graph.
        num_nodes: usize,
    },
    /// A split link joins a node to itself.
    SelfLink {
        /// Split name.
        split: &'static str,
        /// The node linked to itself.
        node: u32,
    },
    /// A split link carries a class id at or beyond `num_classes`.
    ClassOutOfRange {
        /// Split name.
        split: &'static str,
        /// The offending class id.
        class: usize,
        /// Classes the dataset declares.
        num_classes: usize,
    },
    /// An edge-attribute row's width differs from the table's.
    RaggedAttrRow {
        /// Row (edge type) index.
        row: usize,
        /// Width of the first row.
        expected: usize,
        /// Width actually found.
        got: usize,
    },
    /// An edge attribute is NaN or infinite — it would poison every
    /// forward pass touching an edge of that type.
    NonFiniteAttr {
        /// Row (edge type) index.
        row: usize,
        /// Column within the row.
        col: usize,
    },
    /// The attribute table covers fewer edge types than the graph uses.
    AttrTableTooSmall {
        /// Edge types the table covers.
        covered: usize,
        /// Edge types the graph uses.
        required: usize,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DataError::EmptyGraph => write!(f, "dataset graph has no nodes"),
            DataError::LinkOutOfRange {
                split,
                u,
                v,
                num_nodes,
            } => write!(
                f,
                "{split}: link ({u},{v}) out of range (graph has {num_nodes} nodes)"
            ),
            DataError::SelfLink { split, node } => {
                write!(f, "{split}: self-link on node {node}")
            }
            DataError::ClassOutOfRange {
                split,
                class,
                num_classes,
            } => write!(
                f,
                "{split}: class {class} out of range (dataset has {num_classes})"
            ),
            DataError::RaggedAttrRow { row, expected, got } => write!(
                f,
                "ragged edge-attr table: row {row} has width {got}, expected {expected}"
            ),
            DataError::NonFiniteAttr { row, col } => {
                write!(f, "non-finite edge attribute at row {row}, column {col}")
            }
            DataError::AttrTableTooSmall { covered, required } => write!(
                f,
                "edge-attr table covers {covered} types but graph has {required}"
            ),
        }
    }
}

impl std::error::Error for DataError {}

/// Per-edge-type attribute vectors: row `etype` is the attribute the models
/// see for edges of that type. Empty (`dim == 0`) means the dataset carries
/// no usable edge attributes (Cora).
#[derive(Debug, Clone)]
pub struct EdgeAttrTable {
    dim: usize,
    rows: Vec<Vec<f32>>,
}

impl EdgeAttrTable {
    /// Identity table: type `t` → one-hot of width `num_types`.
    pub fn one_hot(num_types: usize) -> Self {
        let rows = (0..num_types)
            .map(|t| {
                let mut r = vec![0.0; num_types];
                r[t] = 1.0;
                r
            })
            .collect();
        Self {
            dim: num_types,
            rows,
        }
    }

    /// Explicit table from rows (all must share a width).
    ///
    /// # Panics
    /// Panics on ragged or non-finite rows (see
    /// [`try_from_rows`](Self::try_from_rows) for the fallible form).
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        Self::try_from_rows(rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`from_rows`](Self::from_rows): validates that every row
    /// shares one width and every attribute is finite, so a corrupt or
    /// hand-edited attribute file is reported instead of poisoning training.
    ///
    /// # Errors
    /// [`DataError::RaggedAttrRow`] on the first width mismatch,
    /// [`DataError::NonFiniteAttr`] on the first NaN/∞ entry.
    pub fn try_from_rows(rows: Vec<Vec<f32>>) -> Result<Self, DataError> {
        let dim = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(DataError::RaggedAttrRow {
                    row: i,
                    expected: dim,
                    got: r.len(),
                });
            }
            if let Some(col) = r.iter().position(|v| !v.is_finite()) {
                return Err(DataError::NonFiniteAttr { row: i, col });
            }
        }
        Ok(Self { dim, rows })
    }

    /// Empty table (no edge attributes).
    pub fn none() -> Self {
        Self {
            dim: 0,
            rows: Vec::new(),
        }
    }

    /// Attribute width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of edge types covered.
    pub fn num_types(&self) -> usize {
        self.rows.len()
    }

    /// Attribute row for an edge type.
    pub fn row(&self, etype: u16) -> &[f32] {
        &self.rows[etype as usize]
    }
}

/// A complete benchmark dataset: graph, labeled splits, attribute encoding,
/// and the subgraph-extraction settings the paper prescribes for it.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short dataset name (e.g. `"primekg-like"`).
    pub name: &'static str,
    /// The knowledge graph.
    pub graph: KnowledgeGraph,
    /// Edge-type → attribute-vector table.
    pub edge_attrs: EdgeAttrTable,
    /// Number of target-link classes.
    pub num_classes: usize,
    /// Training links.
    pub train: Vec<LabeledLink>,
    /// Held-out test links.
    pub test: Vec<LabeledLink>,
    /// Recommended enclosing-subgraph settings (hops, union/intersection,
    /// per-hop cap) per the paper's §III-A.
    pub subgraph: SubgraphConfig,
}

impl Dataset {
    /// Class histogram over a split.
    pub fn class_histogram(links: &[LabeledLink], num_classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; num_classes];
        for l in links {
            hist[l.class] += 1;
        }
        hist
    }

    /// Sanity-check internal consistency (used by generators' tests and the
    /// pipeline before training).
    ///
    /// # Panics
    /// Panics on the first inconsistency (see
    /// [`try_validate`](Self::try_validate) for the fallible form loaders
    /// of untrusted data should use).
    pub fn validate(&self) {
        self.try_validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`validate`](Self::validate): checks that the graph is
    /// non-empty, every split link has in-range endpoints, no self-links,
    /// in-range classes, and that the edge-attribute table covers every
    /// edge type with finite values.
    ///
    /// # Errors
    /// The first [`DataError`] found, in the order listed above.
    pub fn try_validate(&self) -> Result<(), DataError> {
        if self.graph.num_nodes() == 0 {
            return Err(DataError::EmptyGraph);
        }
        let n = self.graph.num_nodes() as u32;
        for (split, links) in [("train", &self.train), ("test", &self.test)] {
            for l in links {
                if l.u >= n || l.v >= n {
                    return Err(DataError::LinkOutOfRange {
                        split,
                        u: l.u,
                        v: l.v,
                        num_nodes: n as usize,
                    });
                }
                if l.u == l.v {
                    return Err(DataError::SelfLink { split, node: l.u });
                }
                if l.class >= self.num_classes {
                    return Err(DataError::ClassOutOfRange {
                        split,
                        class: l.class,
                        num_classes: self.num_classes,
                    });
                }
            }
        }
        if self.edge_attrs.dim() > 0 {
            if self.edge_attrs.num_types() < self.graph.num_edge_types() {
                return Err(DataError::AttrTableTooSmall {
                    covered: self.edge_attrs.num_types(),
                    required: self.graph.num_edge_types(),
                });
            }
            for t in 0..self.edge_attrs.num_types() {
                if let Some(col) = self
                    .edge_attrs
                    .row(t as u16)
                    .iter()
                    .position(|v| !v.is_finite())
                {
                    return Err(DataError::NonFiniteAttr { row: t, col });
                }
            }
        }
        Ok(())
    }
}

/// Deterministically shuffle-and-split a pool of labeled links into train
/// and test sets of the requested sizes, keeping per-class proportions by
/// interleaving classes.
pub fn split_links(
    mut pool: Vec<LabeledLink>,
    train_size: usize,
    test_size: usize,
    num_classes: usize,
    rng: &mut StdRng,
) -> (Vec<LabeledLink>, Vec<LabeledLink>) {
    shuffle(&mut pool, rng);
    // Round-robin over classes so both splits stay balanced even when the
    // pool is skewed.
    let mut by_class: Vec<Vec<LabeledLink>> = vec![Vec::new(); num_classes];
    for l in pool {
        by_class[l.class].push(l);
    }
    let mut interleaved = Vec::new();
    let mut cursor = vec![0usize; num_classes];
    loop {
        let mut advanced = false;
        for c in 0..num_classes {
            if cursor[c] < by_class[c].len() {
                interleaved.push(by_class[c][cursor[c]]);
                cursor[c] += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    assert!(
        interleaved.len() >= train_size + test_size,
        "link pool has {} candidates but {} requested",
        interleaved.len(),
        train_size + test_size
    );
    let train = interleaved[..train_size].to_vec();
    let test = interleaved[train_size..train_size + test_size].to_vec();
    (train, test)
}

/// Fisher–Yates shuffle driven by the given RNG (kept local so splits don't
/// depend on `rand`'s slice extensions).
pub fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// Sample `count` distinct node pairs that are *not* adjacent in `g` and not
/// already present in `taken` (negative sampling for link prediction).
pub fn sample_non_edges(
    g: &KnowledgeGraph,
    count: usize,
    taken: &[(u32, u32)],
    rng: &mut StdRng,
) -> Vec<(u32, u32)> {
    use std::collections::HashSet;
    let mut seen: HashSet<(u32, u32)> = taken
        .iter()
        .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
        .collect();
    let n = g.num_nodes() as u32;
    assert!(n >= 2, "graph too small for negative sampling");
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        assert!(
            attempts < count * 1000 + 10_000,
            "negative sampling failed to find enough non-edges"
        );
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.contains(&key) || g.has_edge(u, v) {
            continue;
        }
        seen.insert(key);
        out.push(key);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn one_hot_table() {
        let t = EdgeAttrTable::one_hot(3);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.row(1), &[0.0, 1.0, 0.0]);
        assert_eq!(t.num_types(), 3);
    }

    #[test]
    fn none_table_is_empty() {
        let t = EdgeAttrTable::none();
        assert_eq!(t.dim(), 0);
        assert_eq!(t.num_types(), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_rejected() {
        let _ = EdgeAttrTable::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn try_from_rows_reports_ragged_and_non_finite() {
        assert_eq!(
            EdgeAttrTable::try_from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            DataError::RaggedAttrRow {
                row: 1,
                expected: 1,
                got: 2
            }
        );
        assert_eq!(
            EdgeAttrTable::try_from_rows(vec![vec![1.0, f32::NAN]]).unwrap_err(),
            DataError::NonFiniteAttr { row: 0, col: 1 }
        );
        assert_eq!(
            EdgeAttrTable::try_from_rows(vec![vec![f32::INFINITY]]).unwrap_err(),
            DataError::NonFiniteAttr { row: 0, col: 0 }
        );
        let t = EdgeAttrTable::try_from_rows(vec![vec![0.5, -1.0]]).expect("valid");
        assert_eq!(t.dim(), 2);
    }

    #[test]
    fn try_validate_reports_each_defect() {
        use amdgcnn_graph::SubgraphConfig;
        let base = || Dataset {
            name: "test",
            graph: KnowledgeGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
            edge_attrs: EdgeAttrTable::one_hot(1),
            num_classes: 2,
            train: vec![LabeledLink {
                u: 0,
                v: 2,
                class: 0,
            }],
            test: vec![LabeledLink {
                u: 1,
                v: 3,
                class: 1,
            }],
            subgraph: SubgraphConfig::default(),
        };
        assert_eq!(base().try_validate(), Ok(()));

        let mut ds = base();
        ds.graph = KnowledgeGraph::from_edges(1, &[]);
        ds.train = vec![LabeledLink {
            u: 0,
            v: 9,
            class: 0,
        }];
        assert_eq!(
            ds.try_validate(),
            Err(DataError::LinkOutOfRange {
                split: "train",
                u: 0,
                v: 9,
                num_nodes: 1
            })
        );

        let mut ds = base();
        ds.test = vec![LabeledLink {
            u: 2,
            v: 2,
            class: 0,
        }];
        assert_eq!(
            ds.try_validate(),
            Err(DataError::SelfLink {
                split: "test",
                node: 2
            })
        );

        let mut ds = base();
        ds.train[0].class = 7;
        assert_eq!(
            ds.try_validate(),
            Err(DataError::ClassOutOfRange {
                split: "train",
                class: 7,
                num_classes: 2
            })
        );

        let mut ds = base();
        ds.graph = {
            let mut b = amdgcnn_graph::GraphBuilder::new(4);
            b.add_edge(0, 1, 0);
            b.add_edge(1, 2, 3); // four edge types, table covers one
            b.build()
        };
        assert_eq!(
            ds.try_validate(),
            Err(DataError::AttrTableTooSmall {
                covered: 1,
                required: 4
            })
        );

        let mut ds = base();
        ds.graph = KnowledgeGraph::from_edges(0, &[]);
        ds.train.clear();
        ds.test.clear();
        assert_eq!(ds.try_validate(), Err(DataError::EmptyGraph));
    }

    #[test]
    fn split_sizes_and_balance() {
        let mut rng = StdRng::seed_from_u64(0);
        let pool: Vec<LabeledLink> = (0..300)
            .map(|i| LabeledLink {
                u: i,
                v: i + 1000,
                class: (i % 3) as usize,
            })
            .collect();
        let (train, test) = split_links(pool, 90, 30, 3, &mut rng);
        assert_eq!(train.len(), 90);
        assert_eq!(test.len(), 30);
        let h = Dataset::class_histogram(&train, 3);
        assert_eq!(h, vec![30, 30, 30], "round-robin keeps classes balanced");
        // Train and test are disjoint.
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    fn split_is_deterministic() {
        let pool: Vec<LabeledLink> = (0..100)
            .map(|i| LabeledLink {
                u: i,
                v: i + 500,
                class: (i % 2) as usize,
            })
            .collect();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = split_links(pool.clone(), 40, 20, 2, &mut r1);
        let b = split_links(pool, 40, 20, 2, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "link pool")]
    fn split_rejects_oversubscription() {
        let mut rng = StdRng::seed_from_u64(0);
        let pool: Vec<LabeledLink> = (0..10)
            .map(|i| LabeledLink {
                u: i,
                v: i + 50,
                class: 0,
            })
            .collect();
        let _ = split_links(pool, 8, 8, 1, &mut rng);
    }

    #[test]
    fn non_edges_are_really_non_edges() {
        let g = KnowledgeGraph::from_edges(20, &[(0, 1), (1, 2), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(1);
        let negs = sample_non_edges(&g, 15, &[], &mut rng);
        assert_eq!(negs.len(), 15);
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &negs {
            assert!(u < v);
            assert!(!g.has_edge(u, v), "({u},{v}) is an edge");
            assert!(seen.insert((u, v)), "duplicate pair");
        }
    }

    #[test]
    fn non_edges_respect_taken_list() {
        let g = KnowledgeGraph::from_edges(6, &[(0, 1)]);
        let taken: Vec<(u32, u32)> = vec![(2, 3), (4, 5)];
        let mut rng = StdRng::seed_from_u64(2);
        let negs = sample_non_edges(&g, 5, &taken, &mut rng);
        for &(u, v) in &negs {
            assert!(!taken.contains(&(u, v)));
        }
    }
}
