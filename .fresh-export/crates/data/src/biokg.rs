//! OGBL-BioKG-like synthetic biological knowledge graph.
//!
//! Mirrors the properties the paper uses (§IV): 5 node types, 51 relation
//! types, and a 7-way protein–protein link-classification task whose
//! bottleneck is the *tiny number of labeled target links*.
//!
//! Planted signal: every protein belongs to one of 7 latent families. A
//! protein's family is advertised by the relation types of its edges to
//! function nodes (relation `8 + family`, with a small noise rate), and
//! protein–protein target links connect same-family proteins with relation
//! type = family (the 7 classes). An edge-type-blind model can only exploit
//! the mild clustering that within-family linking induces, which is the
//! paper's vanilla-DGCNN ≈ 0.66 AUC regime.

use crate::types::{split_links, Dataset, EdgeAttrTable, LabeledLink};
use amdgcnn_graph::{GraphBuilder, NeighborhoodMode, SubgraphConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashSet;

/// Node-type tags.
pub mod node_type {
    /// Protein nodes (the target-link endpoints).
    pub const PROTEIN: u16 = 0;
    /// Drug nodes.
    pub const DRUG: u16 = 1;
    /// Disease nodes.
    pub const DISEASE: u16 = 2;
    /// Molecular-function nodes.
    pub const FUNCTION: u16 = 3;
    /// Side-effect nodes.
    pub const SIDE_EFFECT: u16 = 4;
}

/// Number of protein families = number of target-link classes.
pub const NUM_FAMILIES: usize = 7;
/// Number of relation types.
pub const NUM_RELATIONS: usize = 51;
/// First protein–function relation id; relation `FUNCTION_REL_BASE + f`
/// advertises family `f`.
pub const FUNCTION_REL_BASE: u16 = 8;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct BioKgConfig {
    /// Protein-node count.
    pub num_proteins: usize,
    /// Drug-node count.
    pub num_drugs: usize,
    /// Disease-node count.
    pub num_diseases: usize,
    /// Function-node count.
    pub num_functions: usize,
    /// Side-effect-node count.
    pub num_side_effects: usize,
    /// Protein→function degree range (inclusive).
    pub function_degree: (usize, usize),
    /// Probability a protein–function edge carries a random (wrong-family)
    /// relation type.
    pub function_noise: f64,
    /// Probability a *background* protein–protein edge carries a random
    /// relation type instead of its family's (evidence noise; target links
    /// always keep their exact class relation).
    pub pp_relation_noise: f64,
    /// Probability a *labeled target link* carries a random class instead
    /// of the family class. This is the irreducible noise that caps model
    /// accuracy — the paper's BioKG ceiling (AM-DGCNN ≈ 0.80 AUC) comes
    /// from exactly this scarce/noisy-label regime (§IV).
    pub label_noise: f64,
    /// Within-family protein–protein links per family beyond the labeled
    /// pool (background evidence).
    pub background_links_per_family: usize,
    /// Training-link count (kept small on purpose — the dataset's
    /// bottleneck per §IV).
    pub train_links: usize,
    /// Test-link count.
    pub test_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BioKgConfig {
    fn default() -> Self {
        Self {
            num_proteins: 900,
            num_drugs: 300,
            num_diseases: 300,
            num_functions: 250,
            num_side_effects: 250,
            function_degree: (1, 3),
            function_noise: 0.45,
            pp_relation_noise: 0.35,
            label_noise: 0.30,
            background_links_per_family: 800,
            train_links: 360,
            test_links: 120,
            seed: 0xb1046,
        }
    }
}

impl BioKgConfig {
    /// Miniature preset for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_proteins: 140,
            num_drugs: 40,
            num_diseases: 40,
            num_functions: 40,
            num_side_effects: 40,
            background_links_per_family: 20,
            train_links: 70,
            test_links: 28,
            ..Self::default()
        }
    }
}

/// Generate an OGBL-BioKG-like dataset.
pub fn biokg_like(cfg: &BioKgConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let np = cfg.num_proteins;
    let (ndr, ndi, nf, ns) = (
        cfg.num_drugs,
        cfg.num_diseases,
        cfg.num_functions,
        cfg.num_side_effects,
    );

    let mut node_types = Vec::new();
    node_types.extend(std::iter::repeat_n(node_type::PROTEIN, np));
    node_types.extend(std::iter::repeat_n(node_type::DRUG, ndr));
    node_types.extend(std::iter::repeat_n(node_type::DISEASE, ndi));
    node_types.extend(std::iter::repeat_n(node_type::FUNCTION, nf));
    node_types.extend(std::iter::repeat_n(node_type::SIDE_EFFECT, ns));
    let mut b = GraphBuilder::with_node_types(node_types);

    let protein_id = |p: usize| p as u32;
    let drug_id = |d: usize| (np + d) as u32;
    let disease_id = |z: usize| (np + ndr + z) as u32;
    let function_id = |f: usize| (np + ndr + ndi + f) as u32;
    let side_id = |s: usize| (np + ndr + ndi + nf + s) as u32;

    // Latent protein families.
    let family: Vec<usize> = (0..np).map(|_| rng.random_range(0..NUM_FAMILIES)).collect();

    // Family-advertising protein–function edges.
    for (p, &fam) in family.iter().enumerate() {
        let deg = rng.random_range(cfg.function_degree.0..=cfg.function_degree.1);
        let mut chosen = HashSet::new();
        while chosen.len() < deg.min(nf) {
            chosen.insert(rng.random_range(0..nf));
        }
        for f in chosen {
            let rel = if rng.random::<f64>() < cfg.function_noise {
                FUNCTION_REL_BASE + rng.random_range(0..NUM_FAMILIES) as u16
            } else {
                FUNCTION_REL_BASE + fam as u16
            };
            b.add_edge(protein_id(p), function_id(f), rel);
        }
    }

    // Scaffold relations 15..=50 across the other node types.
    let scaffold = |rng: &mut StdRng,
                    b: &mut GraphBuilder,
                    etype: u16,
                    from: &dyn Fn(&mut StdRng) -> u32,
                    to: &dyn Fn(&mut StdRng) -> u32,
                    count: usize| {
        for _ in 0..count {
            let u = from(rng);
            let v = to(rng);
            if u != v {
                b.add_edge(u, v, etype);
            }
        }
    };
    let r_protein = move |r: &mut StdRng| protein_id(r.random_range(0..np));
    let r_drug = move |r: &mut StdRng| drug_id(r.random_range(0..ndr));
    let r_disease = move |r: &mut StdRng| disease_id(r.random_range(0..ndi));
    let r_function = move |r: &mut StdRng| function_id(r.random_range(0..nf));
    let r_side = move |r: &mut StdRng| side_id(r.random_range(0..ns));
    let c = (np / 3).max(8);
    for rel in 15..=20u16 {
        scaffold(&mut rng, &mut b, rel, &r_drug, &r_protein, c);
    }
    for rel in 21..=26u16 {
        scaffold(&mut rng, &mut b, rel, &r_drug, &r_disease, c);
    }
    for rel in 27..=32u16 {
        scaffold(&mut rng, &mut b, rel, &r_disease, &r_protein, c);
    }
    for rel in 33..=38u16 {
        scaffold(&mut rng, &mut b, rel, &r_drug, &r_side, c);
    }
    for rel in 39..=44u16 {
        scaffold(&mut rng, &mut b, rel, &r_disease, &r_function, c / 2);
    }
    for rel in 45..=47u16 {
        scaffold(&mut rng, &mut b, rel, &r_drug, &r_drug, c / 2);
    }
    for rel in 48..=50u16 {
        scaffold(&mut rng, &mut b, rel, &r_disease, &r_disease, c / 2);
    }

    // Protein–protein links, within family only; relation type = family =
    // class. A background population plus the labeled pool.
    let mut per_family: Vec<Vec<usize>> = vec![Vec::new(); NUM_FAMILIES];
    for (p, &f) in family.iter().enumerate() {
        per_family[f].push(p);
    }
    let mut taken: HashSet<(u32, u32)> = HashSet::new();
    let mut sample_pair = |rng: &mut StdRng, members: &[usize]| -> Option<(u32, u32)> {
        if members.len() < 2 {
            return None;
        }
        for _ in 0..64 {
            let a = members[rng.random_range(0..members.len())];
            let bb = members[rng.random_range(0..members.len())];
            if a == bb {
                continue;
            }
            let key = if a < bb {
                (a as u32, bb as u32)
            } else {
                (bb as u32, a as u32)
            };
            if taken.insert(key) {
                return Some(key);
            }
        }
        None
    };

    for (f, members) in per_family.iter().enumerate() {
        for _ in 0..cfg.background_links_per_family {
            if let Some((u, v)) = sample_pair(&mut rng, members) {
                let rel = if rng.random::<f64>() < cfg.pp_relation_noise {
                    rng.random_range(0..NUM_FAMILIES) as u16
                } else {
                    f as u16
                };
                b.add_edge(u, v, rel);
            }
        }
    }
    let mut pool: Vec<LabeledLink> = Vec::new();
    let want = (cfg.train_links + cfg.test_links) * 2;
    'outer: for round in 0..want {
        let f = round % NUM_FAMILIES;
        if let Some((u, v)) = sample_pair(&mut rng, &per_family[f]) {
            // Label noise: the recorded relation (and hence the class to
            // predict) sometimes disagrees with the family evidence.
            let class = if rng.random::<f64>() < cfg.label_noise {
                rng.random_range(0..NUM_FAMILIES)
            } else {
                f
            };
            b.add_edge(u, v, class as u16);
            pool.push(LabeledLink { u, v, class });
            if pool.len() >= want {
                break 'outer;
            }
        }
    }

    let (train, test) = split_links(
        pool,
        cfg.train_links,
        cfg.test_links,
        NUM_FAMILIES,
        &mut rng,
    );

    let dataset = Dataset {
        name: "biokg-like",
        graph: b.build(),
        edge_attrs: EdgeAttrTable::one_hot(NUM_RELATIONS),
        num_classes: NUM_FAMILIES,
        train,
        test,
        subgraph: SubgraphConfig {
            hops: 2,
            mode: NeighborhoodMode::Union,
            max_nodes_per_hop: Some(60),
            seed: cfg.seed,
        },
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_spec() {
        let ds = biokg_like(&BioKgConfig::tiny());
        assert_eq!(ds.graph.num_node_types(), 5);
        assert_eq!(ds.graph.num_edge_types(), NUM_RELATIONS);
        assert_eq!(ds.num_classes, 7);
        assert_eq!(ds.edge_attrs.dim(), 51);
        assert_eq!(ds.train.len(), 70);
        assert_eq!(ds.test.len(), 28);
    }

    #[test]
    fn target_links_join_proteins_and_match_relation() {
        let ds = biokg_like(&BioKgConfig::tiny());
        for l in ds.train.iter().chain(ds.test.iter()) {
            assert_eq!(ds.graph.node_type(l.u), node_type::PROTEIN);
            assert_eq!(ds.graph.node_type(l.v), node_type::PROTEIN);
            let eids = ds.graph.edges_between(l.u, l.v);
            assert!(eids
                .iter()
                .any(|&e| ds.graph.edge(e).etype == l.class as u16));
        }
    }

    #[test]
    fn function_relations_reveal_family() {
        // Oracle: dominant relation evidence (function relations plus
        // background protein–protein relations) of each endpoint predicts
        // the link class well above the 1/7 ≈ 0.14 chance rate. The 30%
        // target-label noise deliberately bounds any oracle around 0.7.
        let ds = biokg_like(&BioKgConfig::default());
        let family_of = |node: u32| -> usize {
            let mut votes = [0usize; NUM_FAMILIES];
            for &(nb, eid) in ds.graph.neighbors(node) {
                let rel = ds.graph.edge(eid).etype;
                match ds.graph.node_type(nb) {
                    node_type::FUNCTION
                        if (FUNCTION_REL_BASE..FUNCTION_REL_BASE + NUM_FAMILIES as u16)
                            .contains(&rel) =>
                    {
                        votes[(rel - FUNCTION_REL_BASE) as usize] += 1
                    }
                    node_type::PROTEIN if (rel as usize) < NUM_FAMILIES => votes[rel as usize] += 1,
                    _ => {}
                }
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(_, &v)| v)
                .map(|(f, _)| f)
                .unwrap_or(0)
        };
        let mut correct = 0usize;
        for l in &ds.test {
            if family_of(l.u) == l.class || family_of(l.v) == l.class {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.test.len() as f64;
        assert!(acc > 0.45, "relation-evidence oracle accuracy only {acc}");
    }

    #[test]
    fn classes_cover_all_families() {
        let ds = biokg_like(&BioKgConfig::default());
        let hist = Dataset::class_histogram(&ds.train, NUM_FAMILIES);
        for (f, &count) in hist.iter().enumerate() {
            assert!(
                count > 0,
                "family {f} missing from training split: {hist:?}"
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = biokg_like(&BioKgConfig::tiny());
        let b = biokg_like(&BioKgConfig::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn training_split_is_deliberately_small() {
        // The paper's BioKG bottleneck: few labeled target links relative to
        // graph size.
        let ds = biokg_like(&BioKgConfig::default());
        assert!(ds.train.len() < ds.graph.num_nodes() / 4);
    }
}
