//! WordNet-18-like synthetic lexical knowledge graph.
//!
//! Reproduces the property the paper leans on hardest (§IV, §V-C): a
//! *homogeneous* node set (one node type, no node features beyond DRNL) and
//! 18 edge classes, where the class of a link is recoverable **only** from
//! the edge classes around its endpoints — topology carries no signal.
//!
//! Planted signal: every word sense has a hidden semantic field `h ∈ 0..F`.
//! Edges connect uniformly random pairs (Erdős–Rényi — class-agnostic
//! topology) and carry relation `R[h_u][h_v]` from a fixed symmetric table
//! whose rows are distinguishable multisets, so a message-passing model can
//! infer a node's field from its incident edge classes and predict the
//! hidden link's class. An edge-blind model faces pure noise — the paper's
//! vanilla-DGCNN ≈ 0.52 "random guesser" result.

use crate::types::{split_links, Dataset, EdgeAttrTable, LabeledLink};
use amdgcnn_graph::{GraphBuilder, NeighborhoodMode, SubgraphConfig};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashSet;

/// Number of hidden semantic fields.
pub const NUM_FIELDS: usize = 7;
/// Number of relation classes (WordNet-18 has 18).
pub const NUM_RELATIONS: usize = 18;

/// The symmetric field-pair → relation-class table.
pub fn relation_table() -> [[u16; NUM_FIELDS]; NUM_FIELDS] {
    let mut r = [[0u16; NUM_FIELDS]; NUM_FIELDS];
    for (i, row) in r.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = ((i + j + i * j) % NUM_RELATIONS) as u16;
        }
    }
    r
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct Wn18Config {
    /// Word-sense node count.
    pub num_nodes: usize,
    /// Edge count.
    pub num_edges: usize,
    /// Probability a background edge carries a random relation instead of
    /// the table value (target links are always exact).
    pub relation_noise: f64,
    /// Training-link count.
    pub train_links: usize,
    /// Test-link count.
    pub test_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Wn18Config {
    fn default() -> Self {
        Self {
            num_nodes: 4000,
            num_edges: 16000,
            relation_noise: 0.08,
            train_links: 2600,
            test_links: 400,
            seed: 0x3218,
        }
    }
}

impl Wn18Config {
    /// Miniature preset for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_nodes: 200,
            num_edges: 800,
            train_links: 60,
            test_links: 20,
            ..Self::default()
        }
    }
}

/// Generate a WordNet-18-like dataset.
pub fn wn18_like(cfg: &Wn18Config) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.num_nodes;
    let table = relation_table();

    // Hidden semantic fields (never exposed: all nodes share type 0).
    let field: Vec<usize> = (0..n).map(|_| rng.random_range(0..NUM_FIELDS)).collect();
    let mut b = GraphBuilder::new(n);

    // Uniformly random distinct pairs — topology independent of fields.
    let mut taken: HashSet<(u32, u32)> = HashSet::new();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cfg.num_edges);
    while edges.len() < cfg.num_edges {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if taken.insert(key) {
            edges.push(key);
        }
    }

    // Reserve a labeled pool; those edges get their exact table relation,
    // background edges are noised.
    let pool_size = ((cfg.train_links + cfg.test_links) * 2).min(edges.len() / 2);
    let mut pool = Vec::with_capacity(pool_size);
    for (i, &(u, v)) in edges.iter().enumerate() {
        let exact = table[field[u as usize]][field[v as usize]];
        let etype = if i < pool_size {
            exact
        } else if rng.random::<f64>() < cfg.relation_noise {
            rng.random_range(0..NUM_RELATIONS) as u16
        } else {
            exact
        };
        b.add_edge(u, v, etype);
        if i < pool_size {
            pool.push(LabeledLink {
                u,
                v,
                class: exact as usize,
            });
        }
    }

    let (train, test) = split_links(
        pool,
        cfg.train_links,
        cfg.test_links,
        NUM_RELATIONS,
        &mut rng,
    );

    let dataset = Dataset {
        name: "wn18-like",
        graph: b.build(),
        edge_attrs: EdgeAttrTable::one_hot(NUM_RELATIONS),
        num_classes: NUM_RELATIONS,
        train,
        test,
        subgraph: SubgraphConfig {
            hops: 2,
            mode: NeighborhoodMode::Union,
            max_nodes_per_hop: Some(15),
            seed: cfg.seed,
        },
    };
    dataset.validate();
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_table_is_symmetric_with_distinguishable_rows() {
        let t = relation_table();
        for (i, row) in t.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, t[j][i]);
            }
        }
        // Row multisets must differ pairwise, otherwise fields are not
        // recoverable from incident relations.
        let row_multiset = |i: usize| {
            let mut v: Vec<u16> = t[i].to_vec();
            v.sort_unstable();
            v
        };
        for i in 0..NUM_FIELDS {
            for j in (i + 1)..NUM_FIELDS {
                assert_ne!(row_multiset(i), row_multiset(j), "rows {i} and {j} collide");
            }
        }
    }

    #[test]
    fn structure_matches_spec() {
        let ds = wn18_like(&Wn18Config::tiny());
        assert_eq!(
            ds.graph.num_node_types(),
            1,
            "WordNet nodes are homogeneous"
        );
        assert!(ds.graph.num_edge_types() <= NUM_RELATIONS);
        assert_eq!(ds.num_classes, NUM_RELATIONS);
        assert_eq!(ds.edge_attrs.dim(), NUM_RELATIONS);
        assert_eq!(ds.train.len(), 60);
        assert_eq!(ds.test.len(), 20);
    }

    #[test]
    fn target_links_exist_with_exact_relation() {
        let ds = wn18_like(&Wn18Config::tiny());
        for l in ds.train.iter().chain(ds.test.iter()) {
            let eids = ds.graph.edges_between(l.u, l.v);
            assert!(
                eids.iter()
                    .any(|&e| ds.graph.edge(e).etype == l.class as u16),
                "target link must carry its exact class relation"
            );
        }
    }

    #[test]
    fn edge_class_oracle_beats_chance_topology_oracle_does_not() {
        let cfg = Wn18Config::default();
        let ds = wn18_like(&cfg);
        let table = relation_table();

        // Edge-class oracle: vote for each endpoint's field from incident
        // relation classes, then look the pair up in the table.
        let field_of = |node: u32, skip: (u32, u32)| -> usize {
            let mut scores = [0i64; NUM_FIELDS];
            for &(_nb, eid) in ds.graph.neighbors(node) {
                let e = ds.graph.edge(eid);
                if (e.u.min(e.v), e.u.max(e.v)) == skip {
                    continue; // don't peek at the target link
                }
                let rel = e.etype;
                // A field is compatible when its table row contains `rel`.
                for (f, row) in table.iter().enumerate() {
                    if row.contains(&rel) {
                        scores[f] += 1;
                    }
                }
            }
            scores
                .iter()
                .enumerate()
                .max_by_key(|&(_, &s)| s)
                .map(|(f, _)| f)
                .unwrap_or(0)
        };
        let mut correct = 0usize;
        for l in &ds.test {
            let key = (l.u.min(l.v), l.u.max(l.v));
            let fu = field_of(l.u, key);
            let fv = field_of(l.v, key);
            if table[fu][fv] as usize == l.class {
                correct += 1;
            }
        }
        let edge_acc = correct as f64 / ds.test.len() as f64;
        assert!(
            edge_acc > 2.0 / NUM_RELATIONS as f64,
            "edge oracle accuracy {edge_acc} not above chance"
        );

        // Topology oracle: predict the majority class from degree product
        // buckets — must hover at chance because topology is field-blind.
        let hist = Dataset::class_histogram(&ds.train, NUM_RELATIONS);
        let majority = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(c, _)| c)
            .unwrap();
        let topo_correct = ds.test.iter().filter(|l| l.class == majority).count();
        let topo_acc = topo_correct as f64 / ds.test.len() as f64;
        assert!(
            edge_acc > topo_acc + 0.1,
            "edge oracle ({edge_acc}) must clearly beat topology/majority ({topo_acc})"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = wn18_like(&Wn18Config::tiny());
        let b = wn18_like(&Wn18Config::tiny());
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
