//! Artifact-integrity guarantees for the serving layer: any corruption of
//! an artifact (single byte flip, truncation, injected torn write) is
//! detected at load, and the [`ModelStore`]'s validated hot-swap refuses
//! every such candidate while the previous engine keeps serving.

use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_serve::{
    load_model, load_model_file, save_model, save_model_file, ArtifactMeta, InferenceEngine,
    ModelStore,
};
use amdgcnn_tensor::durable::DiskFault;
use amdgcnn_tensor::{Matrix, ParamStore};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn small_dataset() -> Dataset {
    wn18_like(&Wn18Config {
        num_nodes: 120,
        num_edges: 420,
        train_links: 60,
        test_links: 20,
        ..Default::default()
    })
}

fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "amdgcnn-artifact-integrity-{tag}-{}-{}.amdm",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Train briefly and return the artifact metadata, its serialized bytes,
/// and the trained parameters.
fn trained_artifact(ds: &Dataset, seed: u64) -> (ArtifactMeta, Vec<u8>, ParamStore) {
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        })
        .seed(seed)
        .build();
    let mut session = exp.session(ds, None).expect("session");
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 1)
        .expect("train");
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(ds, &session.model.cfg, &fcfg, 1).expect("meta");
    let mut buf = Vec::new();
    save_model(&meta, &session.ps, &mut buf).expect("save");
    (meta, buf, session.ps)
}

#[test]
fn every_byte_flip_in_a_real_artifact_is_rejected() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds, 9);
    // A real artifact is tens of kilobytes; stride keeps the test fast
    // while still covering header, metadata, CRC, and parameter regions.
    for pos in (0..artifact.len()).step_by(97) {
        let mut corrupt = artifact.clone();
        corrupt[pos] ^= 0x04;
        let err = load_model(corrupt.as_slice()).expect_err("corruption must be detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at byte {pos}");
    }
}

#[test]
fn torn_artifact_write_leaves_no_file_and_a_partial_flush_keeps_the_old_one() {
    let ds = small_dataset();
    let (meta, _, ps) = trained_artifact(&ds, 9);
    let path = scratch_path("torn");

    // A committed good artifact, then a torn overwrite: the renamed file is
    // truncated, so loading it must fail loudly rather than half-succeed.
    save_model_file(&path, &meta, &ps, None).expect("good save");
    load_model_file(&path).expect("good artifact loads");
    save_model_file(&path, &meta, &ps, Some(DiskFault::TornWrite)).expect("torn save");
    let err = load_model_file(&path).expect_err("torn artifact must be rejected");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    // A partial flush never renames: the previous good artifact survives.
    save_model_file(&path, &meta, &ps, None).expect("good save again");
    save_model_file(&path, &meta, &ps, Some(DiskFault::PartialFlush)).expect("partial flush");
    load_model_file(&path).expect("previous artifact must still load");

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(amdgcnn_tensor::durable::tmp_path(&path)).ok();
}

#[test]
fn hot_swap_refuses_corrupt_candidates_and_keeps_serving() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds, 9);
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");
    let store = ModelStore::new(engine, 64);
    assert_eq!(store.version(), 1);

    let query = (ds.test[0].u, ds.test[0].v);
    let before = store.engine().predict_one(query);

    // Candidate 1: flipped byte in the parameter region → checksum failure.
    let mut corrupt = artifact.clone();
    let pos = artifact.len() - 10;
    corrupt[pos] ^= 0x01;
    let err = store.hot_swap(corrupt.as_slice()).expect_err("must refuse");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    // Candidate 2: truncated mid-parameters.
    let err = store
        .hot_swap(&artifact[..artifact.len() / 2])
        .expect_err("must refuse");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    // Candidate 3: valid format but non-finite parameters.
    let (meta2, _, mut ps2) = trained_artifact(&ds, 9);
    ps2.update(amdgcnn_tensor::ParamId(0), |m: &mut Matrix| {
        m.set(0, 0, f32::NAN)
    });
    let mut poisoned = Vec::new();
    save_model(&meta2, &ps2, &mut poisoned).expect("save");
    let err = store
        .hot_swap(poisoned.as_slice())
        .expect_err("must refuse");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("non-finite"), "{err}");

    // Candidate 4: trained against a different dataset (by name).
    let mut other = small_dataset();
    other.name = "other-graph";
    let (_, other_artifact, _) = trained_artifact(&other, 9);
    let err = store
        .hot_swap(other_artifact.as_slice())
        .expect_err("must refuse");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);

    // Through all four refusals the original engine kept serving,
    // unchanged, and every refusal was counted.
    assert_eq!(store.version(), 1);
    assert_eq!(store.rejected_swaps(), 4);
    assert_eq!(store.engine().predict_one(query), before);
}

#[test]
fn hot_swap_accepts_a_valid_replacement() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds, 9);
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");
    let store = ModelStore::new(engine, 64);

    let query = (ds.test[0].u, ds.test[0].v);
    let before = store.engine().predict_one(query);

    // A differently trained model over the same dataset is a valid swap.
    let (_, replacement, _) = trained_artifact(&ds, 10);
    let version = store.hot_swap(replacement.as_slice()).expect("valid swap");
    assert_eq!(version, 2);
    assert_eq!(store.version(), 2);
    assert_eq!(store.rejected_swaps(), 0);
    let after = store.engine().predict_one(query);
    assert_ne!(before, after, "new parameters must actually be live");

    // Swapping from a file works the same way.
    let path = scratch_path("swap");
    let (meta3, _, ps3) = trained_artifact(&ds, 11);
    save_model_file(&path, &meta3, &ps3, None).expect("save file");
    assert_eq!(store.hot_swap_file(&path).expect("file swap"), 3);
    std::fs::remove_file(&path).ok();
}
