//! Fault-tolerance guarantees of the batch server, exercised through the
//! deterministic [`FaultInjector`]: injected worker panics, transient
//! engine faults, artificial latency, queue overflow, and per-request
//! deadlines. The invariant under test everywhere: every submitted query
//! is resolved — with an answer or a typed error — and the caller never
//! panics.

use am_dgcnn::{Experiment, FaultInjector, FaultPlan, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_serve::{
    save_model, ArtifactMeta, BatchConfig, BatchServer, Error, InferenceEngine, RobustnessConfig,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Train once per process; every test (and every proptest case) reloads
/// the same artifact bytes into a fresh engine.
fn artifact_and_ds() -> &'static (Vec<u8>, Dataset) {
    static CACHE: OnceLock<(Vec<u8>, Dataset)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let ds = wn18_like(&Wn18Config {
            num_nodes: 60,
            num_edges: 220,
            train_links: 24,
            test_links: 8,
            ..Default::default()
        });
        let exp = Experiment::builder()
            .gnn(GnnKind::am_dgcnn())
            .hyper(Hyperparams {
                lr: 5e-3,
                hidden_dim: 8,
                sort_k: 10,
            })
            .seed(7)
            .build();
        let mut session = exp.session(&ds, None).expect("session");
        session
            .trainer
            .train(&session.model, &mut session.ps, &session.train_samples, 1)
            .expect("train");
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 1).expect("meta");
        let mut buf = Vec::new();
        save_model(&meta, &session.ps, &mut buf).expect("save");
        (buf, ds)
    })
}

fn faulty_engine(plan: FaultPlan) -> (InferenceEngine, &'static Dataset) {
    let (artifact, ds) = artifact_and_ds();
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64)
        .expect("engine")
        .with_fault_injector(Arc::new(FaultInjector::new(plan)));
    (engine, ds)
}

/// One-query-per-batch policy so engine calls map 1:1 to queries.
fn one_at_a_time() -> BatchConfig {
    BatchConfig {
        max_batch: 1,
        max_wait: Duration::from_micros(100),
    }
}

/// The acceptance run: 1000 queries against a worker that panics every
/// 49th engine call. No caller panics, every query resolves, the worker is
/// respawned after each death, and the breaker's trips and resets are all
/// visible in the stats.
#[test]
fn injected_panics_never_reach_callers_and_worker_respawns() {
    let (engine, ds) = faulty_engine(FaultPlan::panic_every(49));
    let server = BatchServer::start_with(
        engine,
        one_at_a_time(),
        RobustnessConfig {
            // Trip on every failure; zero cooldown means the next submit is
            // always admitted as the half-open probe, so the sequential
            // submit/wait loop below never sheds and the counts are exact.
            breaker_threshold: 1,
            breaker_cooldown: Duration::ZERO,
            ..RobustnessConfig::default()
        },
    );
    let queries: Vec<(u32, u32)> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let (mut answered, mut panicked) = (0u64, 0u64);
    for i in 0..1000 {
        let pending = server
            .submit(queries[i % queries.len()])
            .expect("zero-cooldown breaker always admits");
        match pending.wait() {
            Ok(probs) => {
                assert_eq!(probs.len(), ds.num_classes);
                answered += 1;
            }
            Err(Error::WorkerPanicked) => panicked += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // 1000 queries, one engine call each: calls 49, 98, ..., 980 panic.
    assert_eq!(panicked, 20);
    assert_eq!(answered, 980);
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 20);
    assert_eq!(stats.worker_respawns, 20);
    assert_eq!(stats.breaker_trips, 20);
    assert_eq!(stats.breaker_resets, 20);
    assert_eq!(stats.failed_queries, 20);
    assert_eq!(stats.shed_degraded, 0);
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded() {
    // Every engine call sleeps, so the worker is pinned while we flood the
    // two-slot queue.
    let (engine, ds) = faulty_engine(FaultPlan {
        latency_every_n_calls: Some(1),
        latency: Duration::from_millis(50),
        ..FaultPlan::default()
    });
    let server = BatchServer::start_with(
        engine,
        one_at_a_time(),
        RobustnessConfig {
            queue_capacity: 2,
            ..RobustnessConfig::default()
        },
    );
    let q = (ds.test[0].u, ds.test[0].v);
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for _ in 0..6 {
        match server.submit(q) {
            Ok(p) => pending.push(p),
            Err(e) => {
                assert_eq!(e, Error::Overloaded { capacity: 2 });
                shed += 1;
            }
        }
    }
    // At most one query is in flight and two are queued: of six rapid-fire
    // submissions at least three must have been shed.
    assert!(shed >= 3, "expected >=3 shed, got {shed}");
    for p in pending {
        p.wait().expect("admitted queries still answer");
    }
    assert_eq!(server.stats().shed_overload, shed);
    server.shutdown();
}

#[test]
fn deadline_expires_while_queued() {
    let (engine, ds) = faulty_engine(FaultPlan {
        latency_every_n_calls: Some(1),
        latency: Duration::from_millis(50),
        ..FaultPlan::default()
    });
    let server = BatchServer::start_with(engine, one_at_a_time(), RobustnessConfig::default());
    let q = (ds.test[0].u, ds.test[0].v);

    // Occupy the worker, then queue one query that is already past its
    // deadline and one with plenty of budget.
    let busy = server.submit(q).expect("admitted");
    std::thread::sleep(Duration::from_millis(10));
    let expired = server
        .submit_with_deadline(q, Duration::ZERO)
        .expect("admission does not check the deadline");
    let relaxed = server
        .submit_with_deadline(q, Duration::from_secs(30))
        .expect("admitted");

    assert!(busy.wait().is_ok());
    assert_eq!(expired.wait(), Err(Error::DeadlineExceeded));
    assert!(relaxed.wait().is_ok());
    assert_eq!(server.stats().deadline_expired, 1);
    server.shutdown();
}

#[test]
fn transient_fault_is_retried_to_success() {
    let (engine, ds) = faulty_engine(FaultPlan::transient_on(&[1]));
    let server = BatchServer::start_with(
        engine,
        one_at_a_time(),
        RobustnessConfig {
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            ..RobustnessConfig::default()
        },
    );
    let q = (ds.test[0].u, ds.test[0].v);
    let probs = server
        .submit(q)
        .expect("admitted")
        .wait()
        .expect("first call faults, first retry answers");
    assert_eq!(probs.len(), ds.num_classes);
    let stats = server.stats();
    assert_eq!(stats.engine_retries, 1);
    assert_eq!(stats.failed_queries, 0);
    server.shutdown();
}

#[test]
fn exhausted_retry_budget_fails_the_batch_with_engine_fault() {
    let (engine, ds) = faulty_engine(FaultPlan {
        transient_every_n_calls: Some(1),
        ..FaultPlan::default()
    });
    let server = BatchServer::start_with(
        engine,
        one_at_a_time(),
        RobustnessConfig {
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            breaker_threshold: 10,
            ..RobustnessConfig::default()
        },
    );
    let q = (ds.test[0].u, ds.test[0].v);
    let outcome = server.submit(q).expect("admitted").wait();
    assert_eq!(outcome, Err(Error::EngineFault { retries: 2 }));
    let stats = server.stats();
    assert_eq!(stats.engine_retries, 2);
    assert_eq!(stats.failed_queries, 1);
    server.shutdown();
}

#[test]
fn begun_shutdown_rejects_new_queries_and_drains_old() {
    let (engine, ds) = faulty_engine(FaultPlan::default());
    let server =
        BatchServer::start_with(engine, BatchConfig::default(), RobustnessConfig::default());
    let queries: Vec<(u32, u32)> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let pending: Vec<_> = queries
        .iter()
        .map(|&q| server.submit(q).expect("admitted"))
        .collect();
    server.begin_shutdown();
    assert_eq!(
        server.submit(queries[0]).err(),
        Some(Error::ServerShutdown),
        "post-shutdown admissions must be rejected, not queued"
    );
    for p in pending {
        p.wait()
            .expect("queries admitted before shutdown still drain");
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the fault schedule, a burst of queries terminates with
    /// every query resolved: no deadlock, no caller panic, no lost reply.
    /// Zero in a schedule slot disables that fault.
    #[test]
    fn random_fault_schedules_never_wedge_or_panic_callers(
        panic_every in 0u64..6,
        transient_every in 0u64..5,
        latency_every in 0u64..4,
        num_queries in 1usize..40,
        capacity in 1usize..16,
        threshold in 1u32..4,
    ) {
        let plan = FaultPlan {
            panic_every_n_calls: (panic_every > 0).then_some(panic_every),
            transient_every_n_calls: (transient_every > 0).then_some(transient_every),
            latency_every_n_calls: (latency_every > 0).then_some(latency_every),
            latency: Duration::from_micros(200),
            ..FaultPlan::default()
        };
        let (engine, ds) = faulty_engine(plan);
        let server = BatchServer::start_with(
            engine,
            BatchConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
            },
            RobustnessConfig {
                queue_capacity: capacity,
                max_retries: 1,
                retry_backoff: Duration::from_micros(100),
                breaker_threshold: threshold,
                breaker_cooldown: Duration::from_micros(100),
            },
        );
        let queries: Vec<(u32, u32)> = ds.test.iter().map(|l| (l.u, l.v)).collect();
        let mut resolved = 0usize;
        let mut pending = Vec::new();
        for i in 0..num_queries {
            match server.submit(queries[i % queries.len()]) {
                Ok(p) => pending.push(p),
                // Shed at admission (overload or degraded) is a resolution.
                Err(_) => resolved += 1,
            }
        }
        for p in pending {
            // Returning at all — answer or typed error — is the property.
            let _ = p.wait();
            resolved += 1;
        }
        prop_assert_eq!(resolved, num_queries);
        server.shutdown();
    }
}
