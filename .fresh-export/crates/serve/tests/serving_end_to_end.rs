//! End-to-end serving guarantees: a reloaded artifact is the trained model
//! (bit-exact metrics and probabilities), the batch server answers exactly
//! like direct engine calls, and the cache counters add up.

use am_dgcnn::{evaluate_model, predict_probs, Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_serve::{
    load_model, save_model, ArtifactMeta, BatchConfig, BatchServer, InferenceEngine,
};
use std::time::Duration;

fn small_dataset() -> Dataset {
    wn18_like(&Wn18Config {
        num_nodes: 120,
        num_edges: 420,
        train_links: 60,
        test_links: 20,
        ..Default::default()
    })
}

fn fast_hyper() -> Hyperparams {
    Hyperparams {
        lr: 5e-3,
        hidden_dim: 8,
        sort_k: 10,
    }
}

/// Train briefly, save an artifact, and return everything a test needs.
fn trained_artifact(ds: &Dataset) -> (ArtifactMeta, Vec<u8>, am_dgcnn::Session) {
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(fast_hyper())
        .seed(9)
        .build();
    let mut session = exp.session(ds, None).expect("session");
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 2)
        .expect("train");
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(ds, &session.model.cfg, &fcfg, 2).expect("meta");
    let mut buf = Vec::new();
    save_model(&meta, &session.ps, &mut buf).expect("save");
    (meta, buf, session)
}

#[test]
fn reloaded_model_reproduces_exact_eval_metrics() {
    let ds = small_dataset();
    let (_, artifact, session) = trained_artifact(&ds);
    let live = session.evaluate();

    let (meta, loaded_ps) = load_model(artifact.as_slice()).expect("load");
    let (model, ps) = amdgcnn_serve::instantiate(&meta, &loaded_ps).expect("instantiate");
    let reloaded = evaluate_model(&model, &ps, &session.test_samples);

    // Bit-exact: same parameters, same samples, same deterministic forward.
    assert_eq!(live, reloaded);

    // And so are the raw probabilities.
    let p_live = predict_probs(&session.model, &session.ps, &session.test_samples);
    let p_reload = predict_probs(&model, &ps, &session.test_samples);
    assert_eq!(p_live.data(), p_reload.data());
}

#[test]
fn engine_answers_match_training_time_predictions() {
    let ds = small_dataset();
    let (_, artifact, session) = trained_artifact(&ds);
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");

    let queries: Vec<(u32, u32)> = ds.test.iter().map(|l| (l.u, l.v)).collect();
    let answers = engine.predict(&queries);

    let reference = predict_probs(&session.model, &session.ps, &session.test_samples);
    assert_eq!(answers.len(), ds.test.len());
    for (i, probs) in answers.iter().enumerate() {
        assert_eq!(probs.as_slice(), reference.row(i), "query {i}");
    }
}

#[test]
fn batched_and_unbatched_answers_are_identical() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds);
    let queries: Vec<(u32, u32)> = ds.test.iter().map(|l| (l.u, l.v)).collect();

    // One-at-a-time through an uncached engine.
    let plain = InferenceEngine::load(artifact.as_slice(), ds.clone(), 0).expect("engine");
    let unbatched: Vec<Vec<f32>> = queries.iter().map(|&q| plain.predict_one(q)).collect();

    // Micro-batched through the server, cache enabled.
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");
    let server = BatchServer::start(
        engine,
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
        },
    );
    let batched = server.submit_all_strict(&queries).expect("batched answers");

    assert_eq!(unbatched, batched);

    let stats = server.stats();
    assert_eq!(stats.queries_served, queries.len() as u64);
    assert!(stats.batches >= 1);
    assert!(stats.mean_batch_size >= 1.0);
    server.shutdown();
}

#[test]
fn cache_hits_are_counted_and_answers_stay_stable() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds);
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64).expect("engine");

    let hot = (ds.test[0].u, ds.test[0].v);
    let first = engine.predict_one(hot);
    for _ in 0..4 {
        assert_eq!(engine.predict_one(hot), first);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries_served, 5);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 4);
    assert_eq!(stats.dedup_hits, 0);
    assert!((stats.cache_hit_rate - 0.8).abs() < 1e-12);
    assert_eq!(engine.cache_len(), 1);

    // Duplicates inside one batch are answered once, counted as dedup hits
    // rather than LRU hits: only the unique copy probes the cache.
    let batch = engine.predict(&[hot, hot, hot]);
    assert_eq!(batch, vec![first.clone(), first.clone(), first]);
    let stats = engine.stats();
    assert_eq!(stats.queries_served, 8);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 5);
    assert_eq!(stats.dedup_hits, 2);
    assert!((stats.cache_hit_rate - 5.0 / 6.0).abs() < 1e-12);
}

#[test]
fn engine_refuses_mismatched_dataset() {
    let ds = small_dataset();
    let (_, artifact, _) = trained_artifact(&ds);

    // A different generator family ⇒ different dataset name.
    let other = amdgcnn_data::cora_like(&amdgcnn_data::CoraConfig {
        num_nodes: 80,
        num_edges: 200,
        ..Default::default()
    });
    let err = match InferenceEngine::load(artifact.as_slice(), other, 16) {
        Ok(_) => panic!("engine must refuse a mismatched dataset"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
