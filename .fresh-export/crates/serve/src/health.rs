//! Fleet health: per-replica states composed into one fleet-level signal.
//!
//! Each replica already protects itself (circuit breaker, bounded queue,
//! worker supervisor); this module only *reads* those signals and folds
//! them upward. The state machine per replica:
//!
//! ```text
//!        respawn                drain            breaker opens
//! Down ◄───────── Up ─────────► Draining         Up ─► Impaired
//!   ▲  crash       │                │  shutdown        │ breaker closes
//!   └──────────────┘                └─► Down           ▼
//!                                                      Up
//! ```
//!
//! and the fleet folds replica states with:
//!
//! - **Healthy** — every replica is `Up`.
//! - **Degraded** — at least one replica is `Up`, but not all (some are
//!   `Down`, `Draining`, or `Impaired` behind an open breaker). The fleet
//!   still answers every routable query by spilling to ring successors.
//! - **Critical** — no replica is `Up`. Queries fail fast with a typed
//!   error until a respawn or a breaker reset lifts the fleet back.
//!
//! Transitions are recorded as `fleet/health` observability events with a
//! counter, so a timing report shows when and how often the fleet moved
//! between states.

use serde::Serialize;

/// Health of one replica slot, derived — never stored — from the slot's
/// liveness and its server's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReplicaHealth {
    /// Live and admitting: routed queries go here first.
    Up,
    /// Live but its circuit breaker is open; the router skips it until the
    /// breaker's cooldown probe closes it again.
    Impaired,
    /// Gracefully shutting down: queued work was redistributed, in-flight
    /// work is finishing, no new queries are routed here.
    Draining,
    /// Crashed or fully shut down; a respawn rebuilds it.
    Down,
}

impl ReplicaHealth {
    /// Whether the router may send new queries to this replica.
    pub fn routable(&self) -> bool {
        matches!(self, ReplicaHealth::Up)
    }
}

/// Fleet-level health: the fold of every replica's [`ReplicaHealth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FleetHealth {
    /// All replicas up.
    Healthy,
    /// Some replicas unavailable, at least one up: serving continues with
    /// failover.
    Degraded,
    /// No replica up: queries fail fast with a typed error.
    Critical,
}

impl FleetHealth {
    /// Fold per-replica states into the fleet state.
    pub fn from_replicas(replicas: &[ReplicaHealth]) -> FleetHealth {
        let up = replicas.iter().filter(|r| r.routable()).count();
        if up == 0 {
            FleetHealth::Critical
        } else if up == replicas.len() {
            FleetHealth::Healthy
        } else {
            FleetHealth::Degraded
        }
    }
}

impl std::fmt::Display for FleetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetHealth::Healthy => write!(f, "healthy"),
            FleetHealth::Degraded => write!(f, "degraded"),
            FleetHealth::Critical => write!(f, "critical"),
        }
    }
}

impl std::fmt::Display for ReplicaHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaHealth::Up => write!(f, "up"),
            ReplicaHealth::Impaired => write!(f, "impaired"),
            ReplicaHealth::Draining => write!(f, "draining"),
            ReplicaHealth::Down => write!(f, "down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ReplicaHealth::*;

    #[test]
    fn fold_matches_the_three_state_definition() {
        assert_eq!(
            FleetHealth::from_replicas(&[Up, Up, Up]),
            FleetHealth::Healthy
        );
        assert_eq!(
            FleetHealth::from_replicas(&[Up, Down, Up]),
            FleetHealth::Degraded
        );
        assert_eq!(
            FleetHealth::from_replicas(&[Up, Impaired, Draining]),
            FleetHealth::Degraded
        );
        assert_eq!(
            FleetHealth::from_replicas(&[Down, Impaired, Draining]),
            FleetHealth::Critical
        );
        assert_eq!(FleetHealth::from_replicas(&[]), FleetHealth::Critical);
    }

    #[test]
    fn only_up_is_routable() {
        assert!(Up.routable());
        for s in [Impaired, Draining, Down] {
            assert!(!s.routable(), "{s} must not receive new queries");
        }
    }
}
