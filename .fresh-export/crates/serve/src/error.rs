//! Typed serving errors: every way a query can fail to be answered.
//!
//! The fault-tolerant [`crate::server::BatchServer`] never panics a caller:
//! a query is always resolved, either with class probabilities or with one
//! of these errors describing which protection fired.

/// Why a submitted (or about-to-be-submitted) query was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The query's deadline passed before a batch slot reached it.
    DeadlineExceeded,
    /// The bounded queue was full; the query was shed at admission.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The circuit breaker is open after consecutive batch failures; the
    /// server sheds load until a cooldown probe succeeds.
    Degraded,
    /// The server was shut down (or dropped) before answering.
    ServerShutdown,
    /// The batch worker panicked while executing this query's batch. The
    /// worker has been respawned; the query may be retried by the caller.
    WorkerPanicked,
    /// The engine kept failing transiently through the retry budget.
    EngineFault {
        /// Retries attempted before giving up.
        retries: u32,
    },
    /// No fleet replica could take the query: every slot was down,
    /// draining, or refused admission. Only the fleet router produces
    /// this; a single server reports the specific protection instead.
    FleetUnavailable {
        /// Replica attempts made before giving up (0 = nothing routable).
        attempts: u32,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DeadlineExceeded => write!(f, "query deadline exceeded while queued"),
            Error::Overloaded { capacity } => {
                write!(f, "server overloaded: queue capacity {capacity} exhausted")
            }
            Error::Degraded => write!(
                f,
                "server degraded: circuit breaker open after consecutive batch failures"
            ),
            Error::ServerShutdown => write!(f, "server shut down before answering"),
            Error::WorkerPanicked => {
                write!(f, "batch worker panicked executing this query's batch")
            }
            Error::EngineFault { retries } => write!(
                f,
                "engine failed transiently and stayed failed through {retries} retries"
            ),
            Error::FleetUnavailable { attempts } => {
                write!(f, "no fleet replica available after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_protection() {
        assert!(Error::DeadlineExceeded.to_string().contains("deadline"));
        assert!(Error::Overloaded { capacity: 8 }.to_string().contains('8'));
        assert!(Error::Degraded.to_string().contains("circuit breaker"));
        assert!(Error::ServerShutdown.to_string().contains("shut down"));
        assert!(Error::WorkerPanicked.to_string().contains("panicked"));
        assert!(Error::EngineFault { retries: 2 }.to_string().contains('2'));
        assert!(Error::FleetUnavailable { attempts: 3 }
            .to_string()
            .contains("no fleet replica"));
    }
}
