//! Versioned model store with validated hot-swap.
//!
//! A [`ModelStore`] holds the live [`InferenceEngine`] behind an `RwLock`
//! and lets operators roll a new artifact in without stopping serving. The
//! swap is **validated before it is visible**: the candidate artifact must
//! pass the format's integrity checks (magic, version, header CRC, and the
//! parameter blob's per-section checksums), hold only finite parameters,
//! and bind cleanly to the served dataset. A candidate failing any of
//! these is counted and rejected — the previous engine keeps serving,
//! untouched, so a corrupt or mismatched artifact can never take down a
//! live endpoint.

use crate::artifact::load_model;
use crate::engine::InferenceEngine;
use amdgcnn_data::Dataset;
use std::io::{self, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A hot-swappable slot holding the currently served model.
pub struct ModelStore {
    current: RwLock<Arc<InferenceEngine>>,
    /// The dataset every candidate must bind to (cloned from the initial
    /// engine, so a swap cannot silently change the served graph).
    ds: Dataset,
    cache_capacity: usize,
    version: AtomicU64,
    rejected_swaps: AtomicU64,
}

impl ModelStore {
    /// Start serving `initial`; replacement engines built during swaps get
    /// an LRU cache of `cache_capacity` prepared subgraphs.
    pub fn new(initial: InferenceEngine, cache_capacity: usize) -> Self {
        let ds = initial.dataset().clone();
        Self {
            current: RwLock::new(Arc::new(initial)),
            ds,
            cache_capacity,
            version: AtomicU64::new(1),
            rejected_swaps: AtomicU64::new(0),
        }
    }

    /// The engine currently serving. The returned `Arc` stays valid across
    /// concurrent swaps — in-flight batches finish on the engine they
    /// started with.
    pub fn engine(&self) -> Arc<InferenceEngine> {
        Arc::clone(&lock_read(&self.current))
    }

    /// Monotonic version of the live engine (1 for the initial one,
    /// incremented by each successful swap).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Number of swap attempts refused by validation.
    pub fn rejected_swaps(&self) -> u64 {
        self.rejected_swaps.load(Ordering::SeqCst)
    }

    /// Validate a candidate artifact and, only if every check passes, make
    /// it the live engine. Returns the new version number.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] when the artifact is corrupt
    /// (checksum/format failure), holds non-finite parameters, or does not
    /// bind to the served dataset. On any error the previous engine keeps
    /// serving and [`rejected_swaps`](Self::rejected_swaps) is incremented.
    pub fn hot_swap<R: Read>(&self, r: R) -> io::Result<u64> {
        let candidate = load_model(r).and_then(|(meta, loaded)| {
            if !loaded.all_finite() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "candidate artifact holds non-finite parameters",
                ));
            }
            InferenceEngine::new(meta, &loaded, self.ds.clone(), self.cache_capacity)
        });
        match candidate {
            Ok(engine) => {
                *lock_write(&self.current) = Arc::new(engine);
                Ok(self.version.fetch_add(1, Ordering::SeqCst) + 1)
            }
            Err(e) => {
                self.rejected_swaps.fetch_add(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// [`hot_swap`](Self::hot_swap) from an artifact file on disk.
    pub fn hot_swap_file(&self, path: &Path) -> io::Result<u64> {
        match std::fs::File::open(path) {
            Ok(f) => self.hot_swap(io::BufReader::new(f)),
            Err(e) => {
                self.rejected_swaps.fetch_add(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }
}

/// Lock helpers recovering from poisoning: the store's critical sections
/// only move an `Arc`, so a panicking holder cannot leave the slot in a
/// torn state.
fn lock_read(
    lock: &RwLock<Arc<InferenceEngine>>,
) -> std::sync::RwLockReadGuard<'_, Arc<InferenceEngine>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn lock_write(
    lock: &RwLock<Arc<InferenceEngine>>,
) -> std::sync::RwLockWriteGuard<'_, Arc<InferenceEngine>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}
