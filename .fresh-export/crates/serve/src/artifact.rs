//! Versioned model artifacts: one file bundling everything needed to stand
//! a trained model back up — the [`ModelConfig`] (including the
//! [`GnnKind`](am_dgcnn::GnnKind)), the feature-construction settings, the
//! dataset identity, and the parameter checkpoint.
//!
//! Format (little-endian, after the JSON header everything is the
//! [`save_params`] binary format with its own magic/version):
//!
//! ```text
//! magic "AMDM" | u32 version | u32 meta_len | meta JSON
//!             | u32 header CRC-32 (v2+) | AMDG param blob
//! ```
//!
//! The JSON header keeps the metadata debuggable with `head -c`; the
//! parameter blob stays binary so checkpoints round-trip bit-exactly.
//! Since v2 the header carries a CRC-32 and the parameter blob is the
//! checksummed `AMDG` v2 format, so any single flipped or missing byte in
//! an artifact is detected at load. v1 files (no checksums) still load.
//! [`save_model_file`] writes via temp + fsync + atomic rename, so an
//! artifact path on disk never holds a half-written file.

use am_dgcnn::{DgcnnModel, FeatureConfig, ModelConfig};
use amdgcnn_data::Dataset;
use amdgcnn_tensor::durable::{write_atomic, CrcReader, CrcWriter, DiskFault};
use amdgcnn_tensor::io::{load_params, restore_into, save_params};
use amdgcnn_tensor::ParamStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"AMDM";
const VERSION: u32 = 2;
/// Oldest version [`load_model`] still reads (pre-checksum format).
const MIN_VERSION: u32 = 1;

/// Cap on the header-declared JSON length; a real header is a few hundred
/// bytes, so anything above this is a corrupt file, not a big model.
const MAX_META_LEN: usize = 1 << 20;

/// Serializable image of a [`FeatureConfig`].
///
/// node2vec tables are deliberately not representable: the paper disables
/// them for knowledge graphs and they live outside the parameter store, so
/// an artifact claiming to need them could not be honored. [`save_model`]
/// rejects such configs instead of silently dropping the table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FeatureMeta {
    /// Node-type one-hot width.
    pub num_node_types: usize,
    /// DRNL label cap.
    pub max_drnl: u32,
}

impl FeatureMeta {
    /// Rebuild the runtime config (never carries node2vec).
    pub fn to_config(&self) -> FeatureConfig {
        FeatureConfig {
            num_node_types: self.num_node_types,
            max_drnl: self.max_drnl,
            node2vec: None,
        }
    }
}

/// Everything about a trained model except the parameter values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArtifactMeta {
    /// Name of the dataset the model was trained on; engines refuse to
    /// serve a different graph.
    pub dataset: String,
    /// Full model architecture (embeds the `GnnKind`).
    pub model: ModelConfig,
    /// Feature-construction settings used at training time.
    pub features: FeatureMeta,
    /// Epochs the checkpoint had completed, for provenance.
    pub epochs_trained: usize,
}

impl ArtifactMeta {
    /// Describe a trained model: its config plus the dataset/features it
    /// was trained against.
    ///
    /// # Errors
    /// `InvalidInput` when `features` carries a node2vec table — see
    /// [`FeatureMeta`].
    pub fn describe(
        ds: &Dataset,
        model_cfg: &ModelConfig,
        features: &FeatureConfig,
        epochs_trained: usize,
    ) -> io::Result<Self> {
        if features.node2vec.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "node2vec embeddings cannot be embedded in a model artifact",
            ));
        }
        Ok(Self {
            dataset: ds.name.to_string(),
            model: model_cfg.clone(),
            features: FeatureMeta {
                num_node_types: features.num_node_types,
                max_drnl: features.max_drnl,
            },
            epochs_trained,
        })
    }
}

/// Write a complete model artifact: metadata header (with CRC-32) +
/// checksummed parameter checkpoint.
pub fn save_model<W: Write>(meta: &ArtifactMeta, ps: &ParamStore, w: W) -> io::Result<()> {
    let meta_json = serde_json::to_vec(meta)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let mut w = CrcWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(meta_json.len() as u32).to_le_bytes())?;
    w.write_all(&meta_json)?;
    let header_crc = w.total_crc();
    w.write_unchecked(&header_crc.to_le_bytes())?;
    save_params(ps, w.into_inner())
}

/// The old unchecksummed v1 writer, kept only so tests can prove v1 files
/// still load.
#[doc(hidden)]
pub fn save_model_v1_for_tests<W: Write>(
    meta: &ArtifactMeta,
    ps: &ParamStore,
    mut w: W,
) -> io::Result<()> {
    let meta_json = serde_json::to_vec(meta)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    w.write_all(MAGIC)?;
    w.write_all(&1u32.to_le_bytes())?;
    w.write_all(&(meta_json.len() as u32).to_le_bytes())?;
    w.write_all(&meta_json)?;
    amdgcnn_tensor::io::save_params_v1_for_tests(ps, w)
}

/// Read back an artifact written by [`save_model`] (v2, checksummed) or by
/// the pre-checksum v1 writer.
///
/// All header fields are untrusted: bad magic, unknown versions, oversized
/// or truncated headers, malformed JSON, and (v2) checksum mismatches all
/// fail with [`io::ErrorKind::InvalidData`].
pub fn load_model<R: Read>(r: R) -> io::Result<(ArtifactMeta, ParamStore)> {
    let mut r = CrcReader::new(r);
    let mut magic = [0u8; 4];
    read_exact_invalid(&mut r, &mut magic, "artifact magic")?;
    if &magic != MAGIC {
        return Err(invalid("bad artifact magic"));
    }
    let version = read_u32(&mut r, "artifact version")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(invalid(format!("unsupported artifact version {version}")));
    }
    let meta_len = read_u32(&mut r, "metadata length")? as usize;
    if meta_len > MAX_META_LEN {
        return Err(invalid(format!("implausible metadata length {meta_len}")));
    }
    let mut meta_json = vec![0u8; meta_len];
    read_exact_invalid(&mut r, &mut meta_json, "metadata")?;
    if version >= 2 {
        let expect = r.total_crc();
        let mut stored = [0u8; 4];
        r.read_exact_unchecked(&mut stored).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid("artifact truncated while reading header checksum")
            } else {
                e
            }
        })?;
        if u32::from_le_bytes(stored) != expect {
            return Err(invalid("artifact header checksum mismatch"));
        }
    }
    let meta: ArtifactMeta = serde_json::from_slice(&meta_json)
        .map_err(|e| invalid(format!("bad artifact metadata: {e}")))?;
    let ps = load_params(&mut r)?;
    Ok((meta, ps))
}

/// Durably write an artifact to `path`: serialize, write to a temp file,
/// fsync, and atomically rename into place, so the path never holds a
/// half-written artifact even across a crash.
///
/// `fault` deterministically injects a durability failure for testing;
/// pass `None` in production.
pub fn save_model_file(
    path: &Path,
    meta: &ArtifactMeta,
    ps: &ParamStore,
    fault: Option<DiskFault>,
) -> io::Result<()> {
    let mut buf = Vec::new();
    save_model(meta, ps, &mut buf)?;
    write_atomic(path, &buf, fault)
}

/// Load an artifact from `path` (counterpart of [`save_model_file`]).
pub fn load_model_file(path: &Path) -> io::Result<(ArtifactMeta, ParamStore)> {
    let f = std::fs::File::open(path)?;
    load_model(io::BufReader::new(f))
}

/// Reconstruct a runnable model from a loaded artifact: build the
/// architecture from `meta.model`, then overwrite every freshly initialized
/// parameter with the checkpoint values (verifying names and shapes
/// position-by-position).
pub fn instantiate(
    meta: &ArtifactMeta,
    loaded: &ParamStore,
) -> io::Result<(DgcnnModel, ParamStore)> {
    let mut ps = ParamStore::new();
    // The RNG only feeds the initial values, all of which restore_into
    // overwrites; any seed yields the same final parameters.
    let mut rng = StdRng::seed_from_u64(0);
    let model = DgcnnModel::new(meta.model.clone(), &mut ps, &mut rng);
    restore_into(&mut ps, loaded)?;
    Ok((model, ps))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_exact_invalid<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> io::Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("artifact truncated while reading {what}"))
        } else {
            e
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    read_exact_invalid(r, &mut buf, what)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dgcnn::GnnKind;
    use amdgcnn_tensor::Matrix;

    fn sample_meta() -> ArtifactMeta {
        ArtifactMeta {
            dataset: "wn18-like".to_string(),
            model: ModelConfig::dgcnn_defaults(GnnKind::am_dgcnn(), 16, 18, 18),
            features: FeatureMeta {
                num_node_types: 3,
                max_drnl: 12,
            },
            epochs_trained: 7,
        }
    }

    fn sample_store() -> ParamStore {
        let mut ps = ParamStore::new();
        ps.register("w", Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.25));
        ps.register("b", Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        ps
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let meta = sample_meta();
        let ps = sample_store();
        let mut buf = Vec::new();
        save_model(&meta, &ps, &mut buf).expect("save");
        let (meta2, ps2) = load_model(buf.as_slice()).expect("load");
        assert_eq!(meta, meta2);
        for (id, value) in ps.iter() {
            assert_eq!(ps2.name(id), ps.name(id));
            assert_eq!(value.data(), ps2.get(id).data());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        save_model(&sample_meta(), &sample_store(), &mut buf).expect("save");
        buf[0] = b'X';
        let err = load_model(buf.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = Vec::new();
        save_model(&sample_meta(), &sample_store(), &mut buf).expect("save");
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = load_model(buf.as_slice()).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_invalid_data() {
        let mut buf = Vec::new();
        save_model(&sample_meta(), &sample_store(), &mut buf).expect("save");
        for cut in [0, 3, 6, 10, buf.len() / 2, buf.len() - 1] {
            let err = load_model(&buf[..cut]).expect_err("truncated must fail");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut buf = Vec::new();
        save_model(&sample_meta(), &sample_store(), &mut buf).expect("save");
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x08;
            assert!(
                load_model(corrupt.as_slice()).is_err(),
                "flip at byte {pos} must be rejected"
            );
        }
    }

    #[test]
    fn v1_artifacts_without_checksums_still_load() {
        let meta = sample_meta();
        let ps = sample_store();
        let mut buf = Vec::new();
        save_model_v1_for_tests(&meta, &ps, &mut buf).expect("save v1");
        let (meta2, ps2) = load_model(buf.as_slice()).expect("v1 must load");
        assert_eq!(meta, meta2);
        for (id, value) in ps.iter() {
            assert_eq!(value.data(), ps2.get(id).data());
        }
    }

    #[test]
    fn file_save_is_atomic_and_loads_back() {
        let path =
            std::env::temp_dir().join(format!("amdgcnn-artifact-{}.amdm", std::process::id()));
        let meta = sample_meta();
        let ps = sample_store();
        save_model_file(&path, &meta, &ps, None).expect("save file");
        let (meta2, ps2) = load_model_file(&path).expect("load file");
        assert_eq!(meta, meta2);
        assert_eq!(
            amdgcnn_tensor::io::params_digest(&ps),
            amdgcnn_tensor::io::params_digest(&ps2)
        );
        // No stale temp file remains next to the artifact.
        let tmp = amdgcnn_tensor::durable::tmp_path(&path);
        assert!(!tmp.exists(), "temp file must be renamed away");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn node2vec_configs_are_rejected_at_save_time() {
        use amdgcnn_graph::node2vec::{node2vec_embeddings, Node2VecConfig};
        use std::sync::Arc;
        let ds = amdgcnn_data::wn18_like(&amdgcnn_data::Wn18Config {
            num_nodes: 40,
            num_edges: 120,
            train_links: 10,
            test_links: 5,
            ..Default::default()
        });
        let mut fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let emb = node2vec_embeddings(&ds.graph, &Node2VecConfig::default());
        fcfg.node2vec = Some(Arc::new(emb));
        let cfg = ModelConfig::dgcnn_defaults(GnnKind::am_dgcnn(), 16, 18, 18);
        let err = ArtifactMeta::describe(&ds, &cfg, &fcfg, 1).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
