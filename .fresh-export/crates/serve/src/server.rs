//! Micro-batching front-end: queries accumulate in a queue until either
//! `max_batch` of them are waiting or the oldest has waited `max_wait`,
//! then the whole batch runs through the engine at once.
//!
//! Batching amortizes the per-call fixed costs (cache lock, forward-pass
//! setup) and lets subgraph preparation fan out across the batch, while
//! `max_wait` bounds the latency a lone query can be held hostage for.
//!
//! The server is fault-tolerant by construction: every admitted query is
//! resolved with an answer or a typed [`Error`], never a panic in the
//! caller. Protections, in the order a query meets them:
//!
//! - **Circuit breaker** — consecutive batch failures trip the server into
//!   a degraded state that sheds new queries ([`Error::Degraded`]) until a
//!   cooldown probe succeeds.
//! - **Bounded queue** — admission beyond
//!   [`RobustnessConfig::queue_capacity`] is shed with
//!   [`Error::Overloaded`] instead of growing the queue without bound.
//! - **Deadlines** — a query submitted via
//!   [`BatchServer::submit_with_deadline`] whose deadline passes while it
//!   is still queued is failed with [`Error::DeadlineExceeded`] rather
//!   than occupying a batch slot.
//! - **Retry with backoff** — transient engine faults are retried up to
//!   [`RobustnessConfig::max_retries`] times with exponential backoff
//!   before the batch fails with [`Error::EngineFault`].
//! - **Panic isolation** — engine panics are caught per batch
//!   (`catch_unwind`); the batch's callers get [`Error::WorkerPanicked`]
//!   and a supervisor respawns the worker thread.
//! - **Deterministic shutdown** — [`BatchServer::shutdown`] (and `Drop`)
//!   drains the queue to completion; pending callers whose reply never
//!   arrives observe [`Error::ServerShutdown`] instead of a panic.

use crate::engine::{ClassProbs, InferenceEngine, LinkQuery};
use crate::error::Error;
use crate::stats::{record_drain, ServerStats};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Execute as soon as this many queries are queued.
    pub max_batch: usize,
    /// Execute a partial batch once its oldest query has waited this long.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Fault-tolerance policy: queue bounds, retry budget, circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessConfig {
    /// Maximum queued (not yet batched) queries; admission beyond this is
    /// shed with [`Error::Overloaded`].
    pub queue_capacity: usize,
    /// Transient engine faults retried per batch before the batch fails
    /// with [`Error::EngineFault`].
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each subsequent retry.
    pub retry_backoff: Duration,
    /// Consecutive batch failures that trip the circuit breaker open.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds before admitting a single probe.
    pub breaker_cooldown: Duration,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_retries: 2,
            retry_backoff: Duration::from_micros(500),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(50),
        }
    }
}

/// One queued query with its reply channel. Crate-visible so the fleet
/// router can move still-queued requests between replicas during a drain
/// without breaking the caller's pending handle.
pub(crate) struct Request {
    pub(crate) query: LinkQuery,
    pub(crate) reply: mpsc::Sender<Result<ClassProbs, Error>>,
    /// When the request entered the queue; the batch deadline is computed
    /// from the oldest of these, so time spent waiting behind a busy worker
    /// counts against `max_wait`.
    pub(crate) enqueued: Instant,
    /// Absolute per-request deadline, if the caller set one. Checked while
    /// the request is queued; an expired request is failed in place.
    pub(crate) deadline: Option<Instant>,
}

#[derive(Default)]
struct Queue {
    requests: VecDeque<Request>,
    shutdown: bool,
}

/// Breaker lifecycle: `Closed` (healthy) → `Open` (shedding after
/// consecutive failures) → `HalfOpen` (one probe admitted after cooldown)
/// → `Closed` again on success, or back to `Open` on failure.
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
}

impl Default for Breaker {
    fn default() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }
}

struct Shared {
    queue: Mutex<Queue>,
    wakeup: Condvar,
    engine: Arc<InferenceEngine>,
    cfg: BatchConfig,
    robust: RobustnessConfig,
    breaker: Mutex<Breaker>,
}

/// A panicking worker poisons these mutexes with the protected state still
/// structurally valid (the panic happens inside the engine, not mid-queue
/// mutation), so recover the guard instead of cascading the panic.
fn lock_queue(shared: &Shared) -> MutexGuard<'_, Queue> {
    shared.queue.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_breaker(shared: &Shared) -> MutexGuard<'_, Breaker> {
    shared.breaker.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle on an answer that has been queued but possibly not yet computed.
pub struct PendingQuery {
    rx: mpsc::Receiver<Result<ClassProbs, Error>>,
}

impl PendingQuery {
    /// Block until this query is resolved: class probabilities on success,
    /// a typed [`Error`] describing which protection fired otherwise. A
    /// server torn down before answering yields [`Error::ServerShutdown`]
    /// rather than panicking the caller.
    pub fn wait(self) -> Result<ClassProbs, Error> {
        self.rx.recv().unwrap_or(Err(Error::ServerShutdown))
    }

    /// Wait up to `timeout` for the answer without consuming the handle:
    /// `Some(outcome)` once resolved, `None` if still pending (the query
    /// keeps executing; wait again or race another replica against it —
    /// this is the primitive the fleet's hedged retry is built on). A
    /// server torn down before answering resolves to
    /// [`Error::ServerShutdown`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ClassProbs, Error>> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(Error::ServerShutdown)),
        }
    }
}

/// A running batch server: a supervised worker thread draining the queue
/// through an [`InferenceEngine`], respawned if it dies.
pub struct BatchServer {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl BatchServer {
    /// Start the worker thread over `engine` with default robustness.
    pub fn start(engine: InferenceEngine, cfg: BatchConfig) -> Self {
        Self::start_with(engine, cfg, RobustnessConfig::default())
    }

    /// Start with an explicit fault-tolerance policy.
    pub fn start_with(engine: InferenceEngine, cfg: BatchConfig, robust: RobustnessConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be positive");
        assert!(robust.queue_capacity > 0, "queue_capacity must be positive");
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            wakeup: Condvar::new(),
            engine: Arc::new(engine),
            cfg,
            robust,
            breaker: Mutex::new(Breaker::default()),
        });
        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::spawn(move || supervisor_loop(&sup_shared));
        Self {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Enqueue a link query; the returned handle blocks on
    /// [`PendingQuery::wait`]. Admission can shed: [`Error::Degraded`]
    /// while the breaker is open, [`Error::Overloaded`] when the queue is
    /// full, [`Error::ServerShutdown`] after shutdown began.
    pub fn submit(&self, query: LinkQuery) -> Result<PendingQuery, Error> {
        self.submit_inner(query, None)
    }

    /// Like [`submit`](Self::submit), but the query is abandoned with
    /// [`Error::DeadlineExceeded`] if it is still queued when `deadline`
    /// (measured from now) elapses. A query already inside an executing
    /// batch runs to completion — deadlines bound queueing, not compute.
    pub fn submit_with_deadline(
        &self,
        query: LinkQuery,
        deadline: Duration,
    ) -> Result<PendingQuery, Error> {
        self.submit_inner(query, Some(Instant::now() + deadline))
    }

    fn submit_inner(
        &self,
        query: LinkQuery,
        deadline: Option<Instant>,
    ) -> Result<PendingQuery, Error> {
        {
            let mut b = lock_breaker(&self.shared);
            match b.state {
                BreakerState::Closed => {}
                BreakerState::Open { since } => {
                    if since.elapsed() >= self.shared.robust.breaker_cooldown {
                        // Cooldown served: admit this query as the probe.
                        b.state = BreakerState::HalfOpen;
                    } else {
                        self.shared.engine.stats.record_shed_degraded(1);
                        return Err(Error::Degraded);
                    }
                }
                BreakerState::HalfOpen => {
                    // A probe is already in flight; keep shedding until it
                    // resolves the breaker one way or the other.
                    self.shared.engine.stats.record_shed_degraded(1);
                    return Err(Error::Degraded);
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock_queue(&self.shared);
            if q.shutdown {
                return Err(Error::ServerShutdown);
            }
            if q.requests.len() >= self.shared.robust.queue_capacity {
                self.shared.engine.stats.record_shed_overload(1);
                return Err(Error::Overloaded {
                    capacity: self.shared.robust.queue_capacity,
                });
            }
            q.requests.push_back(Request {
                query,
                reply: tx,
                enqueued: Instant::now(),
                deadline,
            });
        }
        self.shared.wakeup.notify_one();
        Ok(PendingQuery { rx })
    }

    /// Convenience: submit every query, then wait for all outcomes (in
    /// query order). Queries submitted together land in as few batches as
    /// the policy allows. Each query resolves independently — a shed
    /// admission or failed batch yields that query's typed [`Error`]
    /// without discarding its batchmates' answers.
    pub fn submit_all(&self, queries: &[LinkQuery]) -> Vec<Result<ClassProbs, Error>> {
        let pending: Vec<Result<PendingQuery, Error>> =
            queries.iter().map(|&q| self.submit(q)).collect();
        pending
            .into_iter()
            .map(|p| p.and_then(PendingQuery::wait))
            .collect()
    }

    /// All-or-nothing variant of [`submit_all`](Self::submit_all): the
    /// answers in query order, or the first per-query error. Queries after
    /// the first failure still execute (their answers are discarded).
    pub fn submit_all_strict(&self, queries: &[LinkQuery]) -> Result<Vec<ClassProbs>, Error> {
        self.submit_all(queries).into_iter().collect()
    }

    /// Counter snapshot (shared with the underlying engine).
    pub fn stats(&self) -> ServerStats {
        self.shared.engine.stats()
    }

    /// The engine being served.
    pub fn engine(&self) -> &InferenceEngine {
        &self.shared.engine
    }

    /// Begin a graceful shutdown without blocking: new submissions are
    /// rejected with [`Error::ServerShutdown`] while already-queued
    /// queries still drain. [`shutdown`](Self::shutdown) (or dropping the
    /// server) completes the drain. Idempotent.
    pub fn begin_shutdown(&self) {
        {
            let mut q = lock_queue(&self.shared);
            q.shutdown = true;
        }
        self.shared.wakeup.notify_all();
    }

    /// Stop the worker after it drains the queue. Draining is
    /// deterministic: every still-queued query is resolved (answered, or
    /// failed with a typed error) before the worker exits.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Hard-kill: reject new submissions, fail every *queued* query with
    /// [`Error::ServerShutdown`] immediately (no drain), and let the worker
    /// exit. A batch already inside the engine still runs to completion —
    /// its answers are correct, so delivering them is harmless. This is
    /// the chaos harness's "replica crash"; callers that were queued here
    /// observe the typed error and can retry elsewhere (the fleet router
    /// does exactly that).
    pub fn crash(&self) {
        let dropped = {
            let mut q = lock_queue(&self.shared);
            q.shutdown = true;
            let dropped: Vec<Request> = q.requests.drain(..).collect();
            dropped
        };
        if !dropped.is_empty() {
            self.shared
                .engine
                .stats
                .record_failed_queries(dropped.len() as u64);
            for req in dropped {
                let _ = req.reply.send(Err(Error::ServerShutdown));
            }
        }
        self.shared.wakeup.notify_all();
    }

    /// Begin a graceful drain and *take* the still-queued requests instead
    /// of executing them: new submissions are rejected, the in-flight batch
    /// (if any) finishes, and the returned requests — reply channels
    /// intact — can be re-queued on another replica so their callers never
    /// see an error. This is the fleet's drain path.
    pub(crate) fn begin_drain_take_queued(&self) -> Vec<Request> {
        let taken: Vec<Request> = {
            let mut q = lock_queue(&self.shared);
            q.shutdown = true;
            q.requests.drain(..).collect()
        };
        self.shared.wakeup.notify_all();
        taken
    }

    /// Adopt a request taken from a draining sibling replica: same
    /// admission checks as [`submit`](Self::submit) (breaker, shutdown,
    /// capacity), but the existing reply channel, enqueue time, and
    /// deadline are preserved. On rejection the request is handed back
    /// with the admission error so the router can try the next replica.
    pub(crate) fn try_adopt(&self, req: Request) -> Result<(), (Request, Error)> {
        {
            let mut b = lock_breaker(&self.shared);
            match b.state {
                BreakerState::Closed => {}
                BreakerState::Open { since } => {
                    if since.elapsed() >= self.shared.robust.breaker_cooldown {
                        b.state = BreakerState::HalfOpen;
                    } else {
                        return Err((req, Error::Degraded));
                    }
                }
                BreakerState::HalfOpen => return Err((req, Error::Degraded)),
            }
        }
        {
            let mut q = lock_queue(&self.shared);
            if q.shutdown {
                return Err((req, Error::ServerShutdown));
            }
            if q.requests.len() >= self.shared.robust.queue_capacity {
                return Err((
                    req,
                    Error::Overloaded {
                        capacity: self.shared.robust.queue_capacity,
                    },
                ));
            }
            q.requests.push_back(req);
        }
        self.shared.engine.stats.record_failover();
        self.shared.wakeup.notify_one();
        Ok(())
    }

    /// Force the circuit breaker open, exactly as a run of consecutive
    /// batch failures would — the chaos harness's "open breaker" action.
    /// The breaker heals normally: after the cooldown one probe is
    /// admitted, and a successful batch closes it.
    pub fn trip_breaker(&self) {
        let mut b = lock_breaker(&self.shared);
        if !matches!(b.state, BreakerState::Open { .. }) {
            self.shared.engine.stats.record_breaker_trip();
        }
        b.state = BreakerState::Open {
            since: Instant::now(),
        };
        b.consecutive_failures = b
            .consecutive_failures
            .max(self.shared.robust.breaker_threshold);
    }

    /// Whether the circuit breaker is currently open (shedding). A
    /// half-open breaker (probe in flight) reports `false` — it is
    /// actively testing recovery.
    pub fn breaker_open(&self) -> bool {
        matches!(lock_breaker(&self.shared).state, BreakerState::Open { .. })
    }

    /// Whether shutdown (graceful or crash) has begun; a draining or dead
    /// server rejects new submissions.
    pub fn is_shutting_down(&self) -> bool {
        lock_queue(&self.shared).shutdown
    }

    fn shutdown_inner(&mut self) {
        self.begin_shutdown();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Why the worker loop returned.
enum WorkerExit {
    /// Clean shutdown with a drained queue.
    Shutdown,
    /// The engine panicked under this worker; spawn a fresh one.
    Died,
}

/// Keep a worker alive: respawn it whenever it dies to a panic, stop only
/// on clean shutdown. The respawn count is exported via
/// [`ServerStats::worker_respawns`].
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        let worker_shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name("amdgcnn-serve-worker".into())
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn batch worker");
        match worker.join() {
            Ok(WorkerExit::Shutdown) => return,
            // `Err` is unreachable in practice (execute_batch catches
            // engine panics), but treat a join error as a death anyway so
            // the queue is never left without a consumer.
            Ok(WorkerExit::Died) | Err(_) => {
                shared.engine.stats.record_worker_respawn();
            }
        }
    }
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            return WorkerExit::Shutdown;
        }
        // Queue-wait per request and the batch-assembly window, measured
        // at drain time so time spent behind a busy worker is included.
        record_drain(&shared.engine.stats, batch.iter().map(|r| r.enqueued));
        if !execute_batch(shared, batch) {
            return WorkerExit::Died;
        }
    }
}

enum BatchOutcome {
    Answered(Vec<ClassProbs>),
    Failed(Error),
    Panicked,
}

/// Run one batch through the engine with panic isolation and transient
/// retry. Every request in the batch is resolved before returning. Returns
/// `false` if the engine panicked — the worker is considered dead and the
/// supervisor replaces it.
fn execute_batch(shared: &Shared, batch: Vec<Request>) -> bool {
    let started = Instant::now();
    let queries: Vec<LinkQuery> = batch.iter().map(|r| r.query).collect();
    let mut retries = 0u32;
    let outcome = loop {
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| shared.engine.try_predict(&queries)));
        match attempt {
            Ok(Ok(answers)) => break BatchOutcome::Answered(answers),
            Ok(Err(_transient)) => {
                if retries >= shared.robust.max_retries {
                    break BatchOutcome::Failed(Error::EngineFault { retries });
                }
                retries += 1;
                shared.engine.stats.record_engine_retries(1);
                // Exponential backoff, shift-capped so a huge retry budget
                // cannot overflow the multiplier.
                std::thread::sleep(shared.robust.retry_backoff * (1u32 << (retries - 1).min(16)));
            }
            Err(_panic_payload) => {
                shared.engine.stats.record_worker_panic();
                break BatchOutcome::Panicked;
            }
        }
    };
    match outcome {
        BatchOutcome::Answered(answers) => {
            shared.engine.stats.record_batch(started.elapsed());
            note_batch_success(shared);
            for (req, probs) in batch.into_iter().zip(answers) {
                // A caller that dropped its PendingQuery just discards the
                // answer; that is not a server error.
                let _ = req.reply.send(Ok(probs));
            }
            true
        }
        BatchOutcome::Failed(err) => {
            note_batch_failure(shared);
            shared
                .engine
                .stats
                .record_failed_queries(batch.len() as u64);
            for req in batch {
                let _ = req.reply.send(Err(err.clone()));
            }
            true
        }
        BatchOutcome::Panicked => {
            note_batch_failure(shared);
            shared
                .engine
                .stats
                .record_failed_queries(batch.len() as u64);
            for req in batch {
                let _ = req.reply.send(Err(Error::WorkerPanicked));
            }
            false
        }
    }
}

/// Any fully successful batch closes the breaker (a probe succeeding from
/// half-open, or an in-flight batch outlasting a trip).
fn note_batch_success(shared: &Shared) {
    let mut b = lock_breaker(shared);
    if !matches!(b.state, BreakerState::Closed) {
        shared.engine.stats.record_breaker_reset();
    }
    b.state = BreakerState::Closed;
    b.consecutive_failures = 0;
}

fn note_batch_failure(shared: &Shared) {
    let mut b = lock_breaker(shared);
    b.consecutive_failures = b.consecutive_failures.saturating_add(1);
    let trip = match b.state {
        // A failed probe re-opens immediately.
        BreakerState::HalfOpen => true,
        BreakerState::Closed => b.consecutive_failures >= shared.robust.breaker_threshold,
        BreakerState::Open { .. } => false,
    };
    if trip {
        b.state = BreakerState::Open {
            since: Instant::now(),
        };
        shared.engine.stats.record_breaker_trip();
    } else if let BreakerState::Open { since } = &mut b.state {
        // Still failing while open (in-flight batches admitted before the
        // trip): restart the cooldown clock.
        *since = Instant::now();
    }
}

/// Fail (in place) every queued request whose deadline has passed.
fn purge_expired(q: &mut Queue, shared: &Shared) {
    let now = Instant::now();
    let mut expired = 0u64;
    q.requests.retain(|r| match r.deadline {
        Some(d) if now >= d => {
            let _ = r.reply.send(Err(Error::DeadlineExceeded));
            expired += 1;
            false
        }
        _ => true,
    });
    if expired > 0 {
        shared.engine.stats.record_deadline_expired(expired);
    }
}

/// Block until a batch is ready: `max_batch` queued, or `max_wait` elapsed
/// since the oldest queued request was *enqueued* (not since the worker
/// noticed it — a query that waited behind a busy worker gets that time
/// credited), or shutdown (which flushes whatever is queued). Requests
/// whose own deadline expires while queued are failed in place and never
/// occupy a batch slot. Returns empty only on shutdown with an empty
/// queue.
fn collect_batch(shared: &Shared) -> Vec<Request> {
    let mut q = lock_queue(shared);
    'restart: loop {
        // Sleep until there is at least one live request (or we stop).
        loop {
            purge_expired(&mut q, shared);
            if !q.requests.is_empty() {
                break;
            }
            if q.shutdown {
                return Vec::new();
            }
            q = shared.wakeup.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        // A batch is forming: wait for it to fill, but never past the
        // oldest request's deadline. The queue is FIFO and this worker is
        // the only consumer, so the front entry stays the oldest until we
        // drain it.
        let batch_deadline =
            q.requests.front().expect("non-empty queue").enqueued + shared.cfg.max_wait;
        while q.requests.len() < shared.cfg.max_batch && !q.shutdown {
            let now = Instant::now();
            if now >= batch_deadline {
                break;
            }
            // Wake early enough to purge any per-request deadline landing
            // before the batch deadline.
            let wake_at = q
                .requests
                .iter()
                .filter_map(|r| r.deadline)
                .fold(batch_deadline, Instant::min);
            if wake_at > now {
                let (guard, _timeout) = shared
                    .wakeup
                    .wait_timeout(q, wake_at - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            purge_expired(&mut q, shared);
            if q.requests.is_empty() {
                continue 'restart;
            }
        }
        purge_expired(&mut q, shared);
        if q.requests.is_empty() {
            continue 'restart;
        }
        let take = q.requests.len().min(shared.cfg.max_batch);
        return q.requests.drain(..take).collect();
    }
}
