//! Criterion benchmarks of training throughput: one (AM-)DGCNN gradient
//! step over a small batch, and the rayon scaling of the batch-parallel
//! gradient computation (1 worker vs all workers).

use am_dgcnn::{
    prepare_batch, DgcnnModel, FeatureConfig, GnnKind, ModelConfig, TrainConfig, Trainer,
};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_tensor::ParamStore;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn setup() -> (DgcnnModel, ParamStore, Vec<am_dgcnn::PreparedSample>) {
    let ds = wn18_like(&Wn18Config {
        num_nodes: 800,
        num_edges: 3200,
        train_links: 64,
        test_links: 20,
        ..Default::default()
    });
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let mut cfg = ModelConfig::dgcnn_defaults(
        GnnKind::am_dgcnn(),
        fcfg.dim(),
        ds.edge_attrs.dim(),
        ds.num_classes,
    );
    cfg.sort_k = 20;
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
    let samples = prepare_batch(&ds, &ds.train, &fcfg);
    (model, ps, samples)
}

fn bench_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("am_dgcnn_one_epoch_64_samples", |b| {
        b.iter_batched(
            setup,
            |(model, mut ps, samples)| {
                let mut trainer = Trainer::new(TrainConfig {
                    lr: 5e-3,
                    ..Default::default()
                });
                trainer.train(&model, &mut ps, &samples, 1).expect("train");
                black_box(trainer.history.last().map(|e| e.loss))
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Rayon scaling: identical epoch under a single-thread pool.
    group.bench_function("am_dgcnn_one_epoch_64_samples_1thread", |b| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        b.iter_batched(
            setup,
            |(model, mut ps, samples)| {
                pool.install(|| {
                    let mut trainer = Trainer::new(TrainConfig {
                        lr: 5e-3,
                        ..Default::default()
                    });
                    trainer.train(&model, &mut ps, &samples, 1).expect("train");
                    black_box(trainer.history.last().map(|e| e.loss))
                })
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_epoch);
criterion_main!(benches);
