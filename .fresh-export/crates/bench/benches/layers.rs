//! Criterion benchmarks of the message-passing layers — the paper's §V-D
//! "without a significant cost to computational latency" claim: GAT with
//! edge attributes vs plain GCN, forward and forward+backward, on a
//! typical enclosing subgraph, all through the sparse-kernel
//! [`MessageGraph`] path.

use amdgcnn_nn::{GatConfig, GatConv, GcnConv, GraphLayer, MessageGraph};
use amdgcnn_tensor::{Matrix, ParamStore, Tape};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;

/// A representative enclosing subgraph: 60 nodes, mean degree 6.
fn subgraph(seed: u64) -> (usize, Vec<(usize, usize)>) {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..n * 3)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    (n, edges)
}

fn bench_layer_forward(c: &mut Criterion) {
    let (n, edges) = subgraph(0);
    let feat = 20usize;
    let hidden = 32usize;
    let mut rng = StdRng::seed_from_u64(1);
    let features = Matrix::from_fn(n, feat, |_, _| rng.random_range(-1.0f32..1.0));

    let mut ps = ParamStore::new();
    let gcn = GcnConv::new("gcn", feat, hidden, &mut ps, &mut rng);

    let gat_cfg = GatConfig {
        in_dim: feat,
        out_dim: hidden,
        edge_dim: 18,
        heads: 1,
        concat: true,
        negative_slope: 0.2,
    };
    let gat = GatConv::new("gat", gat_cfg, &mut ps, &mut rng);
    let gat_plain_cfg = GatConfig {
        edge_dim: 0,
        ..gat_cfg
    };
    let gat_plain = GatConv::new("gat_plain", gat_plain_cfg, &mut ps, &mut rng);

    let plain = MessageGraph::from_undirected(n, &edges);
    let typed: Vec<(usize, usize, u16)> = edges.iter().map(|&(u, v)| (u, v, 3)).collect();
    let per_edge = Matrix::from_fn(edges.len(), 18, |_, c| if c == 3 { 1.0 } else { 0.0 });
    let attributed = MessageGraph::from_typed(n, &typed, Some(&per_edge));

    let mut group = c.benchmark_group("layer_forward");
    group.sample_size(50);
    group.bench_function("gcn", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let h = tape.leaf(features.clone());
            black_box(gcn.forward(&mut tape, &ps, &plain, h))
        })
    });
    group.bench_function("gat_no_edge_attrs", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let h = tape.leaf(features.clone());
            black_box(gat_plain.forward(&mut tape, &ps, &plain, h))
        })
    });
    group.bench_function("gat_edge_attrs", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let h = tape.leaf(features.clone());
            black_box(gat.forward(&mut tape, &ps, &attributed, h))
        })
    });
    group.bench_function("gat_edge_attrs_backward", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let h = tape.leaf(features.clone());
            let out = gat.forward(&mut tape, &ps, &attributed, h);
            let act = tape.tanh(out);
            let loss = tape.mean_all(act);
            black_box(tape.backward(loss, ps.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_layer_forward);
criterion_main!(benches);
