//! Criterion micro-benchmarks of the numeric kernels: dense matmul (both
//! the sequential and rayon paths), its transpose variants, and sparse
//! SpMM — the operations dominating GNN forward/backward time.

use amdgcnn_tensor::{matmul, CsrMatrix, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0f32..1.0))
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for n in [32usize, 64, 128, 256] {
        let a = random(n, n, 1);
        let b = random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| black_box(matmul::matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| black_box(matmul::matmul_nt(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| black_box(matmul::matmul_tn(&a, &b)))
        });
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(20);
    for &(n, deg) in &[(200usize, 8usize), (1000, 8), (1000, 32)] {
        let mut rng = StdRng::seed_from_u64(3);
        let edges: Vec<(usize, usize)> = (0..n * deg / 2)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let adj = CsrMatrix::gcn_norm_from_edges(n, &edges);
        let h = random(n, 32, 4);
        group.bench_with_input(
            BenchmarkId::new("gcn_norm", format!("n{n}_d{deg}")),
            &n,
            |bench, _| bench.iter(|| black_box(adj.spmm(&h))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_spmm);
criterion_main!(benches);
