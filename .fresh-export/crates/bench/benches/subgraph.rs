//! Criterion benchmarks of the SEAL preprocessing path: enclosing-subgraph
//! extraction (union vs intersection, §III-A), DRNL labeling, and full
//! sample preparation throughput.

use am_dgcnn::{prepare_sample, FeatureConfig};
use amdgcnn_data::{primekg_like, wn18_like, PrimeKgConfig, Wn18Config};
use amdgcnn_graph::khop::extract_enclosing_subgraph;
use amdgcnn_graph::NeighborhoodMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let ds = primekg_like(&PrimeKgConfig::default());
    let link = ds.train[0];
    let mut group = c.benchmark_group("subgraph_extraction");
    group.sample_size(30);
    for mode in [NeighborhoodMode::Intersection, NeighborhoodMode::Union] {
        let cfg = amdgcnn_graph::SubgraphConfig {
            mode,
            ..ds.subgraph
        };
        group.bench_function(format!("primekg_{mode:?}"), |b| {
            b.iter(|| black_box(extract_enclosing_subgraph(&ds.graph, link.u, link.v, &cfg)))
        });
    }
    group.finish();
}

fn bench_sample_prep(c: &mut Criterion) {
    let wn = wn18_like(&Wn18Config::default());
    let fcfg = FeatureConfig::for_graph(wn.graph.num_node_types());
    let link = wn.train[0];
    let mut group = c.benchmark_group("sample_preparation");
    group.sample_size(30);
    group.bench_function("wn18_full_sample", |b| {
        b.iter(|| black_box(prepare_sample(&wn, &link, &fcfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_sample_prep);
criterion_main!(benches);
