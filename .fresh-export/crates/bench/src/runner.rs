//! Shared experiment runners for the table/figure binaries: model-pair
//! comparisons, epoch sweeps, and training-sample sweeps, each emitting
//! both an aligned text table and JSON rows.

use crate::configs::Bench;
use am_dgcnn::{EvalMetrics, Experiment, GnnKind, Hyperparams};
use amdgcnn_data::{
    biokg_like, cora_like, primekg_like, wn18_like, BioKgConfig, CoraConfig, Dataset,
    PrimeKgConfig, Wn18Config,
};
use amdgcnn_obs::Obs;
use serde::Serialize;

/// Materialize a benchmark dataset at its default (paper-scaled) size.
pub fn load_dataset(bench: Bench) -> Dataset {
    match bench {
        Bench::PrimeKg => primekg_like(&PrimeKgConfig::default()),
        Bench::BioKg => biokg_like(&BioKgConfig::default()),
        Bench::Wn18 => wn18_like(&Wn18Config::default()),
        Bench::Cora => cora_like(&CoraConfig::default()),
    }
}

/// The AM-DGCNN variant appropriate for a dataset: edge attributes when the
/// dataset has them, plain attention otherwise (Cora).
pub fn am_dgcnn_for(ds: &Dataset) -> GnnKind {
    if ds.edge_attrs.dim() > 0 {
        GnnKind::Gat {
            edge_attrs: true,
            heads: 1,
        }
    } else {
        GnnKind::Gat {
            edge_attrs: false,
            heads: 1,
        }
    }
}

/// One comparison row: both models on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Dataset name.
    pub dataset: String,
    /// AM-DGCNN metrics.
    pub am_dgcnn: EvalMetrics,
    /// Vanilla DGCNN metrics.
    pub vanilla: EvalMetrics,
}

/// Train both models with the given hyperparameters and compare (Table III
/// row).
pub fn compare_models(ds: &Dataset, hyper: Hyperparams, epochs: usize, seed: u64) -> ComparisonRow {
    let am = Experiment::builder()
        .gnn(am_dgcnn_for(ds))
        .hyper(hyper)
        .seed(seed)
        .build()
        .run(ds, epochs)
        .expect("comparison run");
    let vanilla = Experiment::builder()
        .gnn(GnnKind::Gcn)
        .hyper(hyper)
        .seed(seed)
        .build()
        .run(ds, epochs)
        .expect("comparison run");
    ComparisonRow {
        dataset: ds.name.to_string(),
        am_dgcnn: am,
        vanilla,
    }
}

/// One point of an epoch- or sample-sweep series.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// X value (epochs trained, or training samples used).
    pub x: usize,
    /// AM-DGCNN AUC.
    pub am_dgcnn_auc: f64,
    /// Vanilla DGCNN AUC.
    pub vanilla_auc: f64,
}

/// Epoch sweep (Figs. 3–6): evaluate both models at each checkpoint while
/// training continues incrementally.
pub fn epoch_sweep(
    ds: &Dataset,
    hyper: Hyperparams,
    checkpoints: &[usize],
    seed: u64,
) -> Vec<SweepPoint> {
    epoch_sweep_obs(ds, hyper, checkpoints, seed, &Obs::disabled())
}

/// [`epoch_sweep`] with per-stage timing recorded into `obs` (sample
/// preparation, training phases, evaluation). Observation never feeds back
/// into the computation, so the sweep points are identical either way.
pub fn epoch_sweep_obs(
    ds: &Dataset,
    hyper: Hyperparams,
    checkpoints: &[usize],
    seed: u64,
    obs: &Obs,
) -> Vec<SweepPoint> {
    let am_exp = Experiment::builder()
        .gnn(am_dgcnn_for(ds))
        .hyper(hyper)
        .seed(seed)
        .observe(obs.clone())
        .build();
    let am = am_exp
        .run_session(am_exp.session(ds, None).expect("session"), checkpoints)
        .expect("epoch sweep");
    let va_exp = Experiment::builder()
        .gnn(GnnKind::Gcn)
        .hyper(hyper)
        .seed(seed)
        .observe(obs.clone())
        .build();
    let va = va_exp
        .run_session(va_exp.session(ds, None).expect("session"), checkpoints)
        .expect("epoch sweep");
    checkpoints
        .iter()
        .zip(am.iter().zip(va.iter()))
        .map(|(&x, (a, v))| SweepPoint {
            x,
            am_dgcnn_auc: a.auc,
            vanilla_auc: v.auc,
        })
        .collect()
}

/// Training-sample sweep (Figs. 7–9): train to `epochs` on increasing
/// subsets of the training split.
pub fn sample_sweep(
    ds: &Dataset,
    hyper: Hyperparams,
    subset_sizes: &[usize],
    epochs: usize,
    seed: u64,
) -> Vec<SweepPoint> {
    sample_sweep_obs(ds, hyper, subset_sizes, epochs, seed, &Obs::disabled())
}

/// [`sample_sweep`] with per-stage timing recorded into `obs`. The sweep
/// points are identical with or without observation.
pub fn sample_sweep_obs(
    ds: &Dataset,
    hyper: Hyperparams,
    subset_sizes: &[usize],
    epochs: usize,
    seed: u64,
    obs: &Obs,
) -> Vec<SweepPoint> {
    subset_sizes
        .iter()
        .map(|&n| {
            let am_exp = Experiment::builder()
                .gnn(am_dgcnn_for(ds))
                .hyper(hyper)
                .seed(seed)
                .observe(obs.clone())
                .build();
            let am = am_exp
                .run_session(am_exp.session(ds, Some(n)).expect("session"), &[epochs])
                .expect("sample sweep")
                .pop()
                .expect("one");
            let va_exp = Experiment::builder()
                .gnn(GnnKind::Gcn)
                .hyper(hyper)
                .seed(seed)
                .observe(obs.clone())
                .build();
            let va = va_exp
                .run_session(va_exp.session(ds, Some(n)).expect("session"), &[epochs])
                .expect("sample sweep")
                .pop()
                .expect("one");
            SweepPoint {
                x: n,
                am_dgcnn_auc: am.auc,
                vanilla_auc: va.auc,
            }
        })
        .collect()
}

/// The standard checkpoint grid of the paper's epoch figures (2..12 step 2).
pub const EPOCH_GRID: [usize; 6] = [2, 4, 6, 8, 10, 12];

/// Subset fractions for the sample-sweep figures (sixths of the split).
pub fn subset_grid(train_size: usize) -> Vec<usize> {
    (1..=6).map(|i| (train_size * i / 6).max(1)).collect()
}

/// Render sweep points as an aligned text table.
pub fn format_sweep(title: &str, xlabel: &str, points: &[SweepPoint]) -> String {
    let mut out = format!(
        "{title}\n{:<10} {:>14} {:>14}\n",
        xlabel, "AM-DGCNN AUC", "DGCNN AUC"
    );
    for p in points {
        out.push_str(&format!(
            "{:<10} {:>14.4} {:>14.4}\n",
            p.x, p.am_dgcnn_auc, p.vanilla_auc
        ));
    }
    out
}

/// Render comparison rows as the Table III layout.
pub fn format_comparison(rows: &[ComparisonRow]) -> String {
    let mut out = format!(
        "{:<14} | {:>8} {:>8} | {:>8} {:>8}\n",
        "Dataset", "AM AUC", "AM AP", "VAN AUC", "VAN AP"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} | {:>8.2} {:>7.0}% | {:>8.2} {:>7.0}%\n",
            r.dataset,
            r.am_dgcnn.auc,
            r.am_dgcnn.ap * 100.0,
            r.vanilla.auc,
            r.vanilla.ap * 100.0
        ));
    }
    out
}

/// Emit a result payload as pretty JSON on stdout (consumed by
/// EXPERIMENTS.md tooling).
pub fn emit_json<T: Serialize>(label: &str, value: &T) {
    println!(
        "JSON {label} {}",
        serde_json::to_string(value).expect("experiment results serialize")
    );
}

/// Print and emit a figure run's per-stage timing: a span table on stdout,
/// a `JSON <figure>_timing {...}` line, and — when `AMDGCNN_TIMING_OUT`
/// names a path — the report JSON written there (the CI artifact).
fn emit_timing(figure: &str, obs: &Obs) {
    let report = obs.report();
    println!("{figure} per-stage timing\n{}", report.format_spans());
    emit_json(&format!("{figure}_timing"), &report);
    if let Some(path) = crate::obs_report::timing_out_from_env() {
        if let Err(e) = crate::obs_report::write_timing_report(&path, &report) {
            eprintln!(
                "warning: could not write timing report to {}: {e}",
                path.display()
            );
        }
    }
}

/// Drive a full epoch figure (Figs. 4–6): panels (a) default and (b)
/// per-dataset tuned hyperparameters, both models, the standard epoch grid.
/// Per-stage timing across both panels is printed and emitted at the end.
pub fn run_epoch_figure(bench: Bench, figure: &str, fast: bool) {
    let ds = load_dataset(bench);
    let obs = Obs::enabled();
    let grid: &[usize] = if fast { &[2, 4] } else { &EPOCH_GRID };
    for (panel, hyper) in [
        (
            "(a) default hyperparameters",
            crate::configs::default_hyper(),
        ),
        (
            "(b) auto-tuned hyperparameters",
            crate::configs::tuned_hyper(bench),
        ),
    ] {
        let pts = epoch_sweep_obs(&ds, hyper, grid, 0xf16, &obs);
        println!(
            "{}",
            format_sweep(&format!("{figure} {panel} — {}", ds.name), "epochs", &pts)
        );
        emit_json(
            &format!(
                "{figure}_{}",
                if panel.starts_with("(a)") {
                    "default"
                } else {
                    "tuned"
                }
            ),
            &pts,
        );
    }
    emit_timing(figure, &obs);
}

/// Drive a full training-sample figure (Figs. 7–9): panels (a) default and
/// (b) tuned, both models, sixth-fraction subsets, 10 training epochs.
/// Per-stage timing across both panels is printed and emitted at the end.
pub fn run_sample_figure(bench: Bench, figure: &str, fast: bool) {
    let ds = load_dataset(bench);
    let obs = Obs::enabled();
    let epochs = if fast { 3 } else { 10 };
    let subsets = if fast {
        vec![ds.train.len() / 2, ds.train.len()]
    } else {
        subset_grid(ds.train.len())
    };
    for (panel, hyper) in [
        (
            "(a) default hyperparameters",
            crate::configs::default_hyper(),
        ),
        (
            "(b) auto-tuned hyperparameters",
            crate::configs::tuned_hyper(bench),
        ),
    ] {
        let pts = sample_sweep_obs(&ds, hyper, &subsets, epochs, 0xf79, &obs);
        println!(
            "{}",
            format_sweep(&format!("{figure} {panel} — {}", ds.name), "samples", &pts)
        );
        emit_json(
            &format!(
                "{figure}_{}",
                if panel.starts_with("(a)") {
                    "default"
                } else {
                    "tuned"
                }
            ),
            &pts,
        );
    }
    emit_timing(figure, &obs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_grid_is_monotone_and_ends_full() {
        let g = subset_grid(600);
        assert_eq!(g, vec![100, 200, 300, 400, 500, 600]);
        let tiny = subset_grid(4);
        assert!(tiny.iter().all(|&n| n >= 1));
        assert_eq!(*tiny.last().expect("nonempty"), 4);
    }

    #[test]
    fn formatters_contain_data() {
        let pts = vec![SweepPoint {
            x: 2,
            am_dgcnn_auc: 0.9,
            vanilla_auc: 0.5,
        }];
        let s = format_sweep("t", "epochs", &pts);
        assert!(s.contains("0.9000"));
        assert!(s.contains("0.5000"));
        let rows = vec![ComparisonRow {
            dataset: "x".into(),
            am_dgcnn: EvalMetrics {
                auc: 0.99,
                ap: 0.97,
                accuracy: 0.9,
            },
            vanilla: EvalMetrics {
                auc: 0.75,
                ap: 0.55,
                accuracy: 0.6,
            },
        }];
        let t = format_comparison(&rows);
        assert!(t.contains("0.99"));
        assert!(t.contains("97%"));
    }

    #[test]
    fn am_variant_follows_edge_attrs() {
        let cora = cora_like(&CoraConfig::tiny());
        assert_eq!(
            am_dgcnn_for(&cora),
            GnnKind::Gat {
                edge_attrs: false,
                heads: 1
            }
        );
        let wn = wn18_like(&Wn18Config::tiny());
        assert_eq!(
            am_dgcnn_for(&wn),
            GnnKind::Gat {
                edge_attrs: true,
                heads: 1
            }
        );
    }
}
