//! End-to-end observability smoke run and timing-report plumbing.
//!
//! [`obs_smoke_report`] drives the full lifecycle — sample preparation,
//! training with durable checkpointing, resume-restore, evaluation, and
//! batched serving through the artifact format — with one shared [`Obs`]
//! registry, and returns the merged per-stage [`Report`]. The `obs_report`
//! binary and the CI observability step use it to prove that every
//! instrumented stage of the pipeline shows up as a named span in a single
//! `amdgcnn-bench` run.

use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_obs::{Obs, Report};
use amdgcnn_serve::{
    save_model, ArtifactMeta, BatchConfig, BatchServer, InferenceEngine, LinkQuery,
};
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Every span the instrumented pipeline is expected to produce in one
/// end-to-end run — the tentpole stages of DESIGN.md §12. The acceptance
/// test and the `obs_report` binary both check the report against this
/// list, so a renamed or dropped span fails loudly.
pub const TENTPOLE_SPANS: [&str; 14] = [
    "pipeline/sample",
    "pipeline/sample/khop",
    "pipeline/sample/drnl",
    "pipeline/sample/tensorize",
    "train/epoch",
    "train/forward",
    "train/backward",
    "train/optimizer_step",
    "pipeline/checkpoint/save",
    "pipeline/checkpoint/restore",
    "pipeline/evaluate",
    "serve/queue_wait",
    "serve/batch_assembly",
    "serve/engine",
];

/// Training epochs for the smoke run (small: timing coverage, not
/// accuracy, is under test).
const SMOKE_EPOCHS: usize = 2;
/// Training-split subset used by the smoke run.
const SMOKE_TRAIN_SUBSET: usize = 48;
/// Queries replayed through the batch server.
const SMOKE_QUERIES: usize = 32;

/// Run the full pipeline lifecycle on a tiny WN18-like graph with a single
/// shared observability registry and return its report. `scratch` is used
/// for the checkpoint directory (created if needed, left behind for the
/// caller to clean up).
///
/// Stages exercised, in order: sample preparation (k-hop, DRNL,
/// tensorization), training with a checkpoint save every epoch, evaluation,
/// a second session resumed from the newest checkpoint generation
/// (restore), and batched serving of the resumed model through the
/// versioned artifact format.
pub fn obs_smoke_report(scratch: &Path) -> Report {
    let obs = Obs::enabled();
    let ds = wn18_like(&Wn18Config::tiny());
    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 8,
        sort_k: 10,
    };
    let ckpt = scratch.join("checkpoints");

    // Train with checkpointing each epoch: covers pipeline/sample*,
    // train/*, pipeline/checkpoint/save, and pipeline/evaluate.
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(17)
        .checkpoint_to(&ckpt, 1)
        .observe(obs.clone())
        .build();
    let session = exp
        .session(&ds, Some(SMOKE_TRAIN_SUBSET.min(ds.train.len())))
        .expect("smoke session");
    exp.run_session(session, &[SMOKE_EPOCHS])
        .expect("smoke training run");

    // Resume from the newest generation: covers
    // pipeline/checkpoint/restore.
    let resumed = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(17)
        .resume_from(&ckpt)
        .observe(obs.clone())
        .build();
    let session = resumed
        .session(&ds, Some(SMOKE_TRAIN_SUBSET.min(ds.train.len())))
        .expect("resumed session");

    // Serve the resumed model through the artifact path with the same
    // registry: covers serve/queue_wait, serve/batch_assembly,
    // serve/engine, and the serve/* counters.
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, SMOKE_EPOCHS)
        .expect("artifact meta");
    let mut artifact = Vec::new();
    save_model(&meta, &session.ps, &mut artifact).expect("save artifact");
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 64)
        .expect("load engine")
        .with_obs(obs.clone());
    let server = BatchServer::start(
        engine,
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(1),
        },
    );
    let queries: Vec<LinkQuery> = ds
        .test
        .iter()
        .cycle()
        .take(SMOKE_QUERIES)
        .map(|l| (l.u, l.v))
        .collect();
    server.submit_all_strict(&queries).expect("serve answers");
    server.shutdown();

    obs.report()
}

/// Write a report as a JSON file (the CI timing artifact), creating parent
/// directories as needed.
///
/// # Errors
/// Propagates filesystem errors from directory creation and the write.
pub fn write_timing_report(path: &Path, report: &Report) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(report.to_json().as_bytes())?;
    f.write_all(b"\n")
}

/// The timing-report output path requested via the `AMDGCNN_TIMING_OUT`
/// environment variable, if set and non-empty. Figure binaries and the
/// `obs_report` binary consult this so CI can collect per-stage timing
/// JSON without extra flags.
pub fn timing_out_from_env() -> Option<std::path::PathBuf> {
    match std::env::var("AMDGCNN_TIMING_OUT") {
        Ok(p) if !p.is_empty() => Some(std::path::PathBuf::from(p)),
        _ => None,
    }
}
