//! Serving-throughput benchmark: micro-batched + cached serving vs.
//! one-at-a-time inference on a repeat-heavy query stream.
//!
//! ```text
//! cargo run --release -p amdgcnn-bench --bin serve_throughput
//! ```
//!
//! Trains AM-DGCNN briefly on the default WN18-like graph, saves and
//! reloads the model artifact, then replays a hot-skewed workload (a few
//! hot pairs dominate, as repeated lookups of popular entities do in a
//! deployed KG service) through both serving paths and reports the
//! speedup. Answers from both paths are compared bit-for-bit.

use am_dgcnn::{Experiment, FeatureConfig, GnnKind, Hyperparams};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_serve::{
    save_model, ArtifactMeta, BatchConfig, BatchServer, InferenceEngine, LinkQuery,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// Total queries replayed through each serving path.
const NUM_QUERIES: usize = 600;
/// Distinct link pairs in the workload; the hot subset gets most traffic.
const DISTINCT_PAIRS: usize = 48;
/// Fraction of traffic that hits the 8 hottest pairs.
const HOT_FRACTION: f64 = 0.8;
const HOT_PAIRS: usize = 8;

fn build_workload(pairs: &[LinkQuery], rng: &mut StdRng) -> Vec<LinkQuery> {
    (0..NUM_QUERIES)
        .map(|_| {
            if rng.random_range(0.0..1.0) < HOT_FRACTION {
                pairs[rng.random_range(0..HOT_PAIRS.min(pairs.len()))]
            } else {
                pairs[rng.random_range(0..pairs.len())]
            }
        })
        .collect()
}

fn main() {
    am_dgcnn::runtime::tune_allocator_for_batching();
    let ds = wn18_like(&Wn18Config::default());
    println!(
        "dataset: {} — {} nodes, {} edges, {} link classes",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );

    // Train a small model briefly: serving throughput, not accuracy, is
    // under test here.
    let hyper = Hyperparams {
        lr: 5e-3,
        hidden_dim: 16,
        sort_k: 20,
    };
    let exp = Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(hyper)
        .seed(17)
        .build();
    let mut session = exp.session(&ds, Some(200)).expect("session");
    session
        .trainer
        .train(&session.model, &mut session.ps, &session.train_samples, 2)
        .expect("train");

    // Persist and reload through the artifact format, as a real server
    // process would.
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let meta = ArtifactMeta::describe(&ds, &session.model.cfg, &fcfg, 2).expect("meta");
    let mut artifact = Vec::new();
    save_model(&meta, &session.ps, &mut artifact).expect("save");
    println!("artifact: {} bytes\n", artifact.len());

    let mut rng = StdRng::seed_from_u64(99);
    let pairs: Vec<LinkQuery> = ds
        .test
        .iter()
        .take(DISTINCT_PAIRS)
        .map(|l| (l.u, l.v))
        .collect();
    let workload = build_workload(&pairs, &mut rng);

    // Path A: one query at a time, no cache — the naive serving loop.
    let plain = InferenceEngine::load(artifact.as_slice(), ds.clone(), 0).expect("engine");
    let started = Instant::now();
    let unbatched: Vec<Vec<f32>> = workload.iter().map(|&q| plain.predict_one(q)).collect();
    let unbatched_elapsed = started.elapsed();
    let unbatched_qps = NUM_QUERIES as f64 / unbatched_elapsed.as_secs_f64();
    println!(
        "one-at-a-time : {NUM_QUERIES} queries in {unbatched_elapsed:.2?}  ({unbatched_qps:.0} qps)"
    );

    // Path B: micro-batched server with the subgraph cache.
    let engine = InferenceEngine::load(artifact.as_slice(), ds.clone(), 256).expect("engine");
    let server = BatchServer::start(
        engine,
        BatchConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
        },
    );
    let started = Instant::now();
    let batched = server
        .submit_all_strict(&workload)
        .expect("batched answers");
    let batched_elapsed = started.elapsed();
    let batched_qps = NUM_QUERIES as f64 / batched_elapsed.as_secs_f64();
    println!(
        "micro-batched : {NUM_QUERIES} queries in {batched_elapsed:.2?}  ({batched_qps:.0} qps)"
    );

    assert_eq!(
        unbatched, batched,
        "batched serving must answer identically to one-at-a-time"
    );

    let speedup = batched_qps / unbatched_qps;
    let stats = server.stats();
    println!("\nserver stats  : {stats}");
    println!("speedup       : {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "micro-batched serving must be at least 2x one-at-a-time (got {speedup:.2}x)"
    );
    server.shutdown();
}
