//! Regenerates **Fig. 4** (epochs → AUC for PrimeKG; panels (a) default and
//! (b) auto-tuned hyperparameters).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig4_primekg_epochs [fast]
//! ```

use amdgcnn_bench::runner::run_epoch_figure;
use amdgcnn_bench::Bench;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    run_epoch_figure(Bench::PrimeKg, "fig4", fast);
}
