//! Regenerates **Fig. 9** (training samples → AUC for WordNet-18; panels
//! (a) default and (b) auto-tuned hyperparameters; 10 training epochs).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig9_wn18_samples [fast]
//! ```

use amdgcnn_bench::runner::run_sample_figure;
use amdgcnn_bench::Bench;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    run_sample_figure(Bench::Wn18, "fig9", fast);
}
