//! **Ablation A5** (§III-B): the paper drops node2vec embeddings from the
//! SEAL node-attribute vector after observing no accuracy gain on
//! knowledge graphs. This binary reproduces that observation: AM-DGCNN on
//! the PrimeKG-like dataset with and without a node2vec block.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin ablation_node2vec [fast]
//! ```

use am_dgcnn::{
    evaluate_model, prepare_batch, DgcnnModel, EvalMetrics, FeatureConfig, GnnKind, ModelConfig,
    TrainConfig, Trainer,
};
use amdgcnn_bench::runner::load_dataset;
use amdgcnn_bench::{runner::emit_json, Bench};
use amdgcnn_graph::node2vec::{node2vec_embeddings, Node2VecConfig};
use amdgcnn_graph::walks::WalkConfig;
use amdgcnn_tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    variant: String,
    feature_dim: usize,
    metrics: EvalMetrics,
}

fn run_variant(ds: &amdgcnn_data::Dataset, fcfg: &FeatureConfig, epochs: usize) -> EvalMetrics {
    let mut cfg = ModelConfig::dgcnn_defaults(
        GnnKind::am_dgcnn(),
        fcfg.dim(),
        ds.edge_attrs.dim(),
        ds.num_classes,
    );
    cfg.sort_k = 40;
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0xa5);
    let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
    let train = prepare_batch(ds, &ds.train, fcfg);
    let test = prepare_batch(ds, &ds.test, fcfg);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 4e-3,
        seed: 0xa5,
        ..Default::default()
    });
    trainer
        .train(&model, &mut ps, &train, epochs)
        .expect("train");
    evaluate_model(&model, &ps, &test)
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let ds = load_dataset(Bench::PrimeKg);

    println!("node2vec feature ablation on primekg-like ({epochs} epochs)");
    let mut rows = Vec::new();

    let plain = FeatureConfig::for_graph(ds.graph.num_node_types());
    let m = run_variant(&ds, &plain, epochs);
    println!(
        "without node2vec (dim {:>3}): auc {:.3}  ap {:.3}",
        plain.dim(),
        m.auc,
        m.ap
    );
    rows.push(Row {
        variant: "without-node2vec".into(),
        feature_dim: plain.dim(),
        metrics: m,
    });

    eprintln!("training node2vec embeddings over the whole graph...");
    let embeddings = node2vec_embeddings(
        &ds.graph,
        &Node2VecConfig {
            dims: 16,
            epochs: if fast { 1 } else { 2 },
            walk: WalkConfig {
                walk_length: 10,
                walks_per_node: 2,
                seed: 0xa5,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let with = FeatureConfig {
        node2vec: Some(Arc::new(embeddings)),
        ..plain.clone()
    };
    let m = run_variant(&ds, &with, epochs);
    println!(
        "with    node2vec (dim {:>3}): auc {:.3}  ap {:.3}",
        with.dim(),
        m.auc,
        m.ap
    );
    rows.push(Row {
        variant: "with-node2vec".into(),
        feature_dim: with.dim(),
        metrics: m,
    });

    emit_json("ablation_node2vec", &rows);
    println!("\nPaper §III-B: node2vec does not improve knowledge-graph accuracy; the\nDRNL + node-type features already carry the usable signal.");
}
