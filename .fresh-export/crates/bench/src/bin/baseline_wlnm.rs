//! **Baseline A4** (§VI-B): the Weisfeiler-Lehman Neural Machine — the
//! supervised-heuristic-learning predecessor of SEAL — against both DGCNN
//! variants, illustrating the progression WLNM → DGCNN → AM-DGCNN the
//! paper's related-work section describes.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin baseline_wlnm [fast]
//! ```

use am_dgcnn::{
    evaluate_model, prepare_batch, EvalMetrics, Experiment, FeatureConfig, GnnKind, TrainConfig,
    Trainer, WlnmConfig, WlnmModel,
};
use amdgcnn_bench::runner::{am_dgcnn_for, emit_json, load_dataset};
use amdgcnn_bench::{tuned_hyper, Bench};
use amdgcnn_tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    metrics: EvalMetrics,
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let mut rows = Vec::new();
    println!("WLNM vs DGCNN vs AM-DGCNN ({epochs} epochs)");
    println!(
        "{:<14} {:<16} {:>8} {:>8} {:>8}",
        "Dataset", "Model", "AUC", "AP", "Acc"
    );

    for bench in [Bench::Cora, Bench::PrimeKg] {
        let ds = load_dataset(bench);

        // WLNM: fixed-size WL-ordered adjacency + MLP.
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0x317);
        let wlnm = WlnmModel::new(WlnmConfig::defaults(ds.num_classes), &mut ps, &mut rng);
        let train = prepare_batch(&ds, &ds.train, &fcfg);
        let test = prepare_batch(&ds, &ds.test, &fcfg);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 3e-3,
            seed: 0x317,
            ..Default::default()
        });
        trainer
            .train(&wlnm, &mut ps, &train, epochs)
            .expect("train");
        let m = evaluate_model(&wlnm, &ps, &test);
        println!(
            "{:<14} {:<16} {:>8.3} {:>8.3} {:>8.3}",
            ds.name, "wlnm", m.auc, m.ap, m.accuracy
        );
        rows.push(Row {
            dataset: ds.name.into(),
            model: "wlnm".into(),
            metrics: m,
        });

        for gnn in [GnnKind::Gcn, am_dgcnn_for(&ds)] {
            let m = Experiment::new(gnn, tuned_hyper(bench), 0x317)
                .run(&ds, epochs)
                .expect("run");
            println!(
                "{:<14} {:<16} {:>8.3} {:>8.3} {:>8.3}",
                ds.name,
                gnn.name(),
                m.auc,
                m.ap,
                m.accuracy
            );
            rows.push(Row {
                dataset: ds.name.into(),
                model: gnn.name().into(),
                metrics: m,
            });
        }
    }
    emit_json("baseline_wlnm", &rows);
}
