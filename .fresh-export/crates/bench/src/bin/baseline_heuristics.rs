//! **Baseline A3** (§VI-A context): classical link-prediction heuristics
//! (common neighbors, Jaccard, Adamic–Adar, resource allocation,
//! preferential attachment, Katz, personalized PageRank) scored as AUC on
//! the Cora-like binary link-prediction test split, next to the two GNNs.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin baseline_heuristics [fast]
//! ```

use am_dgcnn::metrics::roc_auc;
use am_dgcnn::{Experiment, GnnKind};
use amdgcnn_bench::runner::{am_dgcnn_for, emit_json, load_dataset};
use amdgcnn_bench::{tuned_hyper, Bench};
use amdgcnn_graph::heuristics::Heuristic;
use amdgcnn_graph::katz::{katz_score, KatzConfig};
use amdgcnn_graph::pagerank::{pagerank_score, PageRankConfig};
use serde::Serialize;

#[derive(Serialize)]
struct BaselineRow {
    method: String,
    auc: f64,
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let ds = load_dataset(Bench::Cora);
    // Heuristics are evaluated on a subsample when `fast` (PPR is a full
    // power iteration per endpoint).
    let test: Vec<_> = if fast {
        ds.test.iter().take(120).cloned().collect()
    } else {
        ds.test.clone()
    };
    let labels: Vec<bool> = test.iter().map(|l| l.class == 1).collect();
    let mut rows = Vec::new();

    println!("Classical heuristics vs supervised heuristic learning on cora-like");
    for h in Heuristic::ALL {
        let scores: Vec<f32> = test
            .iter()
            .map(|l| h.score(&ds.graph, l.u, l.v) as f32)
            .collect();
        let auc = roc_auc(&scores, &labels);
        println!("{:<26} auc {:.3}", h.name(), auc);
        rows.push(BaselineRow {
            method: h.name().to_string(),
            auc,
        });
    }
    let katz_cfg = KatzConfig::default();
    let scores: Vec<f32> = test
        .iter()
        .map(|l| katz_score(&ds.graph, l.u, l.v, &katz_cfg) as f32)
        .collect();
    let auc = roc_auc(&scores, &labels);
    println!("{:<26} auc {:.3}", "katz", auc);
    rows.push(BaselineRow {
        method: "katz".into(),
        auc,
    });

    let pr_cfg = PageRankConfig {
        max_iters: 30,
        ..Default::default()
    };
    let ppr_sample: Vec<_> = test.iter().take(if fast { 60 } else { 200 }).collect();
    let ppr_labels: Vec<bool> = ppr_sample.iter().map(|l| l.class == 1).collect();
    let scores: Vec<f32> = ppr_sample
        .iter()
        .map(|l| pagerank_score(&ds.graph, l.u, l.v, &pr_cfg) as f32)
        .collect();
    let auc = roc_auc(&scores, &ppr_labels);
    println!(
        "{:<26} auc {:.3} (on {} pairs)",
        "personalized-pagerank",
        auc,
        ppr_sample.len()
    );
    rows.push(BaselineRow {
        method: "personalized-pagerank".into(),
        auc,
    });

    let epochs = if fast { 3 } else { 10 };
    for (name, gnn) in [
        ("am-dgcnn", am_dgcnn_for(&ds)),
        ("vanilla-dgcnn", GnnKind::Gcn),
    ] {
        let m = Experiment::new(gnn, tuned_hyper(Bench::Cora), 0xba5e)
            .run(&ds, epochs)
            .expect("run");
        println!("{name:<26} auc {:.3}", m.auc);
        rows.push(BaselineRow {
            method: name.into(),
            auc: m.auc,
        });
    }
    emit_json("baseline_heuristics", &rows);
}
