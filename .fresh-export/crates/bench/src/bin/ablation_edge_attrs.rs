//! **Ablation A1**: separates the paper's two changes — attention (GCN→GAT)
//! and edge attributes — by running three variants on each knowledge-graph
//! dataset: vanilla DGCNN, GAT *without* edge attributes, and full
//! AM-DGCNN.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin ablation_edge_attrs [fast]
//! ```

use am_dgcnn::{EvalMetrics, Experiment, GnnKind};
use amdgcnn_bench::runner::{emit_json, load_dataset};
use amdgcnn_bench::{tuned_hyper, Bench};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    dataset: String,
    variant: String,
    metrics: EvalMetrics,
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let mut rows = Vec::new();
    println!("Ablation — attention vs edge attributes ({epochs} epochs)");
    println!(
        "{:<14} {:<20} {:>8} {:>8} {:>8}",
        "Dataset", "Variant", "AUC", "AP", "Acc"
    );
    for bench in [Bench::PrimeKg, Bench::BioKg, Bench::Wn18] {
        let ds = load_dataset(bench);
        for gnn in [
            GnnKind::Gcn,
            GnnKind::Gat {
                edge_attrs: false,
                heads: 1,
            },
            GnnKind::Gat {
                edge_attrs: true,
                heads: 1,
            },
        ] {
            let m = Experiment::new(gnn, tuned_hyper(bench), 0xab1)
                .run(&ds, epochs)
                .expect("run");
            println!(
                "{:<14} {:<20} {:>8.3} {:>8.3} {:>8.3}",
                ds.name,
                gnn.name(),
                m.auc,
                m.ap,
                m.accuracy
            );
            rows.push(AblationRow {
                dataset: ds.name.to_string(),
                variant: gnn.name().to_string(),
                metrics: m,
            });
        }
    }
    emit_json("ablation_edge_attrs", &rows);
}
