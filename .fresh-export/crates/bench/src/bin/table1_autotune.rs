//! Hyperparameter auto-tuning over the **Table I** search space (§III-D):
//! GP-based Bayesian optimization (the DeepHyper Centralized-BO analogue)
//! maximizing test AUC of AM-DGCNN on a chosen dataset, compared against a
//! random-search baseline at the same budget.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin table1_autotune [primekg|biokg|wn18|cora] [budget]
//! ```
//!
//! Defaults: wn18, budget 8. The winning configurations are what
//! `crates/bench/src/configs.rs` checks in for the figure binaries.

use am_dgcnn::{Experiment, Hyperparams};
use amdgcnn_bench::runner::{am_dgcnn_for, emit_json, load_dataset};
use amdgcnn_bench::Bench;
use amdgcnn_tune::{bayes_opt, random_search, BayesConfig, SearchSpace};
use serde::Serialize;

#[derive(Serialize)]
struct TuneOutcome {
    dataset: String,
    strategy: String,
    budget: usize,
    best_auc: f64,
    best: Hyperparams,
    running_best: Vec<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = match args.get(1).map(String::as_str) {
        Some("primekg") => Bench::PrimeKg,
        Some("biokg") => Bench::BioKg,
        Some("cora") => Bench::Cora,
        _ => Bench::Wn18,
    };
    let budget: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let ds = load_dataset(bench);
    // Tuning fidelity: a half-size training subset and 6 epochs keep each
    // evaluation cheap; the final figures retrain at full fidelity.
    let subset = Some(ds.train.len() / 2);
    let space = SearchSpace::table1();
    let gnn = am_dgcnn_for(&ds);

    let objective = |point: &[f64]| -> f64 {
        let hyper = Hyperparams {
            lr: point[0] as f32,
            hidden_dim: point[1] as usize,
            sort_k: point[2] as usize,
        };
        let exp = Experiment::new(gnn, hyper, 0x7e5e);
        let metrics = exp
            .run_session(exp.session(&ds, subset).expect("session"), &[6])
            .expect("tuning run")
            .pop()
            .expect("one checkpoint");
        eprintln!(
            "  eval lr={:.2e} hidden={} k={} -> auc={:.4}",
            hyper.lr, hyper.hidden_dim, hyper.sort_k, metrics.auc
        );
        metrics.auc
    };

    println!(
        "Table I auto-tuning on {} (budget {budget} evaluations)",
        ds.name
    );
    for strategy in ["bayes", "random"] {
        let result = match strategy {
            "bayes" => bayes_opt(
                &space,
                objective,
                budget,
                BayesConfig {
                    n_init: (budget / 2).max(3),
                    ..Default::default()
                },
                0x7e5e,
            ),
            _ => random_search(&space, objective, budget, 0x7e5e),
        };
        let best = Hyperparams {
            lr: result.best.point[0] as f32,
            hidden_dim: result.best.point[1] as usize,
            sort_k: result.best.point[2] as usize,
        };
        println!(
            "{strategy:<7}: best auc {:.4} at lr={:.2e} hidden={} sort_k={}",
            result.best.value, best.lr, best.hidden_dim, best.sort_k
        );
        emit_json(
            &format!("table1_{strategy}"),
            &TuneOutcome {
                dataset: ds.name.to_string(),
                strategy: strategy.to_string(),
                budget,
                best_auc: result.best.value,
                best,
                running_best: result.running_best(),
            },
        );
    }
}
