//! Regenerates **Fig. 3** (effect of the number of epochs on AUC for Cora
//! with auto-tuned hyperparameters; both models, epochs 2..12 step 2).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig3_cora_epochs [fast]
//! ```

use amdgcnn_bench::runner::{emit_json, epoch_sweep, format_sweep};
use amdgcnn_bench::{load_dataset, tuned_hyper, Bench, EPOCH_GRID};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let ds = load_dataset(Bench::Cora);
    let grid: &[usize] = if fast { &[2, 4] } else { &EPOCH_GRID };
    let pts = epoch_sweep(&ds, tuned_hyper(Bench::Cora), grid, 0xf16);
    println!(
        "{}",
        format_sweep("Fig. 3 — Cora, auto-tuned hyperparameters", "epochs", &pts)
    );
    emit_json("fig3_tuned", &pts);
}
