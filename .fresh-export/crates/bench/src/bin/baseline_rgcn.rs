//! **Baseline A6** (extension): R-GCN message passing — per-relation weight
//! matrices with basis decomposition — inside the same DGCNN skeleton,
//! against vanilla DGCNN and AM-DGCNN. R-GCN consumes relation identities;
//! AM-DGCNN consumes relation attribute vectors through attention. Both
//! see what vanilla DGCNN cannot.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin baseline_rgcn [fast]
//! ```

use am_dgcnn::{EvalMetrics, Experiment, GnnKind};
use amdgcnn_bench::runner::{am_dgcnn_for, emit_json, load_dataset};
use amdgcnn_bench::{tuned_hyper, Bench};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    metrics: EvalMetrics,
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let mut rows = Vec::new();
    println!("R-GCN vs DGCNN vs AM-DGCNN ({epochs} epochs)");
    println!(
        "{:<14} {:<16} {:>8} {:>8} {:>8}",
        "Dataset", "Model", "AUC", "AP", "Acc"
    );
    for bench in [Bench::Wn18, Bench::BioKg] {
        let ds = load_dataset(bench);
        for gnn in [
            GnnKind::Gcn,
            GnnKind::Rgcn { num_bases: 8 },
            am_dgcnn_for(&ds),
        ] {
            let m = Experiment::new(gnn, tuned_hyper(bench), 0x46c)
                .run(&ds, epochs)
                .expect("run");
            println!(
                "{:<14} {:<16} {:>8.3} {:>8.3} {:>8.3}",
                ds.name,
                gnn.name(),
                m.auc,
                m.ap,
                m.accuracy
            );
            rows.push(Row {
                dataset: ds.name.into(),
                model: gnn.name().into(),
                metrics: m,
            });
        }
    }
    emit_json("baseline_rgcn", &rows);
}
