//! Regenerates **Table II** (dataset summary): node/edge type counts, node
//! and edge counts, class counts and split sizes for all four synthetic
//! benchmark datasets.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin table2_datasets
//! ```

use amdgcnn_bench::{load_dataset, runner::emit_json, Bench};
use amdgcnn_data::{dataset_stats, format_table};

fn main() {
    let rows: Vec<_> = [Bench::PrimeKg, Bench::BioKg, Bench::Wn18, Bench::Cora]
        .into_iter()
        .map(|b| dataset_stats(&load_dataset(b)))
        .collect();
    println!("Table II — Summary of datasets (synthetic stand-ins; see DESIGN.md for scaling)");
    println!("{}", format_table(&rows));
    emit_json("table2", &rows);
}
