//! End-to-end per-stage timing report.
//!
//! ```text
//! cargo run --release -p amdgcnn-bench --bin obs_report [-- out.json]
//! ```
//!
//! Runs the full pipeline lifecycle (sampling, training with
//! checkpointing, resume, evaluation, batched serving) on a tiny graph
//! with one shared observability registry, prints the span table, writes
//! the report JSON to the given path (or `AMDGCNN_TIMING_OUT`, or
//! `timing-report.json`), and fails if any tentpole stage is missing.

use amdgcnn_bench::obs_report::{
    obs_smoke_report, timing_out_from_env, write_timing_report, TENTPOLE_SPANS,
};
use std::path::{Path, PathBuf};

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(timing_out_from_env)
        .unwrap_or_else(|| PathBuf::from("timing-report.json"));
    let scratch = std::env::temp_dir().join(format!("amdgcnn-obs-report-{}", std::process::id()));
    let report = obs_smoke_report(&scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    println!("{}", report.format_spans());
    write_timing_report(Path::new(&out), &report).expect("write timing report");
    println!("wrote {}", out.display());

    let missing: Vec<&str> = TENTPOLE_SPANS
        .iter()
        .copied()
        .filter(|s| report.span(s).is_none())
        .collect();
    assert!(
        missing.is_empty(),
        "stages missing from the timing report: {missing:?}"
    );
}
