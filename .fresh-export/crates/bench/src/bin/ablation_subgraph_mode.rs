//! **Ablation A2** (§III-A): union vs intersection enclosing-subgraph
//! extraction on the PrimeKG-like dataset — subgraph size distribution and
//! resulting AM-DGCNN accuracy.
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin ablation_subgraph_mode [fast]
//! ```

use am_dgcnn::{prepare_batch, Experiment, FeatureConfig};
use amdgcnn_bench::runner::{am_dgcnn_for, emit_json, load_dataset};
use amdgcnn_bench::{tuned_hyper, Bench};
use amdgcnn_graph::NeighborhoodMode;
use serde::Serialize;

#[derive(Serialize)]
struct ModeRow {
    mode: String,
    mean_nodes: f64,
    max_nodes: usize,
    mean_edges: f64,
    auc: f64,
    ap: f64,
}

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let mut rows = Vec::new();
    println!("Ablation — union vs intersection subgraphs on primekg-like ({epochs} epochs)");
    for mode in [NeighborhoodMode::Intersection, NeighborhoodMode::Union] {
        let mut ds = load_dataset(Bench::PrimeKg);
        ds.subgraph.mode = mode;
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let probe = prepare_batch(&ds, &ds.train[..100.min(ds.train.len())], &fcfg);
        let mean_nodes = probe.iter().map(|s| s.num_nodes as f64).sum::<f64>() / probe.len() as f64;
        let max_nodes = probe.iter().map(|s| s.num_nodes).max().unwrap_or(0);
        let mean_edges = probe.iter().map(|s| s.num_edges as f64).sum::<f64>() / probe.len() as f64;
        let m = Experiment::new(am_dgcnn_for(&ds), tuned_hyper(Bench::PrimeKg), 0xab2)
            .run(&ds, epochs)
            .expect("run");
        let label = format!("{mode:?}");
        println!(
            "{label:<14} mean nodes {mean_nodes:>6.1}  max {max_nodes:>4}  mean edges {mean_edges:>7.1}  auc {:.3}  ap {:.3}",
            m.auc, m.ap
        );
        rows.push(ModeRow {
            mode: label,
            mean_nodes,
            max_nodes,
            mean_edges,
            auc: m.auc,
            ap: m.ap,
        });
    }
    emit_json("ablation_subgraph_mode", &rows);
}
