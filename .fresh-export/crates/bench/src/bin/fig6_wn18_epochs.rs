//! Regenerates **Fig. 6** (epochs → AUC for WordNet-18; panels (a) default
//! and (b) auto-tuned hyperparameters).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig6_wn18_epochs [fast]
//! ```

use amdgcnn_bench::runner::run_epoch_figure;
use amdgcnn_bench::Bench;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    run_epoch_figure(Bench::Wn18, "fig6", fast);
}
