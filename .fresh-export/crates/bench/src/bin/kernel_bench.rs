//! Sparse-kernel training benchmark — PR 6's scoreboard.
//!
//! For each message-passing variant (vanilla-DGCNN GCN and the paper's
//! AM-DGCNN GAT) trains the same configuration three times with identical
//! seeds and bit-identical parameter initialization:
//!
//! 1. **batched** — the block-diagonal packed sparse forward
//!    (`TrainConfig::batched = true`): one g-SpMM/g-SDDMM pass per
//!    minibatch over the packed [`amdgcnn_nn::BlockDiagGraph`] CSR.
//! 2. **per_sample** — the same sparse kernels, one tape per sample
//!    (`batched = false`).
//! 3. **dense** — the dense per-sample formulation this PR replaced:
//!    for GCN the full normalized-adjacency matmul (`Â·(H·W)` with `Â`
//!    materialized `[N, N]`, multiplied through the dense reference GEMM
//!    `matmul_dense` so the baseline is charged the full `N²·F` cost —
//!    the production `matmul`'s zero-skip is itself a sparsity
//!    optimization and would hide most of the dense formulation's work),
//!    for GAT the per-edge gather/concat attention
//!    (`gather_rows` → `concat_cols` → `matmul` → `segment_softmax` →
//!    `mul_col_broadcast` → `scatter_add_rows`), each on an unbatched
//!    tape. Parameters are registered through the very same constructor
//!    sequence as [`DgcnnModel::new`], so the initial weights match
//!    bit-for-bit; per-sample operands (dense `Â`, usize endpoint lists)
//!    are precomputed outside the measured span, exactly as the old
//!    `PreparedSample` precomputed them.
//!
//! The enclosing subgraphs are extracted **uncapped** (the dataset's
//! `max_nodes_per_hop` guard is lifted) so the bench exercises the
//! large-subgraph regime the sparse layer exists for; the per-sample
//! node/message averages are recorded in the output.
//!
//! Correctness gates, in order of strength:
//!
//! * **Forward bit-identity** — on identical initial weights, the batched
//!   packed forward must reproduce every per-sample sparse forward's
//!   logits bit-for-bit (same guarantee the serve path relies on), and
//!   the dense baselines must match to ≤1e-3 (dense matmul and CSR
//!   reduction sum in different orders).
//! * **Loss trajectory** — same seed, same data order. Epoch-1 losses
//!   must agree to ≤2e-3 and later epochs to ≤0.2; gradients are only
//!   tolerance-equal (reductions regroup float sums across the batch —
//!   see `TrainConfig::batched`), and SortPooling's discontinuous row
//!   selection amplifies 1-ulp weight drift across epochs, so exact
//!   trajectory equality is not expected. The observed maxima are
//!   recorded in the output.
//!
//! All runs are scored on the observability `train/forward` span. Writes
//! the result as JSON to `BENCH_pr6.json` (or the path in
//! `AMDGCNN_KERNEL_BENCH_OUT`), and exits non-zero if any gate fails or
//! the batched-sparse vs dense-GCN speedup falls below 3x.

use am_dgcnn::{
    prepare_batch, DgcnnModel, FeatureConfig, GnnKind, LinkModel, ModelConfig, PreparedSample,
    TrainConfig, Trainer,
};
use amdgcnn_data::{wn18_like, Wn18Config};
use amdgcnn_nn::{Activation, Conv1dLayer, GatConfig, GatConv, GcnConv, Mlp};
use amdgcnn_obs::Obs;
use amdgcnn_tensor::{Conv1dSpec, Matrix, ParamId, ParamStore, Tape, Var};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;

const EPOCHS: usize = 3;
const SEED: u64 = 17;
/// Minimum batched-sparse vs dense-per-sample GCN forward speedup.
const MIN_DENSE_SPEEDUP: f64 = 3.0;

/// One dense-era GAT layer: the per-head parameter ids (resolved by name
/// from the shared [`ParamStore`]) plus the layer configuration.
struct DenseGat {
    cfg: GatConfig,
    /// `(weight, edge_weight, attn, bias)` per head.
    heads: Vec<(ParamId, Option<ParamId>, ParamId, ParamId)>,
}

/// The dense-era message-passing stack.
enum DenseStack {
    Gcn(Vec<GcnConv>),
    Gat(Vec<DenseGat>),
}

/// Per-sample operands the dense era precomputed in `PreparedSample`,
/// rebuilt once before training so none of this cost lands in the
/// measured forward span. Keyed by the sample's CSR allocation.
struct DenseOperands {
    /// Normalized adjacency `Â` materialized dense (GCN path).
    adj: Arc<Matrix>,
    /// Message source endpoints as usize (GAT path).
    src: Arc<Vec<usize>>,
    /// Message destination endpoints as usize (GAT path).
    dst: Arc<Vec<usize>>,
}

/// The pre-PR dense per-sample model: identical parameters and math to
/// [`DgcnnModel`], but message passing runs through the dense-era
/// formulation instead of the fused sparse kernels.
struct DenseBaseline {
    cfg: ModelConfig,
    stack: DenseStack,
    conv1: Conv1dLayer,
    conv2: Conv1dLayer,
    mlp: Mlp,
    operands: HashMap<usize, DenseOperands>,
}

fn pid(ps: &ParamStore, name: &str) -> ParamId {
    (0..ps.len())
        .map(ParamId)
        .find(|&id| ps.name(id) == name)
        .unwrap_or_else(|| panic!("param {name} not registered"))
}

fn operand_key(sample: &PreparedSample) -> usize {
    Arc::as_ptr(sample.graph.csr()) as usize
}

impl DenseBaseline {
    /// Register parameters through the exact constructor sequence of
    /// [`DgcnnModel::new`], so the same `rng` stream produces bit-identical
    /// initial weights, then precompute the dense per-sample operands.
    fn new(
        cfg: ModelConfig,
        ps: &mut ParamStore,
        rng: &mut StdRng,
        samples: &[PreparedSample],
    ) -> Self {
        let stack = match cfg.gnn {
            GnnKind::Gcn => {
                let mut layers = Vec::new();
                let mut in_dim = cfg.node_feat_dim;
                for i in 0..cfg.num_layers {
                    layers.push(GcnConv::new(
                        &format!("gcn{i}"),
                        in_dim,
                        cfg.hidden_dim,
                        ps,
                        rng,
                    ));
                    in_dim = cfg.hidden_dim;
                }
                layers.push(GcnConv::new("gcn_sort", in_dim, 1, ps, rng));
                DenseStack::Gcn(layers)
            }
            GnnKind::Gat { edge_attrs, heads } => {
                let edge_dim = if edge_attrs { cfg.edge_attr_dim } else { 0 };
                let mut specs: Vec<(String, GatConfig)> = Vec::new();
                let mut in_dim = cfg.node_feat_dim;
                for i in 0..cfg.num_layers {
                    let gcfg = GatConfig {
                        in_dim,
                        out_dim: cfg.hidden_dim,
                        edge_dim,
                        heads,
                        concat: true,
                        negative_slope: 0.2,
                    };
                    GatConv::new(&format!("gat{i}"), gcfg, ps, rng);
                    specs.push((format!("gat{i}"), gcfg));
                    in_dim = gcfg.output_width();
                }
                let sort_cfg = GatConfig {
                    in_dim,
                    out_dim: 1,
                    edge_dim,
                    heads,
                    concat: false,
                    negative_slope: 0.2,
                };
                GatConv::new("gat_sort", sort_cfg, ps, rng);
                specs.push(("gat_sort".into(), sort_cfg));
                let gats = specs
                    .into_iter()
                    .map(|(name, gcfg)| {
                        let heads = (0..gcfg.heads)
                            .map(|h| {
                                (
                                    pid(ps, &format!("{name}.h{h}.weight")),
                                    (gcfg.edge_dim > 0)
                                        .then(|| pid(ps, &format!("{name}.h{h}.edge_weight"))),
                                    pid(ps, &format!("{name}.h{h}.attn")),
                                    pid(ps, &format!("{name}.h{h}.bias")),
                                )
                            })
                            .collect();
                        DenseGat { cfg: gcfg, heads }
                    })
                    .collect();
                DenseStack::Gat(gats)
            }
            other => panic!("DenseBaseline does not model {other:?}"),
        };

        let c_total = cfg.total_channels();
        let conv1 = Conv1dLayer::new(
            "conv1",
            Conv1dSpec {
                in_channels: 1,
                out_channels: cfg.conv1_channels,
                kernel: c_total,
                stride: c_total,
            },
            ps,
            rng,
        );
        let pooled_len = cfg.sort_k / 2;
        let kernel2 = cfg.conv2_kernel.min(pooled_len);
        let conv2 = Conv1dLayer::new(
            "conv2",
            Conv1dSpec {
                in_channels: cfg.conv1_channels,
                out_channels: cfg.conv2_channels,
                kernel: kernel2,
                stride: 1,
            },
            ps,
            rng,
        );
        let conv2_out_len = pooled_len - kernel2 + 1;
        let flat = cfg.conv2_channels * conv2_out_len;
        let mlp = Mlp::new(
            "classifier",
            &[flat, cfg.dense_dim, cfg.num_classes],
            Activation::Relu,
            Some(cfg.dropout),
            ps,
            rng,
        );

        let operands = samples
            .iter()
            .map(|s| {
                let g = &s.graph;
                let csr = g.csr();
                let data = DenseOperands {
                    adj: Arc::new(csr.to_dense_adj(&g.gcn_weights())),
                    src: Arc::new(csr.src_ids().iter().map(|&i| i as usize).collect()),
                    dst: Arc::new(csr.dst_ids().iter().map(|&i| i as usize).collect()),
                };
                (operand_key(s), data)
            })
            .collect();

        Self {
            cfg,
            stack,
            conv1,
            conv2,
            mlp,
            operands,
        }
    }

    /// The seed-era dense GAT forward: per head, gather both endpoints of
    /// every message, concatenate with the transformed edge attribute,
    /// score with the attention vector, softmax per destination segment,
    /// then aggregate `α·(W·h_j + W_e·x_ij)` with a scatter-add.
    #[allow(clippy::too_many_arguments)]
    fn gat_forward(
        layer: &DenseGat,
        tape: &mut Tape,
        ps: &ParamStore,
        ops: &DenseOperands,
        segments: &Arc<Vec<(usize, usize)>>,
        num_nodes: usize,
        h: Var,
        edge_attr: Option<Var>,
    ) -> Var {
        let mut head_outputs = Vec::with_capacity(layer.heads.len());
        for &(weight, edge_weight, attn, bias) in &layer.heads {
            let w = tape.param(weight, ps.get(weight).clone());
            let hw = tape.matmul(h, w); // [N, out]
            let src_f = tape.gather_rows(hw, ops.src.clone()); // [M, out]
            let dst_f = tape.gather_rows(hw, ops.dst.clone()); // [M, out]

            let (cat, edge_term) = match (edge_weight, edge_attr) {
                (Some(we), Some(ea)) => {
                    let wev = tape.param(we, ps.get(we).clone());
                    let eat = tape.matmul(ea, wev); // [M, out]
                    (tape.concat_cols(&[dst_f, src_f, eat]), Some(eat))
                }
                _ => (tape.concat_cols(&[dst_f, src_f]), None),
            };
            let a = tape.param(attn, ps.get(attn).clone());
            let logits = tape.matmul(cat, a); // [M, 1]
            let logits = tape.leaky_relu(logits, layer.cfg.negative_slope);
            let alpha = tape.segment_softmax(logits, segments.clone());
            let value = match edge_term {
                Some(eat) => tape.add(src_f, eat),
                None => src_f,
            };
            let weighted = tape.mul_col_broadcast(value, alpha); // [M, out]
            let agg = tape.scatter_add_rows(weighted, ops.dst.clone(), num_nodes);
            let b = tape.param(bias, ps.get(bias).clone());
            head_outputs.push(tape.add_row_broadcast(agg, b));
        }

        if layer.cfg.concat || head_outputs.len() == 1 {
            if head_outputs.len() == 1 {
                head_outputs[0]
            } else {
                tape.concat_cols(&head_outputs)
            }
        } else {
            let mut acc = head_outputs[0];
            for &o in &head_outputs[1..] {
                acc = tape.add(acc, o);
            }
            tape.scale(acc, 1.0 / head_outputs.len() as f32)
        }
    }
}

impl LinkModel for DenseBaseline {
    fn forward_sample(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let g = &sample.graph;
        let n = g.num_nodes();
        let ops = self
            .operands
            .get(&operand_key(sample))
            .expect("sample was not precomputed for the dense baseline");

        let x = tape.leaf(sample.features.clone());
        let mut outputs: Vec<Var> = Vec::new();
        let mut h = x;
        match &self.stack {
            DenseStack::Gcn(layers) => {
                // `Â·(H·W) + b` with the full dense adjacency, through the
                // dense reference GEMM: the production `matmul` skips
                // zero entries (a sparsity optimization of its own), which
                // would let the "dense" baseline ride the ~92% zeros of
                // `Â` and under-report the dense formulation's true cost.
                let adj = tape.shared_leaf(ops.adj.clone());
                for layer in layers {
                    let w = tape.param(layer.weight, ps.get(layer.weight).clone());
                    let hw = tape.matmul(h, w);
                    let agg = tape.matmul_dense(adj, hw);
                    let b = tape.param(layer.bias, ps.get(layer.bias).clone());
                    let z = tape.add_row_broadcast(agg, b);
                    h = tape.tanh(z);
                    outputs.push(h);
                }
            }
            DenseStack::Gat(layers) => {
                let segments = g.segments();
                let ea = g.edge_attrs().map(|m| tape.shared_leaf(m.clone()));
                for layer in layers {
                    let z = Self::gat_forward(layer, tape, ps, ops, &segments, n, h, ea);
                    h = tape.tanh(z);
                    outputs.push(h);
                }
            }
        }

        let cat = if outputs.len() == 1 {
            outputs[0]
        } else {
            tape.concat_cols(&outputs)
        };
        let c_total = self.cfg.total_channels();
        let pooled = tape.sort_pool(cat, self.cfg.sort_k);
        let flat = tape.reshape(pooled, 1, self.cfg.sort_k * c_total);
        let c1 = self.conv1.forward(tape, ps, flat);
        let c1 = tape.tanh(c1);
        let p1 = tape.max_pool1d(c1, 2);
        let c2 = self.conv2.forward(tape, ps, p1);
        let c2 = tape.tanh(c2);
        let (ch, len) = tape.shape(c2);
        let flat2 = tape.reshape(c2, 1, ch * len);
        self.mlp.forward(tape, ps, flat2, dropout_rng)
    }

    fn num_classes(&self) -> usize {
        self.cfg.num_classes
    }
}

struct RunResult {
    losses: Vec<f32>,
    forward_ns: u64,
    epoch_ns: u64,
}

fn run_with<M: LinkModel>(
    samples: &[PreparedSample],
    batched: bool,
    build: impl FnOnce(&mut ParamStore, &mut StdRng) -> M,
) -> RunResult {
    let obs = Obs::enabled();
    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let model = build(&mut ps, &mut rng);
    let mut trainer = Trainer::new(TrainConfig {
        lr: 5e-3,
        seed: SEED,
        batched,
        ..Default::default()
    })
    .with_obs(obs.clone());
    trainer
        .train(&model, &mut ps, samples, EPOCHS)
        .expect("train");
    let report = obs.report();
    let span_ns = |name: &str| report.span(name).map(|s| s.total_ns).unwrap_or(0);
    RunResult {
        losses: trainer.history.iter().map(|e| e.loss).collect(),
        forward_ns: span_ns("train/forward"),
        epoch_ns: span_ns("train/epoch"),
    }
}

struct VariantResult {
    name: &'static str,
    batched: RunResult,
    per_sample: RunResult,
    dense: RunResult,
    dense_speedup: f64,
    sparse_speedup: f64,
    batched_forward_bit_identical: bool,
    dense_forward_max_diff: f32,
    sparse_divergence: f32,
    dense_divergence: f32,
    ok: bool,
}

/// On freshly built, bit-identical initial weights: the batched packed
/// forward must reproduce the per-sample sparse logits bit-for-bit, and
/// the dense baseline must match to `1e-3`. Checked on the first 16
/// samples (one training minibatch).
fn forward_identity(samples: &[PreparedSample], cfg: &ModelConfig) -> (bool, f32) {
    let n = samples.len().min(16);
    let refs: Vec<&PreparedSample> = samples.iter().take(n).collect();

    let mut ps = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let sparse = DgcnnModel::new(cfg.clone(), &mut ps, &mut rng);
    let mut dense_ps = ParamStore::new();
    let mut dense_rng = StdRng::seed_from_u64(0);
    let dense = DenseBaseline::new(cfg.clone(), &mut dense_ps, &mut dense_rng, samples);

    let per_sample: Vec<Matrix> = refs
        .iter()
        .map(|s| {
            let mut tape = Tape::new();
            let out = sparse.forward_sample(&mut tape, &ps, s, None);
            tape.value(out).clone()
        })
        .collect();

    let mut tape = Tape::new();
    let batched = sparse.forward_batch(&mut tape, &ps, &refs, None);
    let bit_identical = batched
        .iter()
        .zip(&per_sample)
        .all(|(&v, expect)| tape.value(v).data() == expect.data());

    let mut dense_max = 0.0f32;
    for (s, expect) in refs.iter().zip(&per_sample) {
        let mut tape = Tape::new();
        let out = dense.forward_sample(&mut tape, &dense_ps, s, None);
        for (a, b) in tape.value(out).data().iter().zip(expect.data()) {
            dense_max = dense_max.max((a - b).abs());
        }
    }
    (bit_identical, dense_max)
}

fn bench_variant(
    name: &'static str,
    samples: &[PreparedSample],
    cfg: &ModelConfig,
) -> VariantResult {
    let (batched_forward_bit_identical, dense_forward_max_diff) = forward_identity(samples, cfg);

    let batched = run_with(samples, true, |ps, rng| {
        DgcnnModel::new(cfg.clone(), ps, rng)
    });
    let per_sample = run_with(samples, false, |ps, rng| {
        DgcnnModel::new(cfg.clone(), ps, rng)
    });
    let dense = run_with(samples, false, |ps, rng| {
        DenseBaseline::new(cfg.clone(), ps, rng, samples)
    });

    let mut ok = true;
    if !batched_forward_bit_identical {
        eprintln!("FAIL[{name}]: batched forward is not bit-identical to per-sample");
        ok = false;
    }
    if dense_forward_max_diff >= 1e-3 {
        eprintln!(
            "FAIL[{name}]: dense-baseline forward diverges from sparse: max diff {dense_forward_max_diff:e}"
        );
        ok = false;
    }

    // Loss trajectories: epoch 1 tight, later epochs within the
    // documented amplification bound (see module docs).
    let mut check = |label: &str, other: &RunResult| -> f32 {
        let mut max_div = 0.0f32;
        for (i, (b, o)) in batched.losses.iter().zip(&other.losses).enumerate() {
            let div = (b - o).abs();
            max_div = max_div.max(div);
            let bound = if i == 0 { 2e-3 } else { 0.2 };
            if div >= bound {
                eprintln!(
                    "FAIL[{name}]: epoch {} {label} loss diverges: {} vs {} (bound {bound})",
                    i + 1,
                    b,
                    o
                );
                ok = false;
            }
        }
        max_div
    };
    let sparse_divergence = check("per-sample", &per_sample);
    let dense_divergence = check("dense-baseline", &dense);

    let dense_speedup = dense.forward_ns as f64 / batched.forward_ns.max(1) as f64;
    let sparse_speedup = per_sample.forward_ns as f64 / batched.forward_ns.max(1) as f64;
    eprintln!(
        "[{name}] train/forward: batched sparse {:.1} ms vs per-sample sparse {:.1} ms ({:.2}x) vs dense per-sample {:.1} ms ({:.2}x); forward bit-identical: {}, dense forward max diff {:.1e}",
        batched.forward_ns as f64 / 1e6,
        per_sample.forward_ns as f64 / 1e6,
        sparse_speedup,
        dense.forward_ns as f64 / 1e6,
        dense_speedup,
        batched_forward_bit_identical,
        dense_forward_max_diff,
    );

    VariantResult {
        name,
        batched,
        per_sample,
        dense,
        dense_speedup,
        sparse_speedup,
        batched_forward_bit_identical,
        dense_forward_max_diff,
        sparse_divergence,
        dense_divergence,
        ok,
    }
}

fn variant_json(v: &VariantResult) -> String {
    let run = |r: &RunResult| {
        format!(
            "{{ \"train_forward_ns\": {}, \"train_epoch_ns\": {}, \"losses\": {:?} }}",
            r.forward_ns, r.epoch_ns, r.losses
        )
    };
    format!(
        concat!(
            "  \"{}\": {{\n",
            "    \"batched\": {},\n",
            "    \"per_sample\": {},\n",
            "    \"dense_baseline\": {},\n",
            "    \"forward_speedup_vs_dense\": {:.3},\n",
            "    \"forward_speedup_vs_per_sample_sparse\": {:.3},\n",
            "    \"batched_forward_bit_identical\": {},\n",
            "    \"dense_forward_max_abs_diff\": {:e},\n",
            "    \"max_sparse_loss_divergence\": {:e},\n",
            "    \"max_dense_loss_divergence\": {:e},\n",
            "    \"pass\": {}\n",
            "  }}"
        ),
        v.name,
        run(&v.batched),
        run(&v.per_sample),
        run(&v.dense),
        v.dense_speedup,
        v.sparse_speedup,
        v.batched_forward_bit_identical,
        v.dense_forward_max_diff,
        v.sparse_divergence,
        v.dense_divergence,
        v.ok
    )
}

fn main() {
    // Keep the packed-minibatch working set warm across steps; applies to
    // the whole process, so all three measured paths share it.
    am_dgcnn::runtime::tune_allocator_for_batching();

    // Dense enough that 2-hop enclosing subgraphs carry real message
    // traffic, and extracted uncapped — the large-subgraph regime the
    // sparse kernel layer is built for (dense `Â` is `[N, N]` here).
    let mut ds = wn18_like(&Wn18Config {
        num_nodes: 400,
        num_edges: 6400,
        train_links: 64,
        test_links: 16,
        ..Wn18Config::default()
    });
    ds.subgraph.max_nodes_per_hop = None;
    let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
    let samples = prepare_batch(&ds, &ds.train, &fcfg);
    let total_nodes: usize = samples.iter().map(|s| s.num_nodes).sum();
    let total_msgs: usize = samples.iter().map(|s| s.graph.num_messages()).sum();
    eprintln!(
        "kernel_bench: {} samples ({:.1} nodes, {:.1} messages avg), {} epochs",
        samples.len(),
        total_nodes as f64 / samples.len() as f64,
        total_msgs as f64 / samples.len() as f64,
        EPOCHS,
    );

    let gcn_cfg = ModelConfig::dgcnn_defaults(
        GnnKind::Gcn,
        fcfg.dim(),
        ds.edge_attrs.dim(),
        ds.num_classes,
    );
    let gat_cfg = ModelConfig::dgcnn_defaults(
        GnnKind::am_dgcnn(),
        fcfg.dim(),
        ds.edge_attrs.dim(),
        ds.num_classes,
    );

    let gcn = bench_variant("gcn", &samples, &gcn_cfg);
    let gat = bench_variant("gat", &samples, &gat_cfg);

    let mut ok = gcn.ok && gat.ok;
    if gcn.dense_speedup < MIN_DENSE_SPEEDUP {
        eprintln!(
            "FAIL: batched sparse vs dense-adjacency GCN speedup {:.2}x below {MIN_DENSE_SPEEDUP}x",
            gcn.dense_speedup
        );
        ok = false;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernel_bench\",\n",
            "  \"samples\": {},\n",
            "  \"avg_nodes\": {:.1},\n",
            "  \"avg_messages\": {:.1},\n",
            "  \"epochs\": {},\n",
            "  \"seed\": {},\n",
            "{},\n",
            "{},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        samples.len(),
        total_nodes as f64 / samples.len() as f64,
        total_msgs as f64 / samples.len() as f64,
        EPOCHS,
        SEED,
        variant_json(&gcn),
        variant_json(&gat),
        ok
    );
    let out = std::env::var("AMDGCNN_KERNEL_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr6.json".into());
    let mut f = std::fs::File::create(&out).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    eprintln!("wrote {out}");

    if !ok {
        std::process::exit(1);
    }
}
