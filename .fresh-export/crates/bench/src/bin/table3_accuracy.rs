//! Regenerates **Table III** (prediction accuracy of AM-DGCNN vs vanilla
//! DGCNN over all four datasets, per-dataset auto-tuned hyperparameters,
//! trained 10 epochs).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin table3_accuracy [fast]
//! ```
//!
//! `fast` trains fewer epochs for a quick shape check.

use amdgcnn_bench::runner::{compare_models, emit_json, format_comparison};
use amdgcnn_bench::{load_dataset, tuned_hyper, Bench};

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    let epochs = if fast { 4 } else { 10 };
    let mut rows = Vec::new();
    for bench in [Bench::PrimeKg, Bench::BioKg, Bench::Wn18, Bench::Cora] {
        let ds = load_dataset(bench);
        let row = compare_models(&ds, tuned_hyper(bench), epochs, 0xbeef);
        eprintln!(
            "{:<14} am auc={:.3} ap={:.3} | vanilla auc={:.3} ap={:.3}",
            row.dataset, row.am_dgcnn.auc, row.am_dgcnn.ap, row.vanilla.auc, row.vanilla.ap
        );
        rows.push(row);
    }
    println!("Table III — Prediction accuracy of different GNNs ({epochs} epochs)");
    println!("{}", format_comparison(&rows));
    emit_json("table3", &rows);
}
