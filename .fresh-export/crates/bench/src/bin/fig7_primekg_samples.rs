//! Regenerates **Fig. 7** (training samples → AUC for PrimeKG; panels (a)
//! default and (b) auto-tuned hyperparameters; 10 training epochs).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig7_primekg_samples [fast]
//! ```

use amdgcnn_bench::runner::run_sample_figure;
use amdgcnn_bench::Bench;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    run_sample_figure(Bench::PrimeKg, "fig7", fast);
}
