//! Regenerates **Fig. 5** (epochs → AUC for OGBL-BioKG; panels (a) default
//! and (b) auto-tuned hyperparameters).
//!
//! ```text
//! cargo run -p amdgcnn-bench --release --bin fig5_biokg_epochs [fast]
//! ```

use amdgcnn_bench::runner::run_epoch_figure;
use amdgcnn_bench::Bench;

fn main() {
    let fast = std::env::args().any(|a| a == "fast");
    run_epoch_figure(Bench::BioKg, "fig5", fast);
}
