//! Hyperparameter configurations used by the figure/table binaries.
//!
//! "Default" = the configuration auto-tuned on Cora (the paper's §V-F
//! definition of default: tuned without edge attributes in play).
//! "Tuned" = per-dataset Bayesian-optimization results.
//!
//! These constants are produced by `table1_autotune` and checked in so the
//! figure binaries are reproducible without re-running the tuner; re-run
//! that binary to regenerate them.

use am_dgcnn::Hyperparams;

/// Which dataset a binary is parameterized over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// PrimeKG-like (drug–disease, 3 classes).
    PrimeKg,
    /// OGBL-BioKG-like (protein–protein, 7 classes).
    BioKg,
    /// WordNet-18-like (18 classes, no node features).
    Wn18,
    /// Cora-like (binary link prediction, no edge attributes).
    Cora,
}

impl Bench {
    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Bench::PrimeKg => "primekg-like",
            Bench::BioKg => "biokg-like",
            Bench::Wn18 => "wn18-like",
            Bench::Cora => "cora-like",
        }
    }
}

/// Default hyperparameters: auto-tuned on Cora (shared across datasets for
/// the "(a) default hyperparameters" panels of Figs. 4–9).
pub fn default_hyper() -> Hyperparams {
    Hyperparams {
        lr: 3.2e-3,
        hidden_dim: 32,
        sort_k: 30,
    }
}

/// Per-dataset auto-tuned hyperparameters (the "(b) auto-tuned" panels and
/// Table III).
pub fn tuned_hyper(bench: Bench) -> Hyperparams {
    match bench {
        Bench::PrimeKg => Hyperparams {
            lr: 4.0e-3,
            hidden_dim: 32,
            sort_k: 40,
        },
        Bench::BioKg => Hyperparams {
            lr: 5.0e-3,
            hidden_dim: 32,
            sort_k: 30,
        },
        Bench::Wn18 => Hyperparams {
            lr: 4.5e-3,
            hidden_dim: 32,
            sort_k: 40,
        },
        Bench::Cora => Hyperparams {
            lr: 3.2e-3,
            hidden_dim: 32,
            sort_k: 30,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperparams_stay_inside_table1_space() {
        for h in [
            default_hyper(),
            tuned_hyper(Bench::PrimeKg),
            tuned_hyper(Bench::BioKg),
            tuned_hyper(Bench::Wn18),
            tuned_hyper(Bench::Cora),
        ] {
            assert!((1e-6..=1e-2).contains(&h.lr), "lr {} outside Table I", h.lr);
            assert!([16, 32, 64, 128].contains(&h.hidden_dim));
            assert!((5..=150).contains(&h.sort_k));
        }
    }

    #[test]
    fn names_are_distinct() {
        let names = [Bench::PrimeKg, Bench::BioKg, Bench::Wn18, Bench::Cora].map(|b| b.name());
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 4);
    }
}
