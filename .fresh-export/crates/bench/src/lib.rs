//! # amdgcnn-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index), plus criterion
//! micro-benchmarks of the hot components. Each `src/bin/*` binary prints
//! an aligned text table and machine-readable `JSON <label> {...}` lines.

#![warn(missing_docs)]

pub mod configs;
pub mod obs_report;
pub mod runner;

pub use configs::{default_hyper, tuned_hyper, Bench};
pub use obs_report::{obs_smoke_report, write_timing_report, TENTPOLE_SPANS};
pub use runner::{
    am_dgcnn_for, compare_models, epoch_sweep, epoch_sweep_obs, load_dataset, sample_sweep,
    sample_sweep_obs, ComparisonRow, SweepPoint, EPOCH_GRID,
};
