//! Acceptance: one end-to-end bench run records every tentpole pipeline
//! stage as a named span, and the timing report survives the JSON
//! round-trip CI relies on.

use amdgcnn_bench::obs_report::{obs_smoke_report, write_timing_report, TENTPOLE_SPANS};
use amdgcnn_obs::Report;

#[test]
fn smoke_report_covers_every_tentpole_stage() {
    let scratch = std::env::temp_dir().join(format!("amdgcnn-obs-accept-{}", std::process::id()));
    let report = obs_smoke_report(&scratch);
    let _ = std::fs::remove_dir_all(&scratch);

    for span in TENTPOLE_SPANS {
        let s = report
            .span(span)
            .unwrap_or_else(|| panic!("span {span} missing from the report"));
        assert!(s.count > 0, "span {span} recorded no observations");
        assert!(
            s.max_ns >= s.p50_ns,
            "span {span} has inconsistent quantiles"
        );
    }

    // Counters and events flowed into the same registry.
    assert!(
        report.counter("serve/queries").unwrap_or(0) > 0,
        "serving queries did not reach the shared registry"
    );
    assert!(
        report
            .events
            .iter()
            .any(|e| e.name == "pipeline/checkpoint/restore"),
        "resume did not log a restore event"
    );

    // The JSON the CI artifact is built from parses back losslessly.
    let parsed = Report::from_json(&report.to_json()).expect("report JSON parses");
    assert_eq!(parsed, report);

    // write_timing_report produces a parseable file.
    let out = std::env::temp_dir().join(format!("amdgcnn-timing-{}.json", std::process::id()));
    write_timing_report(&out, &report).expect("write timing report");
    let text = std::fs::read_to_string(&out).expect("read timing report back");
    std::fs::remove_file(&out).ok();
    let from_file = Report::from_json(text.trim()).expect("file JSON parses");
    assert_eq!(from_file.spans.len(), report.spans.len());
}
