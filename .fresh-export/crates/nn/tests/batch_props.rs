//! Property-based check of the block-diagonal batcher: packing any mix of
//! subgraphs — including empty and isolated-node parts — and running one
//! sparse forward reproduces every per-sample forward **bit-identically**,
//! for both the GCN and the edge-attributed GAT layer.

use amdgcnn_nn::{BlockDiagGraph, GatConfig, GatConv, GcnConv, GraphLayer, MessageGraph};
use amdgcnn_tensor::{Matrix, ParamStore, Tape};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const FEAT: usize = 4;
const HIDDEN: usize = 3;
const EDGE_DIM: usize = 5;

/// Strategy: one subgraph as `(num_nodes, edges)` with `num_nodes ∈ [0, 5)`
/// — zero-node and edge-free (isolated-node) parts arise naturally.
fn part() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (
        0usize..5,
        proptest::collection::vec((0usize..64, 0usize..64), 0..8),
    )
        .prop_map(|(n, raw)| {
            let edges = if n == 0 {
                Vec::new()
            } else {
                raw.into_iter().map(|(a, b)| (a % n, b % n)).collect()
            };
            (n, edges)
        })
}

/// Build the attributed [`MessageGraph`] and feature matrix for one part.
/// `salt` decorrelates the deterministic fills across parts.
fn materialize(n: usize, edges: &[(usize, usize)], salt: usize) -> (MessageGraph, Matrix) {
    let typed: Vec<(usize, usize, u16)> = edges
        .iter()
        .map(|&(u, v)| (u, v, ((u + v) % 3) as u16))
        .collect();
    let attrs = Matrix::from_fn(edges.len(), EDGE_DIM, |r, c| {
        ((r * 7 + c * 3 + salt) as f32 * 0.29).sin()
    });
    let graph = MessageGraph::from_typed(n, &typed, Some(&attrs));
    let feats = Matrix::from_fn(n, FEAT, |r, c| {
        ((r * 5 + c * 11 + salt) as f32 * 0.17).cos()
    });
    (graph, feats)
}

/// Forward every part separately and batched; assert the batched output
/// rows equal each per-part output bit-for-bit.
fn check_layer(layer: &dyn GraphLayer, ps: &ParamStore, parts: &[(MessageGraph, Matrix)]) {
    let per_part: Vec<Matrix> = parts
        .iter()
        .map(|(g, feats)| {
            let mut tape = Tape::new();
            let h = tape.leaf(feats.clone());
            let out = layer.forward(&mut tape, ps, g, h);
            tape.value(out).clone()
        })
        .collect();

    let graphs: Vec<&MessageGraph> = parts.iter().map(|(g, _)| g).collect();
    let packed = BlockDiagGraph::pack(&graphs);
    let feats: Vec<&Matrix> = parts.iter().map(|(_, f)| f).collect();
    let mut tape = Tape::new();
    let h = tape.leaf(Matrix::concat_rows(&feats));
    let out = layer.forward(&mut tape, ps, &packed.graph, h);
    let batched = tape.value(out);

    for (k, expect) in per_part.iter().enumerate() {
        let range = packed.node_range(k);
        assert_eq!(expect.rows(), range.len());
        for (local, global) in range.enumerate() {
            assert_eq!(
                expect.row(local),
                batched.row(global),
                "part {k} row {local} diverged under batching"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_forward_is_bit_identical(raw_parts in proptest::collection::vec(part(), 1..4)) {
        let parts: Vec<(MessageGraph, Matrix)> = raw_parts
            .iter()
            .enumerate()
            .map(|(k, (n, edges))| materialize(*n, edges, k))
            .collect();

        let mut rng = StdRng::seed_from_u64(9);
        let mut ps = ParamStore::new();
        let gcn = GcnConv::new("gcn", FEAT, HIDDEN, &mut ps, &mut rng);
        let gat = GatConv::new(
            "gat",
            GatConfig {
                in_dim: FEAT,
                out_dim: HIDDEN,
                edge_dim: EDGE_DIM,
                heads: 2,
                concat: true,
                negative_slope: 0.2,
            },
            &mut ps,
            &mut rng,
        );

        check_layer(&gcn, &ps, &parts);
        check_layer(&gat, &ps, &parts);
    }
}
