//! Multi-layer perceptron — the dense classifier head of (AM-)DGCNN.

use crate::activation::Activation;
use crate::dropout::Dropout;
use crate::linear::Linear;
use amdgcnn_tensor::{ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Stack of [`Linear`] layers with a shared hidden activation; the final
/// layer is left linear (logits).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
    dropout: Option<Dropout>,
}

impl Mlp {
    /// Build from a dimension chain `dims = [in, h1, ..., out]`.
    ///
    /// # Panics
    /// Panics when fewer than two dimensions are given.
    pub fn new(
        name: &str,
        dims: &[usize],
        activation: Activation,
        dropout_prob: Option<f32>,
        ps: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dimensions");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.fc{i}"), w[0], w[1], true, ps, rng))
            .collect();
        let dropout = dropout_prob.map(Dropout::new);
        Self {
            layers,
            activation,
            dropout,
        }
    }

    /// Forward pass. `dropout_rng` enables dropout (training mode); `None`
    /// runs in inference mode.
    pub fn forward(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        x: Var,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        let mut rng = dropout_rng;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, ps, h);
            if i < last {
                h = self.activation.apply(tape, h);
                if let (Some(d), Some(r)) = (&self.dropout, rng.as_deref_mut()) {
                    h = d.apply(tape, h, r);
                }
            }
        }
        h
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Linear::num_parameters).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Optimizer;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use amdgcnn_tensor::Matrix;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn shapes_through_stack() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(
            "m",
            &[6, 8, 4, 2],
            Activation::Tanh,
            None,
            &mut ps,
            &mut rng,
        );
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.num_parameters(), 6 * 8 + 8 + 8 * 4 + 4 + 4 * 2 + 2);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(3, 6));
        let y = mlp.forward(&mut tape, &ps, x, None);
        assert_eq!(tape.shape(y), (3, 2));
    }

    #[test]
    fn gradcheck_through_two_layers() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new("m", &[3, 4, 2], Activation::Tanh, None, &mut ps, &mut rng);
        let input = Matrix::from_fn(2, 3, |r, c| ((r * 3 + c) as f32 * 0.21).cos());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let x = tape.leaf(input.clone());
                let logits = mlp.forward(tape, store, x, None);
                tape.softmax_cross_entropy(logits, Arc::new(vec![0, 1]))
            },
            1e-2,
            3e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn can_overfit_xor() {
        // Tiny sanity: an MLP with one hidden layer learns XOR.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new("m", &[2, 8, 2], Activation::Tanh, None, &mut ps, &mut rng);
        let inputs = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let labels = Arc::new(vec![0usize, 1, 1, 0]);
        let mut opt = crate::optim::Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut tape = Tape::new();
            let x = tape.leaf(inputs.clone());
            let logits = mlp.forward(&mut tape, &ps, x, None);
            let loss = tape.softmax_cross_entropy(logits, labels.clone());
            last = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!(last < 0.05, "XOR loss should collapse, got {last}");
        // Verify predictions.
        let mut tape = Tape::new();
        let x = tape.leaf(inputs);
        let logits = mlp.forward(&mut tape, &ps, x, None);
        for (r, &y) in labels.iter().enumerate() {
            assert_eq!(tape.value(logits).argmax_row(r), y, "row {r}");
        }
    }
}
