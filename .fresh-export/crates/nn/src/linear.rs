//! Fully connected (dense) layer.

use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// `y = x·W + b` with Xavier-initialized weights.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight parameter id (`[in_dim, out_dim]`).
    pub weight: ParamId,
    /// Optional bias parameter id (`[1, out_dim]`).
    pub bias: Option<ParamId>,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Register a new layer's parameters.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        with_bias: bool,
        ps: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Self {
        let weight = ps.register(
            format!("{name}.weight"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let bias =
            with_bias.then(|| ps.register(format!("{name}.bias"), Matrix::zeros(1, out_dim)));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass for an `[N, in_dim]` input.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(tape.shape(x).1, self.in_dim, "Linear: input width mismatch");
        let w = tape.param(self.weight, ps.get(self.weight).clone());
        let xw = tape.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bv = tape.param(b, ps.get(b).clone());
                tape.add_row_broadcast(xw, bv)
            }
            None => xw,
        }
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.in_dim * self.out_dim + if self.bias.is_some() { self.out_dim } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new("l", 4, 3, true, &mut ps, &mut rng);
        assert_eq!(ps.len(), 2);
        assert_eq!(layer.num_parameters(), 15);

        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(5, 4));
        let y = layer.forward(&mut tape, &ps, x);
        assert_eq!(tape.shape(y), (5, 3));
    }

    #[test]
    fn identity_weight_passthrough() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Linear::new("l", 3, 3, false, &mut ps, &mut rng);
        ps.set(layer.weight, Matrix::eye(3));
        let mut tape = Tape::new();
        let input = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let x = tape.leaf(input.clone());
        let y = layer.forward(&mut tape, &ps, x);
        assert_eq!(tape.value(y), &input);
    }

    #[test]
    fn gradients_check_out() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new("l", 3, 2, true, &mut ps, &mut rng);
        let input = Matrix::from_fn(4, 3, |r, c| ((r + c) as f32 * 0.37).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let x = tape.leaf(input.clone());
                let y = layer.forward(tape, store, x);
                let y2 = tape.mul(y, y);
                tape.mean_all(y2)
            },
            1e-2,
            3e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }
}
