//! # amdgcnn-nn
//!
//! Neural-network building blocks over `amdgcnn-tensor`: dense layers, GCN,
//! GAT (with edge attributes) and R-GCN message passing behind the unified
//! [`GraphLayer`] trait over a shared [`MessageGraph`] operand, the DGCNN
//! read-out convolutions, dropout, activations, and first-order optimizers.
//! [`BlockDiagGraph`] packs many subgraphs into one sparse forward.

#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod dropout;
pub mod gat;
pub mod gcn;
pub mod linear;
pub mod message_graph;
pub mod mlp;
pub mod optim;
pub mod rgcn;

pub use activation::Activation;
pub use conv::Conv1dLayer;
pub use dropout::Dropout;
pub use gat::{GatConfig, GatConv};
pub use gcn::GcnConv;
pub use linear::Linear;
pub use message_graph::{BlockDiagGraph, GraphLayer, MessageGraph};
pub use mlp::Mlp;
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use rgcn::{RgcnConfig, RgcnConv};
