//! Graph Convolutional Network layer (Kipf & Welling, 2017) — the message
//! passing used by *vanilla* DGCNN in the SEAL framework. Propagation rule:
//! `H' = σ(Â · H · W + b)` with `Â = D^{-1/2}(A+I)D^{-1/2}`.
//!
//! Note the crucial limitation the paper exploits: this layer has no way to
//! consume edge attributes — every neighbor contributes with a weight fixed
//! by the normalized topology alone.
//!
//! Â is never materialized: the layer runs the static-weight g-SpMM kernel
//! over the shared [`MessageGraph`] CSR with the cached symmetric-norm
//! weights `w[m] = d^{-1/2}(dst)·d^{-1/2}(src)` (self-loops are ordinary
//! messages, so the degrees already count the `+I`).

use crate::message_graph::{GraphLayer, MessageGraph};
use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// One graph-convolution layer.
#[derive(Debug, Clone)]
pub struct GcnConv {
    /// Weight `[in_dim, out_dim]`.
    pub weight: ParamId,
    /// Bias `[1, out_dim]`.
    pub bias: ParamId,
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
}

impl GcnConv {
    /// Register parameters for a new layer.
    pub fn new(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        ps: &mut ParamStore,
        rng: &mut StdRng,
    ) -> Self {
        let weight = ps.register(
            format!("{name}.weight"),
            init::xavier_uniform(in_dim, out_dim, rng),
        );
        let bias = ps.register(format!("{name}.bias"), Matrix::zeros(1, out_dim));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }
}

impl GraphLayer for GcnConv {
    /// Forward pass: `Â·(H·W) + b` (activation applied by the caller, as
    /// DGCNN uses tanh between its stacked layers).
    fn forward(&self, tape: &mut Tape, ps: &ParamStore, graph: &MessageGraph, h: Var) -> Var {
        debug_assert_eq!(
            tape.shape(h).1,
            self.in_dim,
            "GcnConv: input width mismatch"
        );
        debug_assert_eq!(
            tape.shape(h).0,
            graph.num_nodes(),
            "GcnConv: node count mismatch"
        );
        let w = tape.param(self.weight, ps.get(self.weight).clone());
        let hw = tape.matmul(h, w);
        let agg = tape.gspmm_static(graph.csr().clone(), graph.gcn_weights(), hw);
        let b = tape.param(self.bias, ps.get(self.bias).clone());
        tape.add_row_broadcast(agg, b)
    }

    fn output_width(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use amdgcnn_tensor::matmul::matmul;
    use rand::SeedableRng;

    fn path_graph() -> MessageGraph {
        MessageGraph::from_undirected(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = GcnConv::new("g", 2, 2, &mut ps, &mut rng);
        let graph = path_graph();
        let input = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);

        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &graph, h);

        // Reference: dense Â = D^{-1/2}(A+I)D^{-1/2} applied to H·W.
        let hw = matmul(&input, ps.get(layer.weight));
        let adj = graph.csr().to_dense_adj(&graph.gcn_weights());
        let expect = matmul(&adj, &hw).add_row_broadcast(ps.get(layer.bias));
        assert!(tape.value(out).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn isolated_node_keeps_only_self_message() {
        // Node 2 is isolated: its output is exactly its own transformed
        // features (self-loop weight 1 after normalization).
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GcnConv::new("g", 2, 3, &mut ps, &mut rng);
        let graph = MessageGraph::from_undirected(3, &[(0, 1)]);
        let input = Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 1.0);
        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &graph, h);
        let hw = matmul(&input, ps.get(layer.weight));
        for c in 0..3 {
            let expect = hw.get(2, c) + ps.get(layer.bias).get(0, c);
            assert!((tape.value(out).get(2, c) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn permutation_equivariance() {
        // Relabeling nodes permutes the output rows identically.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GcnConv::new("g", 2, 2, &mut ps, &mut rng);
        let input = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        let g1 = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        let mut t1 = Tape::new();
        let h1 = t1.leaf(input.clone());
        let o1 = layer.forward(&mut t1, &ps, &g1, h1);

        // Permutation 0→2, 1→1, 2→0.
        let g2 = MessageGraph::from_undirected(3, &[(2, 1), (1, 0)]);
        let perm_input = input.gather_rows(&[2, 1, 0]);
        let mut t2 = Tape::new();
        let h2 = t2.leaf(perm_input);
        let o2 = layer.forward(&mut t2, &ps, &g2, h2);

        let expect = t1.value(o1).gather_rows(&[2, 1, 0]);
        assert!(t2.value(o2).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn gradients_check_out() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GcnConv::new("g", 2, 2, &mut ps, &mut rng);
        let graph = path_graph();
        let input = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.31).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &graph, h);
                let act = tape.tanh(out);
                let sq = tape.mul(act, act);
                tape.mean_all(sq)
            },
            1e-2,
            3e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }
}
