//! Activation functions as a tape-applicable enum.

use amdgcnn_tensor::{Tape, Var};

/// Elementwise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// No-op.
    Identity,
    /// Hyperbolic tangent (the DGCNN default).
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply on the tape.
    pub fn apply(&self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Tanh => tape.tanh(x),
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu(slope) => tape.leaky_relu(x, *slope),
            Activation::Sigmoid => tape.sigmoid(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::Matrix;

    #[test]
    fn applies_expected_function() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[-2.0, 0.0, 2.0]));
        let id = Activation::Identity.apply(&mut tape, x);
        assert_eq!(tape.value(id).data(), &[-2.0, 0.0, 2.0]);
        let r = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.value(r).data(), &[0.0, 0.0, 2.0]);
        let lr = Activation::LeakyRelu(0.1).apply(&mut tape, x);
        assert_eq!(tape.value(lr).data(), &[-0.2, 0.0, 2.0]);
        let t = Activation::Tanh.apply(&mut tape, x);
        assert!((tape.value(t).get(0, 2) - 2.0f32.tanh()).abs() < 1e-6);
        let s = Activation::Sigmoid.apply(&mut tape, x);
        assert!((tape.value(s).get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn identity_does_not_grow_tape() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(1, 1));
        let before = tape.len();
        let y = Activation::Identity.apply(&mut tape, x);
        assert_eq!(tape.len(), before);
        assert_eq!(y, x);
    }
}
