//! 1-D convolution layer — the read-out convolutions DGCNN applies to the
//! sort-pooled node-embedding sequence.

use amdgcnn_tensor::{init, Conv1dSpec, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// Trainable 1-D convolution: input `[C_in, L]` → `[C_out, L_out]`.
#[derive(Debug, Clone)]
pub struct Conv1dLayer {
    /// Weight `[C_out, C_in * kernel]`.
    pub weight: ParamId,
    /// Bias `[C_out, 1]`.
    pub bias: ParamId,
    /// Shape/stride configuration.
    pub spec: Conv1dSpec,
}

impl Conv1dLayer {
    /// Register parameters for a new layer.
    pub fn new(name: &str, spec: Conv1dSpec, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        let fan_in = spec.in_channels * spec.kernel;
        let weight = ps.register(
            format!("{name}.weight"),
            init::xavier_uniform(spec.out_channels, fan_in, rng)
                .reshaped(spec.out_channels, fan_in),
        );
        let bias = ps.register(format!("{name}.bias"), Matrix::zeros(spec.out_channels, 1));
        Self { weight, bias, spec }
    }

    /// Forward pass.
    pub fn forward(&self, tape: &mut Tape, ps: &ParamStore, x: Var) -> Var {
        let w = tape.param(self.weight, ps.get(self.weight).clone());
        let b = tape.param(self.bias, ps.get(self.bias).clone());
        tape.conv1d(x, w, b, self.spec)
    }

    /// Output length for a given input length.
    pub fn out_len(&self, input_len: usize) -> usize {
        self.spec.out_len(input_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    #[test]
    fn shapes_follow_spec() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let spec = Conv1dSpec {
            in_channels: 1,
            out_channels: 8,
            kernel: 4,
            stride: 4,
        };
        let layer = Conv1dLayer::new("c", spec, &mut ps, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, 20));
        let y = layer.forward(&mut tape, &ps, x);
        assert_eq!(tape.shape(y), (8, 5));
        assert_eq!(layer.out_len(20), 5);
    }

    #[test]
    fn dgcnn_readout_chain_shapes() {
        // The DGCNN read-out: [1, k*C] -conv(k=C,s=C)-> [16, k] -pool(2)->
        // [16, k/2] -conv(k=5)-> [32, k/2-4].
        let (k, c) = (12usize, 7usize);
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let conv1 = Conv1dLayer::new(
            "c1",
            Conv1dSpec {
                in_channels: 1,
                out_channels: 16,
                kernel: c,
                stride: c,
            },
            &mut ps,
            &mut rng,
        );
        let conv2 = Conv1dLayer::new(
            "c2",
            Conv1dSpec {
                in_channels: 16,
                out_channels: 32,
                kernel: 5,
                stride: 1,
            },
            &mut ps,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(1, k * c));
        let h1 = conv1.forward(&mut tape, &ps, x);
        assert_eq!(tape.shape(h1), (16, k));
        let p1 = tape.max_pool1d(h1, 2);
        assert_eq!(tape.shape(p1), (16, k / 2));
        let h2 = conv2.forward(&mut tape, &ps, p1);
        assert_eq!(tape.shape(h2), (32, k / 2 - 4));
    }

    #[test]
    fn gradients_check_out() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let spec = Conv1dSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
        };
        let layer = Conv1dLayer::new("c", spec, &mut ps, &mut rng);
        let input = Matrix::from_fn(2, 6, |r, c| ((r * 6 + c) as f32 * 0.19).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let x = tape.leaf(input.clone());
                let y = layer.forward(tape, store, x);
                let a = tape.tanh(y);
                let sq = tape.mul(a, a);
                tape.mean_all(sq)
            },
            1e-2,
            3e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }
}
