//! First-order optimizers: SGD (with momentum) and Adam.

use amdgcnn_tensor::{GradStore, Matrix, ParamId, ParamStore};

/// Shared optimizer interface.
pub trait Optimizer {
    /// Apply one update step from accumulated gradients.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `μ`: `v ← μ·v + g`, `θ ← θ − lr·v`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for i in 0..params.len() {
            let id = ParamId(i);
            let Some(g) = grads.get(id) else { continue };
            let update = if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                v.scale_inplace(self.momentum);
                v.add_assign(g);
                v.clone()
            } else {
                g.clone()
            };
            let lr = self.lr;
            params.update(id, |p| p.axpy(-lr, &update));
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with optional decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled (AdamW-style) weight decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with default betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Override the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Enable decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer's mutable state (step count and first/second
    /// moment estimates) for durable checkpointing. The hyperparameters
    /// (betas, eps, weight decay) are construction-time configuration and
    /// are not part of the snapshot.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore state captured by [`export_state`](Self::export_state).
    /// After this, the optimizer continues exactly where the snapshot was
    /// taken: the next `step` uses the restored moments and bias-correction
    /// horizon, so a resumed run is bit-identical to an uninterrupted one.
    pub fn restore_state(&mut self, state: AdamState) {
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
    }
}

/// The mutable state of an [`Adam`] optimizer, detached for serialization.
/// `None` entries are parameters that have not received a gradient yet.
#[derive(Debug, Clone, Default)]
pub struct AdamState {
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one slot per parameter.
    pub m: Vec<Option<Matrix>>,
    /// Second-moment estimates, one slot per parameter.
    pub v: Vec<Option<Matrix>>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let id = ParamId(i);
            let Some(g) = grads.get(id) else { continue };
            let m = self.m[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[i].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            // m ← β₁m + (1-β₁)g ; v ← β₂v + (1-β₂)g².
            m.scale_inplace(self.beta1);
            m.axpy(1.0 - self.beta1, g);
            v.scale_inplace(self.beta2);
            for (vv, &gv) in v.data_mut().iter_mut().zip(g.data().iter()) {
                *vv += (1.0 - self.beta2) * gv * gv;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let (m, v) = (&self.m[i], &self.v[i]);
            let m = m.as_ref().expect("initialized above");
            let v = v.as_ref().expect("initialized above");
            params.update(id, |p| {
                for ((pv, &mv), &vv) in p
                    .data_mut()
                    .iter_mut()
                    .zip(m.data().iter())
                    .zip(v.data().iter())
                {
                    let m_hat = mv / bc1;
                    let v_hat = vv / bc2;
                    *pv -= lr * (m_hat / (v_hat.sqrt() + eps) + wd * *pv);
                }
            });
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::GradStore;

    fn one_param_store(value: f32) -> (ParamStore, ParamId) {
        let mut ps = ParamStore::new();
        let id = ps.register("w", Matrix::full(1, 1, value));
        (ps, id)
    }

    fn grad_of(id: ParamId, n: usize, g: f32) -> GradStore {
        let mut gs = GradStore::new(n);
        gs.accumulate(id, &Matrix::full(1, 1, g));
        gs
    }

    #[test]
    fn sgd_plain_step() {
        let (mut ps, id) = one_param_store(1.0);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut ps, &grad_of(id, 1, 2.0));
        assert!((ps.get(id).get(0, 0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let (mut ps, id) = one_param_store(0.0);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        opt.step(&mut ps, &grad_of(id, 1, 1.0)); // v=1.0, θ=-0.1
        opt.step(&mut ps, &grad_of(id, 1, 1.0)); // v=1.9, θ=-0.29
        assert!((ps.get(id).get(0, 0) + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient magnitude.
        for g in [0.001f32, 1.0, 1000.0] {
            let (mut ps, id) = one_param_store(0.0);
            let mut opt = Adam::new(0.01);
            opt.step(&mut ps, &grad_of(id, 1, g));
            let step = -ps.get(id).get(0, 0);
            assert!((step - 0.01).abs() < 1e-4, "grad {g} gave step {step}");
        }
    }

    #[test]
    fn adam_hand_computed_two_steps() {
        let (mut ps, id) = one_param_store(1.0);
        let mut opt = Adam::new(0.1);
        // Step 1: m=0.1g, v=0.001g²; m̂=g, v̂=g² → θ -= lr·g/(|g|+eps).
        opt.step(&mut ps, &grad_of(id, 1, 0.5));
        let after1 = ps.get(id).get(0, 0);
        assert!((after1 - (1.0 - 0.1)).abs() < 1e-4, "{after1}");
        // Step 2 with the same gradient direction keeps moving down.
        opt.step(&mut ps, &grad_of(id, 1, 0.5));
        assert!(ps.get(id).get(0, 0) < after1);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    fn adam_skips_missing_grads() {
        let mut ps = ParamStore::new();
        let a = ps.register("a", Matrix::full(1, 1, 1.0));
        let b = ps.register("b", Matrix::full(1, 1, 1.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut ps, &grad_of(a, 2, 1.0));
        assert!(ps.get(a).get(0, 0) < 1.0);
        assert_eq!(ps.get(b).get(0, 0), 1.0, "param without grad must not move");
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let (mut ps, id) = one_param_store(1.0);
        let mut opt = Adam::new(0.0).with_weight_decay(0.5);
        // lr = 0 means only decay acts... but decay is scaled by lr, so use
        // a nonzero lr and a zero gradient-ish: grads must exist to update.
        opt.set_learning_rate(0.1);
        opt.step(&mut ps, &grad_of(id, 1, 0.0));
        // Gradient is zero → Adam term 0, decay term lr·wd·θ = 0.05.
        assert!((ps.get(id).get(0, 0) - 0.95).abs() < 1e-5);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        let (mut ps_a, id) = one_param_store(1.0);
        let mut opt_a = Adam::new(0.05);
        opt_a.step(&mut ps_a, &grad_of(id, 1, 0.3));
        // Snapshot, hand the state to a fresh optimizer, then drive both
        // through the same gradient sequence.
        let mut ps_b = ps_a.clone();
        let mut opt_b = Adam::new(0.05);
        opt_b.restore_state(opt_a.export_state());
        for g in [0.2f32, -0.7, 0.05] {
            opt_a.step(&mut ps_a, &grad_of(id, 1, g));
            opt_b.step(&mut ps_b, &grad_of(id, 1, g));
        }
        assert_eq!(opt_a.steps(), opt_b.steps());
        let bits = |ps: &ParamStore| -> Vec<u32> {
            ps.get(id).data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&ps_a), bits(&ps_b), "restored Adam must track exactly");
    }

    #[test]
    fn quadratic_convergence() {
        // Minimize (θ-3)² with both optimizers.
        for use_adam in [false, true] {
            let (mut ps, id) = one_param_store(-2.0);
            let mut sgd = Sgd::with_momentum(0.05, 0.5);
            let mut adam = Adam::new(0.2);
            for _ in 0..200 {
                let theta = ps.get(id).get(0, 0);
                let g = 2.0 * (theta - 3.0);
                let gs = grad_of(id, 1, g);
                if use_adam {
                    adam.step(&mut ps, &gs);
                } else {
                    sgd.step(&mut ps, &gs);
                }
            }
            let theta = ps.get(id).get(0, 0);
            assert!((theta - 3.0).abs() < 0.05, "adam={use_adam} got {theta}");
        }
    }
}
