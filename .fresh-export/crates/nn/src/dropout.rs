//! Inverted dropout.

use amdgcnn_tensor::{Tape, Var};
use rand::{rngs::StdRng, RngExt};
use std::sync::Arc;

/// Dropout layer: zeroes each element with probability `prob` during
/// training and rescales survivors by `1/(1-prob)` so expectations match
/// inference (which simply skips the layer).
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub prob: f32,
}

impl Dropout {
    /// Create a dropout layer.
    ///
    /// # Panics
    /// Panics unless `0 ≤ prob < 1`.
    pub fn new(prob: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&prob),
            "dropout probability {prob} out of [0,1)"
        );
        Self { prob }
    }

    /// Apply in training mode, drawing the mask from `rng`.
    pub fn apply(&self, tape: &mut Tape, x: Var, rng: &mut StdRng) -> Var {
        if self.prob == 0.0 {
            return x;
        }
        let (r, c) = tape.shape(x);
        let keep = 1.0 - self.prob;
        let scale = 1.0 / keep;
        let mask: Arc<Vec<f32>> = Arc::new(
            (0..r * c)
                .map(|_| {
                    if rng.random::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        tape.dropout(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::Matrix;
    use rand::SeedableRng;

    #[test]
    fn zero_prob_is_identity() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(2, 2));
        let mut rng = StdRng::seed_from_u64(0);
        let y = Dropout::new(0.0).apply(&mut tape, x, &mut rng);
        assert_eq!(y, x);
    }

    #[test]
    fn expectation_is_preserved() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(100, 100));
        let mut rng = StdRng::seed_from_u64(1);
        let y = Dropout::new(0.3).apply(&mut tape, x, &mut rng);
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted-dropout mean {mean}");
    }

    #[test]
    fn elements_are_zero_or_scaled() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::ones(10, 10));
        let mut rng = StdRng::seed_from_u64(2);
        let y = Dropout::new(0.5).apply(&mut tape, x, &mut rng);
        for &v in tape.value(y).data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_prob_one() {
        let _ = Dropout::new(1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let make = || {
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::ones(5, 5));
            let mut rng = StdRng::seed_from_u64(9);
            let y = Dropout::new(0.4).apply(&mut tape, x, &mut rng);
            tape.value(y).clone()
        };
        assert_eq!(make(), make());
    }
}
