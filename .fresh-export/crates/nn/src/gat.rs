//! Graph Attention Network layer (Velickovic et al., 2018) extended with
//! edge attributes — the message passing AM-DGCNN substitutes for GCN.
//!
//! For a directed message `j → i` with edge attribute `x_ij` the attention
//! logit is
//!
//! ```text
//! e_ij = LeakyReLU( aᵀ [ W·h_i ‖ W·h_j ‖ W_e·x_ij ] )
//! ```
//!
//! normalized with a softmax over each destination's incoming messages.
//! The weighted message **includes the transformed edge attribute**:
//! `h'_i = Σ_j α_ij (W·h_j + W_e·x_ij)` — this is the paper's
//! "incorporating link information into node transformations" (§II-A).
//! Gating attention alone would not suffice: on a graph with homogeneous
//! node features (WordNet-18) an attention-weighted sum of identical
//! neighbor vectors is invariant to the weights, so the edge classes would
//! be unreadable no matter how attention uses them. Self-loops are added so
//! every node attends to itself (with a zero edge attribute, matching the
//! "no relation" encoding). Multi-head attention concatenates (hidden
//! layers) or averages (final layer) the per-head outputs.
//!
//! ## Kernelized attention
//!
//! The concatenation `aᵀ[dst_f ‖ src_f ‖ eat]` is never materialized.
//! Splitting `a` into its `dst`/`src`/`edge` row blocks the logit
//! decomposes into per-*node* scores plus a per-message edge score,
//!
//! ```text
//! e_ij = LeakyReLU( (W·h)·a_dst |_i + (W·h)·a_src |_j + (W_e·x)·a_e |_ij )
//! ```
//!
//! which is exactly the g-SDDMM add kernel over two `[N, 1]` columns and
//! one `[M, 1]` column. Aggregation is the learnable-weight g-SpMM of α
//! against `W·h` plus an edge-payload aggregation of α against `W_e·x` —
//! no per-edge `gather_rows`/`concat_cols` tape nodes remain.

use crate::activation::Activation;
use crate::message_graph::{GraphLayer, MessageGraph};
use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Parameters of one attention head.
#[derive(Debug, Clone)]
struct GatHead {
    weight: ParamId,
    edge_weight: Option<ParamId>,
    attn: ParamId,
    bias: ParamId,
}

/// Configuration of a [`GatConv`] layer.
#[derive(Debug, Clone, Copy)]
pub struct GatConfig {
    /// Input node-feature width.
    pub in_dim: usize,
    /// Output width per head.
    pub out_dim: usize,
    /// Edge-attribute width consumed by attention (0 disables edge attrs —
    /// the ablation switch isolating the paper's edge-attribute claim; the
    /// layer then ignores any attributes the graph carries).
    pub edge_dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Concatenate head outputs (`true`, hidden layers) or average them
    /// (`false`, final layer).
    pub concat: bool,
    /// Negative slope of the attention LeakyReLU.
    pub negative_slope: f32,
}

impl GatConfig {
    /// Output width of the layer (`heads * out_dim` when concatenating).
    pub fn output_width(&self) -> usize {
        if self.concat {
            self.heads * self.out_dim
        } else {
            self.out_dim
        }
    }
}

/// Multi-head graph attention layer with optional edge attributes.
#[derive(Debug, Clone)]
pub struct GatConv {
    /// Layer configuration.
    pub cfg: GatConfig,
    heads: Vec<GatHead>,
}

impl GatConv {
    /// Register parameters for a new layer.
    pub fn new(name: &str, cfg: GatConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(cfg.heads >= 1, "GatConv needs at least one head");
        let mut heads = Vec::with_capacity(cfg.heads);
        for h in 0..cfg.heads {
            let weight = ps.register(
                format!("{name}.h{h}.weight"),
                init::xavier_uniform(cfg.in_dim, cfg.out_dim, rng),
            );
            let edge_weight = (cfg.edge_dim > 0).then(|| {
                ps.register(
                    format!("{name}.h{h}.edge_weight"),
                    init::xavier_uniform(cfg.edge_dim, cfg.out_dim, rng),
                )
            });
            let attn_in = 2 * cfg.out_dim + if cfg.edge_dim > 0 { cfg.out_dim } else { 0 };
            let attn = ps.register(
                format!("{name}.h{h}.attn"),
                init::xavier_uniform(attn_in, 1, rng),
            );
            let bias = ps.register(format!("{name}.h{h}.bias"), Matrix::zeros(1, cfg.out_dim));
            heads.push(GatHead {
                weight,
                edge_weight,
                attn,
                bias,
            });
        }
        Self { cfg, heads }
    }

    /// Convenience: forward followed by an activation.
    pub fn forward_activated(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        graph: &MessageGraph,
        h: Var,
        act: Activation,
    ) -> Var {
        let out = self.forward(tape, ps, graph, h);
        act.apply(tape, out)
    }
}

impl GraphLayer for GatConv {
    /// Forward pass over the shared [`MessageGraph`]. When the layer is
    /// configured with `edge_dim > 0` the graph must carry (matching-width)
    /// edge attributes; with `edge_dim == 0` any attributes are ignored.
    fn forward(&self, tape: &mut Tape, ps: &ParamStore, graph: &MessageGraph, h: Var) -> Var {
        debug_assert_eq!(
            tape.shape(h).0,
            graph.num_nodes(),
            "GatConv: node count mismatch"
        );
        debug_assert_eq!(
            tape.shape(h).1,
            self.cfg.in_dim,
            "GatConv: input width mismatch"
        );
        let edge_attr = if self.cfg.edge_dim > 0 {
            let ea = graph.edge_attrs().unwrap_or_else(|| {
                panic!("GatConv: edge_attr presence must match configured edge_dim")
            });
            assert_eq!(
                ea.cols(),
                self.cfg.edge_dim,
                "GatConv: edge-attribute width mismatch"
            );
            // Mounted once and shared by every head of this layer.
            Some(tape.shared_leaf(ea.clone()))
        } else {
            None
        };
        let csr = graph.csr();
        let out = self.cfg.out_dim;

        let mut head_outputs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let w = tape.param(head.weight, ps.get(head.weight).clone());
            let hw = tape.matmul(h, w); // [N, out]

            // Split the attention vector into its dst/src/edge row blocks.
            let a = tape.param(head.attn, ps.get(head.attn).clone());
            let a_dst = tape.gather_rows(a, Arc::new((0..out).collect()));
            let a_src = tape.gather_rows(a, Arc::new((out..2 * out).collect()));
            let s_dst = tape.matmul(hw, a_dst); // [N, 1]
            let s_src = tape.matmul(hw, a_src); // [N, 1]

            let (s_edge, edge_term) = match (head.edge_weight, edge_attr) {
                (Some(we), Some(ea)) => {
                    let wev = tape.param(we, ps.get(we).clone());
                    let eat = tape.matmul(ea, wev); // [M, out]
                    let a_e = tape.gather_rows(a, Arc::new((2 * out..3 * out).collect()));
                    (Some(tape.matmul(eat, a_e)), Some(eat)) // [M, 1]
                }
                _ => (None, None),
            };

            let logits = tape.edge_score(csr.clone(), s_src, s_dst, s_edge); // [M, 1]
            let logits = tape.leaky_relu(logits, self.cfg.negative_slope);
            let alpha = tape.segment_softmax(logits, graph.segments());

            // Message value: transformed source plus transformed edge attr,
            // attention-weighted and reduced per destination in one kernel
            // call each.
            let agg = tape.gspmm(csr.clone(), alpha, hw); // [N, out]
            let agg = match edge_term {
                Some(eat) => {
                    let ea_agg = tape.edge_aggregate(csr.clone(), alpha, eat);
                    tape.add(agg, ea_agg)
                }
                None => agg,
            };
            let b = tape.param(head.bias, ps.get(head.bias).clone());
            head_outputs.push(tape.add_row_broadcast(agg, b));
        }

        if self.cfg.concat || self.heads.len() == 1 {
            if head_outputs.len() == 1 {
                head_outputs[0]
            } else {
                tape.concat_cols(&head_outputs)
            }
        } else {
            // Average heads.
            let mut acc = head_outputs[0];
            for &o in &head_outputs[1..] {
                acc = tape.add(acc, o);
            }
            tape.scale(acc, 1.0 / head_outputs.len() as f32)
        }
    }

    fn output_width(&self) -> usize {
        self.cfg.output_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    fn cfg(
        in_dim: usize,
        out_dim: usize,
        edge_dim: usize,
        heads: usize,
        concat: bool,
    ) -> GatConfig {
        GatConfig {
            in_dim,
            out_dim,
            edge_dim,
            heads,
            concat,
            negative_slope: 0.2,
        }
    }

    #[test]
    fn output_shapes_concat_vs_average() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let graph = MessageGraph::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let input = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.1);

        let layer = GatConv::new("g", cfg(3, 5, 0, 2, true), &mut ps, &mut rng);
        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &graph, h);
        assert_eq!(tape.shape(out), (4, 10));
        assert_eq!(layer.output_width(), 10);

        let layer2 = GatConv::new("g2", cfg(3, 5, 0, 2, false), &mut ps, &mut rng);
        let mut tape2 = Tape::new();
        let h2 = tape2.leaf(input);
        let out2 = layer2.forward(&mut tape2, &ps, &graph, h2);
        assert_eq!(tape2.shape(out2), (4, 5));
        assert_eq!(layer2.output_width(), 5);
    }

    #[test]
    fn attention_is_convex_combination() {
        // With identical source features everywhere, the attention-weighted
        // aggregation must reproduce exactly that shared feature (weights
        // sum to 1 within each destination segment).
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatConv::new("g", cfg(2, 3, 0, 1, true), &mut ps, &mut rng);
        let graph = MessageGraph::from_undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let shared = Matrix::from_vec(1, 2, vec![0.7, -0.4]);
        let input = Matrix::from_fn(4, 2, |_, c| shared.get(0, c));

        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &graph, h);
        // Expected: shared·W + bias for every node.
        let hw = amdgcnn_tensor::matmul::matmul(&shared, ps.get(layer.heads[0].weight));
        for n in 0..4 {
            for c in 0..3 {
                let expect = hw.get(0, c) + ps.get(layer.heads[0].bias).get(0, c);
                assert!(
                    (tape.value(out).get(n, c) - expect).abs() < 1e-4,
                    "node {n} ch {c}"
                );
            }
        }
    }

    #[test]
    fn edge_attrs_change_the_output() {
        // Same topology, different edge attributes → different outputs.
        // This is precisely the signal GCN cannot see.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GatConv::new("g", cfg(2, 3, 2, 1, true), &mut ps, &mut rng);
        let edges = [(0, 1, 0), (1, 2, 1)];
        let input = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.3);

        let run = |attrs: Matrix, ps: &ParamStore| {
            let graph = MessageGraph::from_typed(3, &edges, Some(&attrs));
            let mut tape = Tape::new();
            let h = tape.leaf(input.clone());
            let out = layer.forward(&mut tape, ps, &graph, h);
            tape.value(out).clone()
        };
        let pos = run(Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]), &ps);
        let neg = run(Matrix::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]), &ps);
        assert!(
            pos.max_abs_diff(&neg) > 1e-4,
            "edge attributes must influence the output"
        );
    }

    #[test]
    #[should_panic(expected = "edge_attr presence")]
    fn missing_edge_attr_panics_when_configured() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GatConv::new("g", cfg(2, 2, 2, 1, true), &mut ps, &mut rng);
        let graph = MessageGraph::from_undirected(2, &[(0, 1)]); // no attrs
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::zeros(2, 2));
        let _ = layer.forward(&mut tape, &ps, &graph, h);
    }

    #[test]
    fn edge_dim_zero_ignores_graph_attrs() {
        // The ablation layer runs unchanged whether or not the graph
        // carries attributes.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let layer = GatConv::new("g", cfg(2, 2, 0, 1, true), &mut ps, &mut rng);
        let input = Matrix::from_fn(2, 2, |r, c| (r + c) as f32 * 0.5);
        let attrs = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let with = MessageGraph::from_typed(2, &[(0, 1, 0)], Some(&attrs));
        let without = MessageGraph::from_undirected(2, &[(0, 1)]);
        let run = |g: &MessageGraph| {
            let mut tape = Tape::new();
            let h = tape.leaf(input.clone());
            let out = layer.forward(&mut tape, &ps, g, h);
            tape.value(out).clone()
        };
        assert_eq!(run(&with).max_abs_diff(&run(&without)), 0.0);
    }

    #[test]
    fn gradients_check_out_with_edge_attrs() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let layer = GatConv::new("g", cfg(2, 2, 2, 2, true), &mut ps, &mut rng);
        let attrs = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let graph = MessageGraph::from_typed(3, &[(0, 1, 0), (1, 2, 1), (0, 2, 2)], Some(&attrs));
        let input = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.43).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &graph, h);
                let act = tape.tanh(out);
                let sq = tape.mul(act, act);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn gradients_check_out_average_heads() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = GatConv::new("g", cfg(2, 3, 0, 2, false), &mut ps, &mut rng);
        let graph = MessageGraph::from_undirected(3, &[(0, 1), (1, 2)]);
        let input = Matrix::from_fn(3, 2, |r, c| ((r + 2 * c) as f32 * 0.27).cos());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &graph, h);
                let sq = tape.mul(out, out);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn isolated_node_attends_to_itself_only() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let layer = GatConv::new("g", cfg(2, 2, 0, 1, true), &mut ps, &mut rng);
        let graph = MessageGraph::from_undirected(3, &[(0, 1)]); // node 2 isolated
        let input = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut tape = Tape::new();
        let h = tape.leaf(input.clone());
        let out = layer.forward(&mut tape, &ps, &graph, h);
        // Node 2's segment has one message (its self-loop) with weight 1.
        let hw = amdgcnn_tensor::matmul::matmul(&input, ps.get(layer.heads[0].weight));
        for c in 0..2 {
            let expect = hw.get(2, c) + ps.get(layer.heads[0].bias).get(0, c);
            assert!((tape.value(out).get(2, c) - expect).abs() < 1e-5);
        }
    }
}
