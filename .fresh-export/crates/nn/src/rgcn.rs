//! Relational GCN layer (Schlichtkrull et al., 2018) with basis
//! decomposition — the classic knowledge-graph message-passing scheme,
//! included as an extension baseline: it consumes *relation identities*
//! (one weight matrix per relation) where AM-DGCNN consumes relation
//! *attribute vectors* through attention.
//!
//! ```text
//! h'_i = W_self·h_i + b + Σ_r Σ_{j ∈ N_r(i)} (1/|N_r(i)|) · W_r·h_j
//! W_r  = Σ_b  C[r,b] · B_b          (basis decomposition)
//! ```
//!
//! Each relation's inner sum is one static-weight g-SpMM over the shared
//! [`MessageGraph`] CSR using that relation's cached weight vector
//! (`1/|N_r(dst)|` on its messages, zero elsewhere — zero entries add
//! exact `0.0`, so the relation masking is bit-identical to the old
//! per-group gather/scatter path).

use crate::message_graph::{GraphLayer, MessageGraph};
use amdgcnn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use std::sync::Arc;

/// R-GCN layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct RgcnConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Output feature width.
    pub out_dim: usize,
    /// Number of relations the coefficient table covers.
    pub num_relations: usize,
    /// Number of basis matrices (≤ num_relations keeps parameters bounded).
    pub num_bases: usize,
}

/// One relational graph-convolution layer.
#[derive(Debug, Clone)]
pub struct RgcnConv {
    /// Layer configuration.
    pub cfg: RgcnConfig,
    /// Stacked basis matrices `[num_bases, in*out]`.
    bases: ParamId,
    /// Relation coefficients `[num_relations, num_bases]`.
    coeffs: ParamId,
    /// Self-connection weight `[in, out]`.
    self_weight: ParamId,
    /// Bias `[1, out]`.
    bias: ParamId,
}

impl RgcnConv {
    /// Register parameters for a new layer.
    ///
    /// # Panics
    /// Panics on a zero basis/relation count.
    pub fn new(name: &str, cfg: RgcnConfig, ps: &mut ParamStore, rng: &mut StdRng) -> Self {
        assert!(cfg.num_bases >= 1, "R-GCN needs at least one basis");
        assert!(cfg.num_relations >= 1, "R-GCN needs at least one relation");
        let bases = ps.register(
            format!("{name}.bases"),
            init::xavier_uniform(cfg.num_bases, cfg.in_dim * cfg.out_dim, rng),
        );
        let coeffs = ps.register(
            format!("{name}.coeffs"),
            init::xavier_uniform(cfg.num_relations, cfg.num_bases, rng),
        );
        let self_weight = ps.register(
            format!("{name}.self_weight"),
            init::xavier_uniform(cfg.in_dim, cfg.out_dim, rng),
        );
        let bias = ps.register(format!("{name}.bias"), Matrix::zeros(1, cfg.out_dim));
        Self {
            cfg,
            bases,
            coeffs,
            self_weight,
            bias,
        }
    }
}

impl GraphLayer for RgcnConv {
    /// Forward pass: self connection plus one masked g-SpMM per relation
    /// present in the graph.
    fn forward(&self, tape: &mut Tape, ps: &ParamStore, graph: &MessageGraph, h: Var) -> Var {
        debug_assert_eq!(
            tape.shape(h).0,
            graph.num_nodes(),
            "RgcnConv: node count mismatch"
        );
        debug_assert_eq!(
            tape.shape(h).1,
            self.cfg.in_dim,
            "RgcnConv: input width mismatch"
        );
        let bases = tape.param(self.bases, ps.get(self.bases).clone());
        let coeffs = tape.param(self.coeffs, ps.get(self.coeffs).clone());

        // Self connection.
        let ws = tape.param(self.self_weight, ps.get(self.self_weight).clone());
        let mut out = tape.matmul(h, ws);

        for (relation, w) in graph.relation_weights().iter() {
            debug_assert!(
                (*relation as usize) < self.cfg.num_relations,
                "relation {relation} outside coefficient table"
            );
            // W_r = C[r, :] · bases, reshaped to [in, out].
            let crow = tape.gather_rows(coeffs, Arc::new(vec![*relation as usize]));
            let wr_flat = tape.matmul(crow, bases);
            let wr = tape.reshape(wr_flat, self.cfg.in_dim, self.cfg.out_dim);
            let hw = tape.matmul(h, wr);
            let agg = tape.gspmm_static(graph.csr().clone(), w.clone(), hw);
            out = tape.add(out, agg);
        }
        let b = tape.param(self.bias, ps.get(self.bias).clone());
        tape.add_row_broadcast(out, b)
    }

    fn output_width(&self) -> usize {
        self.cfg.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amdgcnn_tensor::autograd::gradcheck::check_gradients;
    use rand::SeedableRng;

    fn cfg(in_dim: usize, out_dim: usize) -> RgcnConfig {
        RgcnConfig {
            in_dim,
            out_dim,
            num_relations: 3,
            num_bases: 2,
        }
    }

    #[test]
    fn forward_shapes_and_isolated_nodes() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = RgcnConv::new("r", cfg(4, 5), &mut ps, &mut rng);
        // Node 3 isolated.
        let graph = MessageGraph::from_typed(4, &[(0, 1, 0), (1, 2, 2)], None);
        let mut tape = Tape::new();
        let h = tape.leaf(Matrix::from_fn(4, 4, |r, c| (r + c) as f32 * 0.2));
        let out = layer.forward(&mut tape, &ps, &graph, h);
        assert_eq!(tape.shape(out), (4, 5));
        assert_eq!(layer.output_width(), 5);
        // Node 3 gets only the self connection + bias (its self-loop message
        // carries no relation, and it receives no relational messages).
        let expect = amdgcnn_tensor::matmul::matmul(
            &tape.value(h).gather_rows(&[3]),
            ps.get(layer.self_weight),
        );
        for c in 0..5 {
            let want = expect.get(0, c) + ps.get(layer.bias).get(0, c);
            assert!((tape.value(out).get(3, c) - want).abs() < 1e-5);
        }
    }

    #[test]
    fn different_relations_use_different_weights() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = RgcnConv::new("r", cfg(3, 3), &mut ps, &mut rng);
        let h = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.4 - 0.5);
        let run = |rel: u16| {
            let graph = MessageGraph::from_typed(2, &[(0, 1, rel)], None);
            let mut tape = Tape::new();
            let hv = tape.leaf(h.clone());
            let out = layer.forward(&mut tape, &ps, &graph, hv);
            tape.value(out).clone()
        };
        assert!(
            run(0).max_abs_diff(&run(1)) > 1e-4,
            "relation identity must change the output"
        );
    }

    #[test]
    fn gradients_check_out() {
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = RgcnConv::new("r", cfg(2, 2), &mut ps, &mut rng);
        let graph = MessageGraph::from_typed(3, &[(0, 1, 0), (1, 2, 1), (0, 2, 2)], None);
        let input = Matrix::from_fn(3, 2, |r, c| ((r * 2 + c) as f32 * 0.37).sin());
        let res = check_gradients(
            &ps,
            |tape, store| {
                let h = tape.leaf(input.clone());
                let out = layer.forward(tape, store, &graph, h);
                let act = tape.tanh(out);
                let sq = tape.mul(act, act);
                tape.mean_all(sq)
            },
            1e-2,
            4e-2,
        );
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn basis_decomposition_bounds_parameters() {
        // Parameter count grows with bases, not relations.
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let many_rel = RgcnConfig {
            in_dim: 8,
            out_dim: 8,
            num_relations: 51,
            num_bases: 4,
        };
        let _ = RgcnConv::new("r", many_rel, &mut ps, &mut rng);
        let basis_params = 4 * 64 + 51 * 4 + 64 + 8; // bases + coeffs + self + bias
        assert_eq!(ps.num_elements(), basis_params);
        // Full per-relation weights would need 51 * 64 = 3264 just for W_r.
        assert!(ps.num_elements() < 51 * 64);
    }
}
