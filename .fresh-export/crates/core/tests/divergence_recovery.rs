//! Divergence-watchdog guarantees, exercised through deterministic fault
//! injection: a transiently diverging run rolls back, replays, and ends up
//! bit-identical to an uninterrupted run; persistent divergence exhausts
//! the retry budget with damped learning rates and leaves finite
//! parameters; a corrupted rollback checkpoint is detected, not restored.

use am_dgcnn::{
    predict_probs, DivergenceCause, Error, Experiment, FaultInjector, FaultPlan, GnnKind,
    Hyperparams, Session, WatchdogConfig,
};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use std::sync::Arc;

const LR: f32 = 5e-3;

fn dataset() -> Dataset {
    wn18_like(&Wn18Config::tiny())
}

fn session(ds: &Dataset, watchdog: WatchdogConfig) -> Session {
    Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(Hyperparams {
            lr: LR,
            hidden_dim: 8,
            sort_k: 10,
        })
        .seed(11)
        .grad_clip(Some(5.0))
        .watchdog(watchdog)
        .build()
        .session(ds, None)
        .expect("session")
}

fn train_with(
    ds: &Dataset,
    watchdog: WatchdogConfig,
    plan: Option<FaultPlan>,
    epochs: usize,
) -> (Session, am_dgcnn::error::Result<()>) {
    let mut s = session(ds, watchdog);
    if let Some(plan) = plan {
        s.trainer
            .attach_fault_injector(Arc::new(FaultInjector::new(plan)));
    }
    let outcome = s
        .trainer
        .train(&s.model, &mut s.ps, &s.train_samples, epochs);
    (s, outcome)
}

/// The acceptance run: a NaN injected at epoch 3 of 6 triggers rollback and
/// an unchanged replay, so the recovered run's loss history and final
/// predictions are bit-identical to a run that never faulted.
#[test]
fn transient_divergence_recovers_to_identical_metrics() {
    let ds = dataset();
    let wd = WatchdogConfig::default();

    let (clean, ok) = train_with(&ds, wd, None, 6);
    ok.expect("clean train");
    let (faulted, ok) = train_with(
        &ds,
        wd,
        Some(FaultPlan {
            nan_loss_epochs: vec![3],
            ..FaultPlan::default()
        }),
        6,
    );
    ok.expect("recovered train");

    let clean_losses: Vec<f32> = clean.trainer.history.iter().map(|e| e.loss).collect();
    let faulted_losses: Vec<f32> = faulted.trainer.history.iter().map(|e| e.loss).collect();
    assert_eq!(
        clean_losses, faulted_losses,
        "replayed epoch must reproduce the clean loss bit-for-bit"
    );
    assert_eq!(
        predict_probs(&clean.model, &clean.ps, &clean.test_samples),
        predict_probs(&faulted.model, &faulted.ps, &faulted.test_samples),
        "final parameters must match an uninterrupted run"
    );

    // The recovery is visible in the records, not just absorbed silently.
    assert_eq!(faulted.trainer.recoveries.len(), 1);
    let rec = &faulted.trainer.recoveries[0];
    assert_eq!(rec.epoch, 3);
    assert_eq!(rec.attempt, 1);
    assert_eq!(rec.cause, DivergenceCause::NonFiniteLoss);
    assert_eq!(rec.lr_next, LR, "first retry replays at the unchanged LR");
    assert_eq!(faulted.trainer.history[2].retries, 1);
    assert!(faulted.trainer.history.iter().all(|e| e.loss.is_finite()));
    assert!(clean.trainer.recoveries.is_empty());
}

#[test]
fn persistent_divergence_exhausts_retries_with_damped_lr() {
    let ds = dataset();
    let wd = WatchdogConfig {
        max_retries: 2,
        ..WatchdogConfig::default()
    };
    let (s, outcome) = train_with(
        &ds,
        wd,
        Some(FaultPlan {
            persistent_nan_loss_epochs: vec![2],
            ..FaultPlan::default()
        }),
        6,
    );
    assert_eq!(
        outcome.unwrap_err(),
        Error::Diverged {
            epoch: 2,
            retries: 2
        }
    );
    // Epoch 1 completed; epoch 2 never did.
    assert_eq!(s.trainer.history.len(), 1);
    // Both retries were recorded: the first replays unchanged, the second
    // damps the learning rate.
    assert_eq!(s.trainer.recoveries.len(), 2);
    assert_eq!(s.trainer.recoveries[0].lr_next, LR);
    assert_eq!(s.trainer.recoveries[1].lr_next, LR * wd.lr_backoff);
    // The caller is left holding the rolled-back (finite) checkpoint, not
    // the diverged parameters.
    assert!(s.ps.all_finite());
}

#[test]
fn corrupted_checkpoint_is_detected_instead_of_restored() {
    let ds = dataset();
    let (_, outcome) = train_with(
        &ds,
        WatchdogConfig::default(),
        Some(FaultPlan {
            nan_loss_epochs: vec![2],
            corrupt_checkpoint_epochs: vec![2],
            ..FaultPlan::default()
        }),
        3,
    );
    assert_eq!(outcome.unwrap_err(), Error::CheckpointCorrupt { epoch: 2 });
}

#[test]
fn disabled_watchdog_restores_legacy_train_through_nan() {
    let ds = dataset();
    let (s, outcome) = train_with(
        &ds,
        WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::default()
        },
        Some(FaultPlan {
            nan_loss_epochs: vec![2],
            ..FaultPlan::default()
        }),
        2,
    );
    outcome.expect("legacy mode trains through the NaN");
    assert!(s.trainer.history[1].loss.is_nan());
    assert!(s.trainer.recoveries.is_empty());
}
