//! Crash-safe checkpointing guarantees, end to end through the pipeline:
//! a run interrupted at an arbitrary epoch and resumed from disk ends up
//! **bit-identical** to a run that never stopped; injected disk faults
//! (torn write, bit flip, partial flush) on any checkpoint save leave the
//! previous generation loadable and the resumed run still exact; and
//! checkpoints that don't belong to the experiment are refused with typed
//! errors.

use am_dgcnn::{
    CheckpointDir, Error, Experiment, ExperimentBuilder, FaultInjector, FaultPlan, GnnKind,
    Hyperparams,
};
use amdgcnn_data::{wn18_like, Dataset, Wn18Config};
use amdgcnn_tensor::io::params_digest;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

const SEED: u64 = 11;
const FULL_EPOCHS: usize = 4;

fn dataset() -> Dataset {
    wn18_like(&Wn18Config::tiny())
}

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "amdgcnn-crash-resume-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn builder(seed: u64) -> ExperimentBuilder {
    Experiment::builder()
        .gnn(GnnKind::am_dgcnn())
        .hyper(Hyperparams {
            lr: 5e-3,
            hidden_dim: 8,
            sort_k: 10,
        })
        .seed(seed)
}

/// Train to each target with checkpointing into `dir`, returning the final
/// parameter digest read back from the newest on-disk generation.
fn run_checkpointed(ds: &Dataset, exp: Experiment, dir: &PathBuf, targets: &[usize]) -> (u64, u32) {
    exp.run_session(exp.session(ds, None).expect("session"), targets)
        .expect("run");
    let (generation, state) = CheckpointDir::create(dir)
        .expect("dir")
        .latest()
        .expect("latest")
        .expect("checkpoint present");
    (generation, params_digest(&state.params))
}

/// Digest of an uninterrupted `FULL_EPOCHS`-epoch run at `SEED`, computed
/// once and shared across tests (training is deterministic, so every test
/// would recompute the identical value).
fn reference_digest() -> u32 {
    static DIGEST: OnceLock<u32> = OnceLock::new();
    *DIGEST.get_or_init(|| {
        let ds = dataset();
        let dir = scratch_dir("reference");
        let exp = builder(SEED).checkpoint_to(&dir, 1).build();
        let (generation, digest) = run_checkpointed(&ds, exp, &dir, &[FULL_EPOCHS]);
        assert_eq!(generation, FULL_EPOCHS as u64);
        digest
    })
}

#[test]
fn resumed_run_is_bit_identical_to_uninterrupted() {
    let ds = dataset();
    let dir = scratch_dir("plain");

    // "Crash" after epoch 3 with checkpoints every 2 epochs: the newest
    // durable generation is 2, so the resume loses epoch 3 and replays it.
    let exp = builder(SEED).checkpoint_to(&dir, 2).build();
    exp.run_session(exp.session(&ds, None).expect("session"), &[3])
        .expect("interrupted run");
    let (generation, _) = CheckpointDir::create(&dir)
        .expect("dir")
        .latest()
        .expect("latest")
        .expect("present");
    assert_eq!(generation, 2, "epoch 3 was never durably saved");

    let resumed = builder(SEED)
        .checkpoint_to(&dir, 2)
        .resume_from(&dir)
        .build();
    let (generation, digest) = run_checkpointed(&ds, resumed, &dir, &[FULL_EPOCHS]);
    assert_eq!(generation, FULL_EPOCHS as u64);
    assert_eq!(
        digest,
        reference_digest(),
        "resumed parameters must match an uninterrupted run bit-for-bit"
    );
}

#[test]
fn resume_restores_history_and_epoch_counter() {
    let ds = dataset();
    let dir = scratch_dir("history");
    let exp = builder(SEED).checkpoint_to(&dir, 1).build();
    exp.run_session(exp.session(&ds, None).expect("session"), &[2])
        .expect("first run");

    let session = builder(SEED)
        .resume_from(&dir)
        .build()
        .session(&ds, None)
        .expect("resumed session");
    assert_eq!(session.trainer.epochs_done(), 2);
    assert_eq!(session.trainer.history.len(), 2);
    assert!(session.trainer.history.iter().all(|e| e.loss.is_finite()));
}

#[test]
fn disk_faults_on_saves_fall_back_and_resume_stays_exact() {
    for (tag, plan) in [
        (
            "torn",
            FaultPlan {
                torn_write_saves: vec![3],
                ..FaultPlan::default()
            },
        ),
        (
            "bitflip",
            FaultPlan {
                bit_flip_saves: vec![3],
                ..FaultPlan::default()
            },
        ),
        (
            "flush",
            FaultPlan {
                partial_flush_saves: vec![3],
                ..FaultPlan::default()
            },
        ),
    ] {
        let ds = dataset();
        let dir = scratch_dir(tag);
        // Checkpoint every epoch; the third save (epoch 3) is hit by the
        // fault, so the newest loadable generation must be epoch 2.
        let exp = builder(SEED)
            .checkpoint_to(&dir, 1)
            .fault_injector(Arc::new(FaultInjector::new(plan)))
            .build();
        exp.run_session(exp.session(&ds, None).expect("session"), &[3])
            .expect("faulted run still trains");
        let (generation, _) = CheckpointDir::create(&dir)
            .expect("dir")
            .latest()
            .expect("latest must fall back, not fail")
            .expect("present");
        assert_eq!(generation, 2, "{tag}: corrupt generation 3 must be skipped");

        // Resuming from the fallback replays epoch 3+ and still lands on
        // the uninterrupted run's exact parameters.
        let resumed = builder(SEED)
            .checkpoint_to(&dir, 1)
            .resume_from(&dir)
            .build();
        let (generation, digest) = run_checkpointed(&ds, resumed, &dir, &[FULL_EPOCHS]);
        assert_eq!(generation, FULL_EPOCHS as u64, "{tag}");
        assert_eq!(digest, reference_digest(), "{tag}: resume must stay exact");
    }
}

#[test]
fn resume_with_wrong_seed_is_refused() {
    let ds = dataset();
    let dir = scratch_dir("seed");
    let exp = builder(SEED).checkpoint_to(&dir, 1).build();
    exp.run_session(exp.session(&ds, None).expect("session"), &[1])
        .expect("first run");

    let err = match builder(SEED + 1)
        .resume_from(&dir)
        .build()
        .session(&ds, None)
    {
        Err(e) => e,
        Ok(_) => panic!("wrong seed must be refused"),
    };
    assert!(matches!(err, Error::ResumeMismatch { .. }), "{err:?}");
}

#[test]
fn all_generations_corrupt_is_a_typed_error_not_a_fresh_start() {
    let ds = dataset();
    let dir = scratch_dir("allbad");
    // The only save ever made is torn.
    let exp = builder(SEED)
        .checkpoint_to(&dir, 1)
        .fault_injector(Arc::new(FaultInjector::new(FaultPlan {
            torn_write_saves: vec![1],
            ..FaultPlan::default()
        })))
        .build();
    exp.run_session(exp.session(&ds, None).expect("session"), &[1])
        .expect("run");

    let err = match builder(SEED).resume_from(&dir).build().session(&ds, None) {
        Err(e) => e,
        Ok(_) => panic!("an unloadable checkpoint dir must not silently restart"),
    };
    assert!(matches!(err, Error::CheckpointIo { .. }), "{err:?}");
}

#[test]
fn empty_checkpoint_dir_starts_fresh() {
    let ds = dataset();
    let dir = scratch_dir("fresh");
    let session = builder(SEED)
        .resume_from(&dir)
        .build()
        .session(&ds, None)
        .expect("empty dir resumes as a fresh run");
    assert_eq!(session.trainer.epochs_done(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: interrupt at *any* epoch, with *any*
    /// checkpoint cadence, and the resumed run's final parameters are
    /// bit-identical to the uninterrupted run's.
    #[test]
    fn resume_from_any_interrupt_point_is_bit_identical(
        interrupt in 1usize..FULL_EPOCHS,
        every in 1usize..3,
    ) {
        let ds = dataset();
        let dir = scratch_dir("prop");
        let exp = builder(SEED).checkpoint_to(&dir, every).build();
        exp.run_session(exp.session(&ds, None).expect("session"), &[interrupt])
            .expect("interrupted run");
        // A crash between checkpoint cadence points may not have saved the
        // latest epochs; resume replays whatever was lost.
        let resumed = builder(SEED)
            .checkpoint_to(&dir, 1)
            .resume_from(&dir)
            .build();
        let (generation, digest) =
            run_checkpointed(&ds, resumed, &dir, &[FULL_EPOCHS]);
        prop_assert_eq!(generation, FULL_EPOCHS as u64);
        prop_assert_eq!(digest, reference_digest());
    }
}
