//! Property-based tests of the evaluation metrics.

use am_dgcnn::metrics::{
    accuracy, argmax_predictions, auc_one_vs_rest, average_precision, confusion_matrix, macro_auc,
    roc_auc, roc_curve,
};
use amdgcnn_tensor::Matrix;
use proptest::prelude::*;

fn scores_and_labels(n: usize) -> impl Strategy<Value = (Vec<f32>, Vec<bool>)> {
    (
        proptest::collection::vec(0.0f32..1.0, n..n + 1),
        proptest::collection::vec(proptest::bool::ANY, n..n + 1),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_bounded((scores, labels) in scores_and_labels(12)) {
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_flips_with_labels((scores, labels) in scores_and_labels(12)) {
        let n_pos = labels.iter().filter(|&&p| p).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let auc = roc_auc(&scores, &labels);
        let flipped: Vec<bool> = labels.iter().map(|&b| !b).collect();
        let auc_flipped = roc_auc(&scores, &flipped);
        prop_assert!((auc + auc_flipped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform((scores, labels) in scores_and_labels(12)) {
        let n_pos = labels.iter().filter(|&&p| p).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let transformed: Vec<f32> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        prop_assert!((roc_auc(&scores, &labels) - roc_auc(&transformed, &labels)).abs() < 1e-9);
    }

    #[test]
    fn auc_equals_area_under_curve((scores, labels) in scores_and_labels(14)) {
        let n_pos = labels.iter().filter(|&&p| p).count();
        prop_assume!(n_pos > 0 && n_pos < labels.len());
        let pts = roc_curve(&scores, &labels);
        let mut area = 0.0;
        for w in pts.windows(2) {
            area += (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0;
        }
        prop_assert!((area - roc_auc(&scores, &labels)).abs() < 1e-9);
    }

    #[test]
    fn confusion_matrix_row_sums_equal_class_counts(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..30),
    ) {
        let labels: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let preds: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let cm = confusion_matrix(&preds, &labels, 4);
        for (c, row) in cm.iter().enumerate() {
            let count = labels.iter().filter(|&&l| l == c).count();
            let row_sum: usize = row.iter().sum();
            prop_assert_eq!(count, row_sum);
        }
        // Trace / total == accuracy.
        let trace: usize = (0..4).map(|c| cm[c][c]).sum();
        prop_assert!((trace as f64 / labels.len() as f64 - accuracy(&preds, &labels)).abs() < 1e-12);
    }

    #[test]
    fn perfect_probs_are_perfect(labels in proptest::collection::vec(0usize..3, 2..20)) {
        // One-hot "probabilities" matching the labels give AUC 1 (per class
        // present on both sides), AP 1, accuracy 1.
        let mut probs = Matrix::zeros(labels.len(), 3);
        for (r, &l) in labels.iter().enumerate() {
            probs.set(r, l, 1.0);
        }
        let preds = argmax_predictions(&probs);
        prop_assert_eq!(accuracy(&preds, &labels), 1.0);
        prop_assert_eq!(average_precision(&preds, &labels, 3), 1.0);
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        for &c in &distinct {
            if distinct.len() > 1 {
                prop_assert_eq!(auc_one_vs_rest(&probs, &labels, c), 1.0);
            }
        }
        if distinct.len() > 1 {
            prop_assert_eq!(macro_auc(&probs, &labels), 1.0);
        }
    }

    #[test]
    fn ap_and_accuracy_bounded(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..25),
    ) {
        let labels: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let preds: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let ap = average_precision(&preds, &labels, 4);
        prop_assert!((0.0..=1.0).contains(&ap));
        let acc = accuracy(&preds, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
    }
}
