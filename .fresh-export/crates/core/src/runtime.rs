//! Process-level runtime tuning for batched training and serving.

/// Raise glibc malloc's trim and mmap thresholds so the multi-megabyte
/// buffers a packed minibatch allocates every step — the block-diagonal
/// CSR, the concatenated feature leaf, the packed layer activations —
/// are recycled warm from the heap instead of being returned to the
/// kernel on free and page-faulted back in on the next minibatch.
///
/// With glibc's defaults, freeing a large block at the top of the heap
/// trims the heap (`M_TRIM_THRESHOLD`, 128 KiB) and blocks above the
/// dynamic mmap threshold are unmapped outright, so a training loop that
/// allocates tens of megabytes per packed forward spends a measurable
/// slice of every step in page faults (~2x on the packed forward span in
/// the kernel benchmark). Calling this once at process start pins both
/// thresholds above the working set.
///
/// No-op on non-glibc targets. Safe to call multiple times.
pub fn tune_allocator_for_batching() {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        // From glibc's malloc.h.
        const M_TRIM_THRESHOLD: i32 = -1;
        const M_MMAP_THRESHOLD: i32 = -3;
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        unsafe {
            mallopt(M_TRIM_THRESHOLD, 512 << 20);
            mallopt(M_MMAP_THRESHOLD, 256 << 20);
        }
    }
}
