//! Learning-rate schedules and early stopping — training conveniences
//! layered over [`crate::train::Trainer`].

/// Learning-rate schedule evaluated per epoch (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Multiplicative factor per decay.
        gamma: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` epochs.
    Cosine {
        /// Horizon of the anneal.
        total: usize,
        /// Floor learning rate.
        min_lr: f32,
    },
    /// Linear warmup over `warmup` epochs, then constant.
    Warmup {
        /// Warmup length in epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// Learning rate for `epoch` (1-based) given the base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        assert!(epoch >= 1, "epochs are 1-based");
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::StepDecay { every, gamma } => {
                let decays = (epoch - 1) / every.max(1);
                base * gamma.powi(decays as i32)
            }
            LrSchedule::Cosine { total, min_lr } => {
                let t = ((epoch - 1) as f32 / total.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup { warmup } => {
                if epoch <= warmup {
                    base * epoch as f32 / warmup.max(1) as f32
                } else {
                    base
                }
            }
        }
    }
}

/// Early stopping on a monitored metric (higher = better): trips after
/// `patience` consecutive epochs without an improvement of at least
/// `min_delta`.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    /// Epochs tolerated without improvement.
    pub patience: usize,
    /// Minimum improvement counted as progress.
    pub min_delta: f64,
    best: f64,
    stale: usize,
}

impl EarlyStopping {
    /// Fresh monitor.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        Self {
            patience,
            min_delta,
            best: f64::NEG_INFINITY,
            stale: 0,
        }
    }

    /// Record an epoch's metric; returns `true` when training should stop.
    pub fn update(&mut self, metric: f64) -> bool {
        if metric > self.best + self.min_delta {
            self.best = metric;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale >= self.patience
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        for e in 1..20 {
            assert_eq!(LrSchedule::Constant.lr_at(0.01, e), 0.01);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 3,
            gamma: 0.5,
        };
        assert_eq!(s.lr_at(0.8, 1), 0.8);
        assert_eq!(s.lr_at(0.8, 3), 0.8);
        assert_eq!(s.lr_at(0.8, 4), 0.4);
        assert_eq!(s.lr_at(0.8, 7), 0.2);
    }

    #[test]
    fn cosine_descends_to_floor() {
        let s = LrSchedule::Cosine {
            total: 10,
            min_lr: 1e-4,
        };
        let start = s.lr_at(0.01, 1);
        let mid = s.lr_at(0.01, 6);
        let end = s.lr_at(0.01, 11);
        assert!((start - 0.01).abs() < 1e-6);
        assert!(mid < start && mid > end);
        assert!((end - 1e-4).abs() < 1e-6);
        // Monotone non-increasing across the horizon.
        let mut prev = f32::INFINITY;
        for e in 1..=11 {
            let lr = s.lr_at(0.01, e);
            assert!(lr <= prev + 1e-9);
            prev = lr;
        }
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert!((s.lr_at(0.02, 1) - 0.005).abs() < 1e-7);
        assert!((s.lr_at(0.02, 2) - 0.01).abs() < 1e-7);
        assert_eq!(s.lr_at(0.02, 4), 0.02);
        assert_eq!(s.lr_at(0.02, 9), 0.02);
    }

    #[test]
    fn early_stopping_trips_after_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(0.5));
        assert!(!es.update(0.6)); // improvement resets
        assert!(!es.update(0.6)); // stale 1
        assert!(es.update(0.59)); // stale 2 → stop
        assert_eq!(es.best(), 0.6);
    }

    #[test]
    fn min_delta_filters_noise() {
        let mut es = EarlyStopping::new(2, 0.05);
        assert!(!es.update(0.50));
        assert!(!es.update(0.52)); // +0.02 < delta → stale 1
        assert!(es.update(0.53)); // still below delta → stale 2 → stop
    }
}
