//! Data-parallel training and evaluation.
//!
//! Each sample's forward/backward runs on its own tape, so a minibatch fans
//! out over rayon workers with the parameters shared read-only (`Arc`
//! snapshots). Per-sample gradients are reduced **in sample order** — a
//! parallel map followed by an ordered fold — so training is bit-for-bit
//! reproducible for a fixed seed regardless of thread scheduling.

use crate::checkpoint::TrainState;
use crate::error::{Error, Result};
use crate::fault::FaultInjector;
use crate::sample::PreparedSample;
use crate::schedule::LrSchedule;
use amdgcnn_nn::{Adam, Optimizer};
use amdgcnn_obs::Obs;
use amdgcnn_tensor::{GradStore, Matrix, ParamId, ParamStore, Tape, Var};
use rand::{rngs::StdRng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;

/// A subgraph-level link classifier the trainer can drive: anything that
/// maps a [`PreparedSample`] to `[1, num_classes]` logits on a tape.
/// Implemented by [`crate::model::DgcnnModel`] (both GNN variants) and
/// [`crate::wlnm::WlnmModel`] (the §VI-B baseline).
pub trait LinkModel: Sync {
    /// Forward pass producing `[1, num_classes]` logits. `dropout_rng`
    /// enables training-mode stochastic regularization.
    fn forward_sample(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        sample: &PreparedSample,
        dropout_rng: Option<&mut StdRng>,
    ) -> Var;

    /// Forward a whole minibatch on one tape, returning one logits `Var`
    /// per sample in order. `dropout_rngs`, when given, holds one RNG per
    /// sample. The default runs [`forward_sample`](Self::forward_sample)
    /// per sample; [`crate::model::DgcnnModel`] overrides it with a
    /// block-diagonal packed forward that runs the message passing as a
    /// few large sparse kernels.
    fn forward_batch(
        &self,
        tape: &mut Tape,
        ps: &ParamStore,
        samples: &[&PreparedSample],
        mut dropout_rngs: Option<&mut [StdRng]>,
    ) -> Vec<Var> {
        samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let rng = dropout_rngs.as_mut().map(|r| &mut r[i]);
                self.forward_sample(tape, ps, s, rng)
            })
            .collect()
    }

    /// Number of output classes.
    fn num_classes(&self) -> usize;
}

/// Divergence-watchdog settings: what the trainer does when an epoch
/// produces a non-finite loss or non-finite gradients.
///
/// On divergence the watchdog rolls the parameters and optimizer state back
/// to the checkpoint taken at the start of the epoch and retries. The
/// *first* retry replays the epoch unchanged — transient glitches (an
/// injected fault, a flipped bit, a racy read) need no mitigation, and an
/// unchanged replay keeps a recovered run bit-identical to an uninterrupted
/// one. From the second retry on, the learning rate is multiplied by
/// `lr_backoff` per additional attempt, damping genuine numerical
/// divergence. The budget is bounded: exhausting `max_retries` returns
/// [`Error::Diverged`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Detect divergence and recover (`false` restores the legacy
    /// train-through-NaN behavior, skipping the per-batch finiteness
    /// checks).
    pub enabled: bool,
    /// Rollback retries allowed per epoch before giving up.
    pub max_retries: usize,
    /// Learning-rate factor applied per retry after the first.
    pub lr_backoff: f32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// Training parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Adam learning rate (Table I search dimension).
    pub lr: f32,
    /// Samples per gradient step.
    pub batch_size: usize,
    /// Global-norm gradient clip (`None` disables).
    pub grad_clip: Option<f32>,
    /// Seed for shuffling and dropout.
    pub seed: u64,
    /// Divergence detection and rollback recovery.
    pub watchdog: WatchdogConfig,
    /// Run each minibatch as one block-diagonal packed forward/backward
    /// (`true`, the default) instead of per-sample tapes fanned over rayon.
    /// The packed forward is bit-identical per sample; only the gradient
    /// *reduction* regroups float sums, so the loss trajectories of the two
    /// modes agree to float tolerance rather than bitwise.
    pub batched: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 1e-3,
            batch_size: 16,
            grad_clip: Some(5.0),
            seed: 0,
            watchdog: WatchdogConfig::default(),
            batched: true,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Watchdog retries this epoch needed before completing (0 for a clean
    /// epoch).
    pub retries: usize,
}

/// What tripped the divergence watchdog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// A per-sample or epoch-mean loss was NaN/∞.
    NonFiniteLoss,
    /// A merged batch gradient contained NaN/∞.
    NonFiniteGradient,
}

/// One watchdog recovery: the epoch was rolled back to its checkpoint and
/// retried.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch (1-based) that diverged.
    pub epoch: usize,
    /// Retry number this event triggered (1-based).
    pub attempt: usize,
    /// What was detected.
    pub cause: DivergenceCause,
    /// Learning rate the retry will run at.
    pub lr_next: f32,
}

/// Incremental trainer: owns the optimizer state so callers can train a few
/// epochs, evaluate, and continue (the paper's epoch sweeps, Figs. 3–6).
pub struct Trainer {
    cfg: TrainConfig,
    optimizer: Adam,
    epoch: usize,
    schedule: LrSchedule,
    injector: Option<Arc<FaultInjector>>,
    obs: Obs,
    /// Loss history across all epochs trained so far.
    pub history: Vec<EpochStats>,
    /// Watchdog recoveries across all epochs trained so far.
    pub recoveries: Vec<RecoveryEvent>,
}

impl Trainer {
    /// New trainer with Adam at `cfg.lr` and a constant schedule.
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            cfg,
            optimizer: Adam::new(cfg.lr),
            epoch: 0,
            schedule: LrSchedule::Constant,
            injector: None,
            obs: Obs::disabled(),
            history: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// Attach an observability registry: epoch/forward/backward/optimizer
    /// spans and watchdog events are recorded into it. Timing is observed,
    /// never consumed, so results stay bit-identical to an unobserved run.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.attach_obs(obs);
        self
    }

    /// In-place variant of [`with_obs`](Self::with_obs) for trainers
    /// already embedded in a [`crate::pipeline::Session`].
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Replace the learning-rate schedule (applies from the next epoch).
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Attach a deterministic fault injector (testing hook: forces NaN
    /// losses and checkpoint corruption on the epochs its plan schedules).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.attach_fault_injector(injector);
        self
    }

    /// In-place variant of [`with_fault_injector`](Self::with_fault_injector)
    /// for trainers already embedded in a [`crate::pipeline::Session`].
    pub fn attach_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Number of epochs completed.
    pub fn epochs_done(&self) -> usize {
        self.epoch
    }

    /// The learning rate the optimizer is currently using.
    pub fn current_lr(&self) -> f32 {
        self.optimizer.learning_rate()
    }

    /// The learning-rate schedule in effect.
    pub fn schedule(&self) -> LrSchedule {
        self.schedule
    }

    /// Train for `epochs` additional epochs.
    ///
    /// Each epoch is guarded by the divergence watchdog (when
    /// [`WatchdogConfig::enabled`]): a checkpoint of the parameters and
    /// optimizer state is taken at epoch start, non-finite losses or
    /// gradients abort the epoch, roll back to the checkpoint, and retry —
    /// first unchanged (so a recovered run reproduces an uninterrupted one
    /// bit-for-bit after a transient fault), then with the learning rate
    /// damped by [`WatchdogConfig::lr_backoff`] per further attempt.
    /// Recoveries are recorded in [`Trainer::recoveries`] and in the
    /// epoch's [`EpochStats::retries`].
    ///
    /// # Errors
    /// - [`Error::EmptySplit`] when `samples` is empty — there is nothing
    ///   to fit, and silently "training" zero samples would desynchronize
    ///   the epoch counter from the optimizer state.
    /// - [`Error::Diverged`] when an epoch stays non-finite after the
    ///   watchdog's retry budget; the parameters are left rolled back to
    ///   the epoch's checkpoint.
    /// - [`Error::CheckpointCorrupt`] when the rollback checkpoint itself
    ///   fails finiteness validation.
    pub fn train(
        &mut self,
        model: &impl LinkModel,
        ps: &mut ParamStore,
        samples: &[PreparedSample],
        epochs: usize,
    ) -> Result<()> {
        if samples.is_empty() {
            return Err(Error::EmptySplit);
        }
        for _ in 0..epochs {
            self.epoch += 1;
            let wd = self.cfg.watchdog;
            // Cheap checkpoint: ParamStore clones share the value Arcs and
            // the optimizer only copies its moment buffers; the store
            // copies-on-write under optimizer steps, leaving this intact.
            let mut snapshot = wd.enabled.then(|| (ps.clone(), self.optimizer.clone()));
            if let (Some((snap_ps, _)), Some(inj)) = (snapshot.as_mut(), self.injector.as_ref()) {
                if inj.corrupt_checkpoint(self.epoch) && !snap_ps.is_empty() {
                    // Injected checkpoint corruption: poison the snapshot so
                    // restore-time validation must catch it.
                    snap_ps.update(ParamId(0), |m| m.set(0, 0, f32::NAN));
                }
            }
            let mut attempt = 0usize;
            loop {
                self.optimizer
                    .set_learning_rate(self.retry_lr(self.epoch, attempt, wd));
                let cause = match self.run_epoch(model, ps, samples, attempt) {
                    Ok(loss) => {
                        self.history.push(EpochStats {
                            epoch: self.epoch,
                            loss,
                            retries: attempt,
                        });
                        break;
                    }
                    Err(cause) => cause,
                };
                let (snap_ps, snap_opt) = snapshot
                    .as_ref()
                    .expect("divergence is only detected with the watchdog enabled");
                if !snap_ps.all_finite() {
                    return Err(Error::CheckpointCorrupt { epoch: self.epoch });
                }
                // Roll back to the last good state whether or not budget
                // remains, so a caller that gives up still holds finite
                // parameters.
                *ps = snap_ps.clone();
                self.optimizer = snap_opt.clone();
                attempt += 1;
                if attempt > wd.max_retries {
                    return Err(Error::Diverged {
                        epoch: self.epoch,
                        retries: wd.max_retries,
                    });
                }
                let lr_next = self.retry_lr(self.epoch, attempt, wd);
                self.obs.counter("train/watchdog_retries").inc();
                {
                    let epoch = self.epoch;
                    self.obs.event("train/watchdog_rollback", || {
                        format!("epoch {epoch} attempt {attempt}: {cause:?}, retry at lr {lr_next}")
                    });
                }
                self.recoveries.push(RecoveryEvent {
                    epoch: self.epoch,
                    attempt,
                    cause,
                    lr_next,
                });
            }
        }
        Ok(())
    }

    /// Capture a durable, resumable snapshot of the run: parameters,
    /// optimizer moments, epoch counter, seed, and the history/recovery
    /// logs. Because every RNG stream the trainer uses is a pure function
    /// of `(seed, epoch, sample)`, this snapshot is sufficient for a
    /// resumed run to be **bit-identical** to an uninterrupted one.
    pub fn snapshot(&self, ps: &ParamStore) -> TrainState {
        TrainState {
            epochs_done: self.epoch,
            seed: self.cfg.seed,
            params: ps.clone(),
            opt: self.optimizer.export_state(),
            history: self.history.clone(),
            recoveries: self.recoveries.clone(),
        }
    }

    /// Restore this trainer (and `ps`) from a snapshot taken by
    /// [`snapshot`](Self::snapshot), after verifying the snapshot belongs
    /// to this experiment.
    ///
    /// # Errors
    /// [`Error::ResumeMismatch`] when the snapshot's seed differs from the
    /// configured one, or its parameters disagree with `ps` in count,
    /// name, or shape — continuing from such a snapshot would silently
    /// change the run.
    pub fn restore(&mut self, state: &TrainState, ps: &mut ParamStore) -> Result<()> {
        if state.seed != self.cfg.seed {
            return Err(Error::ResumeMismatch {
                detail: format!(
                    "checkpoint was trained with seed {} but this experiment \
                     uses seed {}",
                    state.seed, self.cfg.seed
                ),
            });
        }
        if state.params.len() != ps.len() {
            return Err(Error::ResumeMismatch {
                detail: format!(
                    "checkpoint holds {} parameters but the model has {}",
                    state.params.len(),
                    ps.len()
                ),
            });
        }
        for (id, value) in state.params.iter() {
            let expected = ps.get(id);
            if state.params.name(id) != ps.name(id)
                || value.rows() != expected.rows()
                || value.cols() != expected.cols()
            {
                return Err(Error::ResumeMismatch {
                    detail: format!(
                        "parameter {} is {:?} {}x{} in the checkpoint but \
                         {:?} {}x{} in the model",
                        id.0,
                        state.params.name(id),
                        value.rows(),
                        value.cols(),
                        ps.name(id),
                        expected.rows(),
                        expected.cols()
                    ),
                });
            }
        }
        *ps = state.params.clone();
        self.optimizer.restore_state(state.opt.clone());
        self.epoch = state.epochs_done;
        self.history = state.history.clone();
        self.recoveries = state.recoveries.clone();
        Ok(())
    }

    /// Learning rate for retry `attempt` (0-based) of `epoch`: the
    /// scheduled rate, unchanged for the first attempt and first retry,
    /// then damped by `lr_backoff` per further retry.
    fn retry_lr(&self, epoch: usize, attempt: usize, wd: WatchdogConfig) -> f32 {
        let scheduled = self.schedule.lr_at(self.cfg.lr, epoch);
        if attempt <= 1 {
            scheduled
        } else {
            scheduled * wd.lr_backoff.powi(attempt as i32 - 1)
        }
    }

    /// One epoch over `samples`: shuffled minibatches, parallel per-sample
    /// gradients, ordered reduction, optimizer steps. Returns the mean
    /// epoch loss, or the divergence cause when the watchdog detects a
    /// non-finite loss or gradient (aborting the epoch mid-way; the caller
    /// rolls back). RNG streams depend only on `(seed, epoch, sample)`, so
    /// a retry of the same epoch replays it exactly.
    fn run_epoch(
        &mut self,
        model: &impl LinkModel,
        ps: &mut ParamStore,
        samples: &[PreparedSample],
        attempt: usize,
    ) -> std::result::Result<f32, DivergenceCause> {
        let detect = self.cfg.watchdog.enabled;
        // Span timers resolved once per epoch; the forward/backward handles
        // are shared read-only into the rayon workers (atomics only).
        let _epoch_span = self.obs.timer("train/epoch").start();
        let t_forward = self.obs.timer("train/forward");
        let t_backward = self.obs.timer("train/backward");
        let t_opt = self.obs.timer("train/optimizer_step");
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut shuffle_rng =
            StdRng::seed_from_u64(self.cfg.seed ^ (self.epoch as u64).wrapping_mul(0x9E37));
        amdgcnn_data::types::shuffle(&mut order, &mut shuffle_rng);

        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(self.cfg.batch_size) {
            let dropout_rng_for = |idx: usize| {
                StdRng::seed_from_u64(
                    self.cfg.seed
                        ^ (self.epoch as u64) << 32
                        ^ (idx as u64).wrapping_mul(0x517c_c1b7_2722_0a95),
                )
            };
            let (loss_vals, batch_grads) = if self.cfg.batched {
                // One tape for the whole minibatch: the model packs the
                // subgraphs block-diagonally and runs the message passing
                // as a few large sparse kernels. Per-sample dropout streams
                // are the same the per-sample path would draw.
                let refs: Vec<&PreparedSample> = chunk.iter().map(|&idx| &samples[idx]).collect();
                let mut rngs: Vec<StdRng> = chunk.iter().map(|&idx| dropout_rng_for(idx)).collect();
                let mut tape = Tape::new();
                let forward_span = t_forward.start();
                let logits = model.forward_batch(&mut tape, ps, &refs, Some(&mut rngs));
                let losses: Vec<Var> = logits
                    .iter()
                    .zip(refs.iter())
                    .map(|(&l, s)| tape.softmax_cross_entropy(l, Arc::new(vec![s.label])))
                    .collect();
                let loss_vals: Vec<f32> = losses.iter().map(|&l| tape.value(l).get(0, 0)).collect();
                // Mean batch loss on-tape: its backward IS the mean of the
                // per-sample gradients, replacing the merge+scale reduction.
                let mut total = losses[0];
                for &l in &losses[1..] {
                    total = tape.add(total, l);
                }
                let mean = tape.scale(total, 1.0 / chunk.len() as f32);
                forward_span.finish();
                let backward_span = t_backward.start();
                let grads = tape.backward(mean, ps.len());
                backward_span.finish();
                (loss_vals, grads)
            } else {
                // Legacy path: parallel per-sample tapes; ordered reduction.
                let results: Vec<(f32, GradStore)> = chunk
                    .par_iter()
                    .map(|&idx| {
                        let sample = &samples[idx];
                        let mut dropout_rng = dropout_rng_for(idx);
                        let mut tape = Tape::new();
                        let forward_span = t_forward.start();
                        let logits =
                            model.forward_sample(&mut tape, ps, sample, Some(&mut dropout_rng));
                        let loss = tape.softmax_cross_entropy(logits, Arc::new(vec![sample.label]));
                        let loss_val = tape.value(loss).get(0, 0);
                        forward_span.finish();
                        let backward_span = t_backward.start();
                        let grads = tape.backward(loss, ps.len());
                        backward_span.finish();
                        (loss_val, grads)
                    })
                    .collect();
                let mut batch_grads = GradStore::new(ps.len());
                for (_, grads) in &results {
                    batch_grads.merge(grads);
                }
                batch_grads.scale(1.0 / chunk.len() as f32);
                (results.into_iter().map(|(l, _)| l).collect(), batch_grads)
            };

            let mut losses_finite = true;
            for loss_val in &loss_vals {
                epoch_loss += *loss_val as f64;
                losses_finite &= loss_val.is_finite();
            }
            if detect && !losses_finite {
                return Err(DivergenceCause::NonFiniteLoss);
            }
            let mut batch_grads = batch_grads;
            if let Some(clip) = self.cfg.grad_clip {
                batch_grads.clip_global_norm(clip);
            }
            if detect && !batch_grads.all_finite() {
                return Err(DivergenceCause::NonFiniteGradient);
            }
            let opt_span = t_opt.start();
            self.optimizer.step(ps, &batch_grads);
            opt_span.finish();
        }
        let mut loss = (epoch_loss / samples.len() as f64) as f32;
        if self
            .injector
            .as_ref()
            .is_some_and(|inj| inj.nan_loss(self.epoch, attempt))
        {
            // Injected divergence: the fault corrupts the reported loss
            // after the epoch ran clean, exercising the real detection and
            // rollback path.
            loss = f32::NAN;
        }
        if detect && !loss.is_finite() {
            return Err(DivergenceCause::NonFiniteLoss);
        }
        Ok(loss)
    }
}

/// Inference micro-batch size for [`predict_probs`]: large enough to
/// amortize the packed-kernel launches, small enough to bound tape memory.
const PREDICT_CHUNK: usize = 32;

/// Class-probability predictions for a batch of samples (inference mode,
/// micro-batched packed forwards fanned over rayon, order preserved).
/// Returns `[num_samples, num_classes]` — bit-identical to a per-sample
/// forward loop, since the packed forward reproduces each sample's logits
/// exactly.
pub fn predict_probs(
    model: &impl LinkModel,
    ps: &ParamStore,
    samples: &[PreparedSample],
) -> Matrix {
    let chunks: Vec<&[PreparedSample]> = samples.chunks(PREDICT_CHUNK).collect();
    let chunk_rows: Vec<Vec<Vec<f32>>> = chunks
        .par_iter()
        .map(|chunk| {
            let refs: Vec<&PreparedSample> = chunk.iter().collect();
            let mut tape = Tape::new();
            let logits = model.forward_batch(&mut tape, ps, &refs, None);
            logits
                .into_iter()
                .map(|l| {
                    let probs = tape.softmax_rows(l);
                    tape.value(probs).row(0).to_vec()
                })
                .collect()
        })
        .collect();
    let cols = model.num_classes();
    let mut out = Matrix::zeros(samples.len(), cols);
    for (r, row) in chunk_rows.iter().flatten().enumerate() {
        out.row_mut(r).copy_from_slice(row);
    }
    out
}

/// Labels of a sample batch.
pub fn labels_of(samples: &[PreparedSample]) -> Vec<usize> {
    samples.iter().map(|s| s.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::model::{DgcnnModel, GnnKind, ModelConfig};
    use crate::sample::prepare_batch;
    use amdgcnn_data::{wn18_like, Wn18Config};

    fn tiny_setup(gnn: GnnKind) -> (DgcnnModel, ParamStore, Vec<PreparedSample>) {
        let ds = wn18_like(&Wn18Config::tiny());
        let fcfg = FeatureConfig::for_graph(ds.graph.num_node_types());
        let mut cfg =
            ModelConfig::dgcnn_defaults(gnn, fcfg.dim(), ds.edge_attrs.dim(), ds.num_classes);
        cfg.hidden_dim = 8;
        cfg.sort_k = 10;
        cfg.dense_dim = 16;
        let mut ps = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let model = DgcnnModel::new(cfg, &mut ps, &mut rng);
        let samples = prepare_batch(&ds, &ds.train[..24.min(ds.train.len())], &fcfg);
        (model, ps, samples)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::am_dgcnn());
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 0,
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&model, &mut ps, &samples, 8).expect("train");
        let first = trainer.history.first().expect("history").loss;
        let last = trainer.history.last().expect("history").loss;
        assert!(
            last < first,
            "training loss should fall: first {first}, last {last}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let (model, mut ps, samples) = tiny_setup(GnnKind::am_dgcnn());
            let mut trainer = Trainer::new(TrainConfig {
                lr: 5e-3,
                seed: 42,
                ..Default::default()
            });
            trainer.train(&model, &mut ps, &samples, 3).expect("train");
            let probs = predict_probs(&model, &ps, &samples);
            (
                trainer.history.iter().map(|e| e.loss).collect::<Vec<_>>(),
                probs,
            )
        };
        let (h1, p1) = run();
        let (h2, p2) = run();
        assert_eq!(
            h1, h2,
            "loss history must be reproducible under parallelism"
        );
        assert_eq!(p1, p2, "predictions must be reproducible");
    }

    #[test]
    fn predictions_are_valid_distributions() {
        let (model, ps, samples) = tiny_setup(GnnKind::Gcn);
        let probs = predict_probs(&model, &ps, &samples);
        assert_eq!(probs.rows(), samples.len());
        for r in 0..probs.rows() {
            let sum: f32 = probs.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            assert!(probs.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn incremental_training_continues() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 5e-3,
            ..Default::default()
        });
        trainer.train(&model, &mut ps, &samples, 2).expect("train");
        assert_eq!(trainer.epochs_done(), 2);
        trainer.train(&model, &mut ps, &samples, 3).expect("train");
        assert_eq!(trainer.epochs_done(), 5);
        assert_eq!(trainer.history.len(), 5);
        // Epoch indices are contiguous.
        for (i, e) in trainer.history.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
        }
    }

    #[test]
    fn schedule_drives_optimizer_lr() {
        let (model, mut ps, samples) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig {
            lr: 0.8,
            ..Default::default()
        })
        .with_schedule(crate::schedule::LrSchedule::StepDecay {
            every: 1,
            gamma: 0.5,
        });
        trainer.train(&model, &mut ps, &samples, 1).expect("train");
        assert!((trainer.current_lr() - 0.8).abs() < 1e-6);
        trainer.train(&model, &mut ps, &samples, 1).expect("train");
        assert!((trainer.current_lr() - 0.4).abs() < 1e-6);
        trainer.train(&model, &mut ps, &samples, 2).expect("train");
        assert!((trainer.current_lr() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn batched_and_legacy_training_agree() {
        // The packed forward is bit-identical per sample; only the gradient
        // reduction regroups float sums, so short trajectories agree to
        // tight float tolerance.
        let run = |batched: bool| {
            let (model, mut ps, samples) = tiny_setup(GnnKind::am_dgcnn());
            let mut trainer = Trainer::new(TrainConfig {
                lr: 5e-3,
                seed: 7,
                batched,
                ..Default::default()
            });
            trainer.train(&model, &mut ps, &samples, 2).expect("train");
            trainer.history.iter().map(|e| e.loss).collect::<Vec<_>>()
        };
        let b = run(true);
        let l = run(false);
        assert_eq!(
            b[0], l[0],
            "epoch 1 sees identical params: losses match bitwise"
        );
        for (x, y) in b.iter().zip(&l) {
            assert!((x - y).abs() < 1e-4, "batched {x} vs legacy {y}");
        }
    }

    #[test]
    fn labels_roundtrip() {
        let (_, _, samples) = tiny_setup(GnnKind::Gcn);
        let labels = labels_of(&samples);
        assert_eq!(labels.len(), samples.len());
        for (l, s) in labels.iter().zip(samples.iter()) {
            assert_eq!(*l, s.label);
        }
    }

    #[test]
    fn empty_split_rejected() {
        let (model, mut ps, _) = tiny_setup(GnnKind::Gcn);
        let mut trainer = Trainer::new(TrainConfig::default());
        let err = trainer.train(&model, &mut ps, &[], 1).unwrap_err();
        assert_eq!(err, Error::EmptySplit);
        assert_eq!(
            trainer.epochs_done(),
            0,
            "failed call must not advance epochs"
        );
    }
}
