//! Prediction-accuracy metrics (paper §V-A): ROC-AUC and the paper's
//! Average Precision (macro-averaged per-class precision), plus accuracy
//! and confusion matrices.

use amdgcnn_tensor::Matrix;

/// Binary ROC-AUC from scores via the rank statistic (tie-aware: tied
/// scores receive their average rank). Returns 0.5 when either class is
/// absent.
pub fn roc_auc(scores: &[f32], positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), positive.len(), "roc_auc: length mismatch");
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks over tie groups, accumulate positive ranks.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based: items i..=j share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if positive[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

/// One-vs-rest AUC for a single class: the score is the predicted
/// probability of `class`, positives are samples labeled `class`.
pub fn auc_one_vs_rest(probs: &Matrix, labels: &[usize], class: usize) -> f64 {
    assert_eq!(probs.rows(), labels.len(), "auc: row/label mismatch");
    let scores: Vec<f32> = (0..probs.rows()).map(|r| probs.get(r, class)).collect();
    let positive: Vec<bool> = labels.iter().map(|&l| l == class).collect();
    roc_auc(&scores, &positive)
}

/// Macro AUC: mean one-vs-rest AUC over every class present in `labels`.
/// (The paper picks one random class as positive; averaging over all of
/// them is the deterministic, lower-variance equivalent.)
pub fn macro_auc(probs: &Matrix, labels: &[usize]) -> f64 {
    let mut present: Vec<usize> = labels.to_vec();
    present.sort_unstable();
    present.dedup();
    if present.is_empty() {
        return 0.5;
    }
    let sum: f64 = present
        .iter()
        .map(|&c| auc_one_vs_rest(probs, labels, c))
        .sum();
    sum / present.len() as f64
}

/// Argmax predictions per row.
pub fn argmax_predictions(probs: &Matrix) -> Vec<usize> {
    (0..probs.rows()).map(|r| probs.argmax_row(r)).collect()
}

/// Confusion matrix `[true class][predicted class]`.
pub fn confusion_matrix(preds: &[usize], labels: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(preds.len(), labels.len());
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in preds.iter().zip(labels.iter()) {
        m[l][p] += 1;
    }
    m
}

/// The paper's Average Precision (§V-A): per-class precision
/// `TP/(TP+FP)` treating that class as positive, averaged over classes
/// that occur in the labels. Classes never predicted contribute 0
/// precision.
pub fn average_precision(preds: &[usize], labels: &[usize], num_classes: usize) -> f64 {
    let cm = confusion_matrix(preds, labels, num_classes);
    let mut total = 0.0f64;
    let mut counted = 0usize;
    for (c, row) in cm.iter().enumerate() {
        let support: usize = row.iter().sum();
        if support == 0 {
            continue; // class absent from the labels
        }
        counted += 1;
        let tp = row[c];
        let predicted: usize = cm.iter().map(|l| l[c]).sum();
        if predicted > 0 {
            total += tp as f64 / predicted as f64;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Plain accuracy.
pub fn accuracy(preds: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(preds.len(), labels.len());
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / preds.len() as f64
}

/// ROC curve points `(fpr, tpr)` sorted by threshold (descending scores),
/// suitable for plotting; includes the (0,0) and (1,1) endpoints.
pub fn roc_curve(scores: &[f32], positive: &[bool]) -> Vec<(f64, f64)> {
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut pts = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        for &idx in &order[i..=j] {
            if positive[idx] {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        pts.push((
            if n_neg == 0 {
                0.0
            } else {
                fp as f64 / n_neg as f64
            },
            if n_pos == 0 {
                0.0
            } else {
                tp as f64 / n_pos as f64
            },
        ));
        i = j + 1;
    }
    if *pts.last().expect("nonempty") != (1.0, 1.0) {
        pts.push((1.0, 1.0));
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let pos = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &pos), 1.0);
        assert_eq!(roc_auc(&scores, &[false, false, true, true]), 0.0);
    }

    #[test]
    fn interleaving_counts_pairwise_wins() {
        // Positives {0.1, 0.3} vs negatives {0.2, 0.4}: only the (0.3, 0.2)
        // pair is won → AUC = 1/4.
        let scores = [0.1, 0.2, 0.3, 0.4];
        let pos = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &pos), 0.25);
        // Perfect alternation of equal-scored groups is symmetric.
        let scores = [0.1, 0.1, 0.4, 0.4];
        let pos = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &pos), 0.5);
    }

    #[test]
    fn ties_get_average_rank() {
        // All scores equal → AUC must be exactly 0.5 regardless of labels.
        let scores = [0.5; 6];
        let pos = [true, true, false, false, true, false];
        assert_eq!(roc_auc(&scores, &pos), 0.5);
    }

    #[test]
    fn hand_computed_auc() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6),
        // (0.8>0.2), (0.4<0.6 lose), (0.4>0.2) → 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let pos = [true, true, false, false];
        assert!((roc_auc(&scores, &pos) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_class_returns_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn one_vs_rest_uses_class_column() {
        let probs = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.7, 0.3]);
        let labels = [0usize, 1, 0];
        assert_eq!(auc_one_vs_rest(&probs, &labels, 0), 1.0);
        assert_eq!(auc_one_vs_rest(&probs, &labels, 1), 1.0);
    }

    #[test]
    fn macro_auc_averages_present_classes() {
        // Class 2 absent: macro over classes 0 and 1 only.
        let probs = Matrix::from_vec(
            4,
            3,
            vec![
                0.8, 0.1, 0.1, //
                0.1, 0.8, 0.1, //
                0.7, 0.2, 0.1, //
                0.2, 0.7, 0.1,
            ],
        );
        let labels = [0usize, 1, 0, 1];
        assert_eq!(macro_auc(&probs, &labels), 1.0);
    }

    #[test]
    fn confusion_and_accuracy() {
        let preds = [0usize, 1, 1, 2, 0];
        let labels = [0usize, 1, 2, 2, 1];
        let cm = confusion_matrix(&preds, &labels, 3);
        assert_eq!(cm[0][0], 1);
        assert_eq!(cm[1][1], 1);
        assert_eq!(cm[2][1], 1);
        assert_eq!(cm[2][2], 1);
        assert_eq!(cm[1][0], 1);
        assert!((accuracy(&preds, &labels) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn average_precision_hand_example() {
        // Class 0: predicted {0,0} with one TP → precision 1/2.
        // Class 1: predicted {1} with one TP → precision 1.
        let preds = [0usize, 0, 1];
        let labels = [0usize, 1, 1];
        let ap = average_precision(&preds, &labels, 2);
        assert!((ap - 0.75).abs() < 1e-12);
    }

    #[test]
    fn average_precision_ignores_absent_classes() {
        let preds = [0usize, 0];
        let labels = [0usize, 0];
        assert_eq!(average_precision(&preds, &labels, 5), 1.0);
    }

    #[test]
    fn never_predicted_class_scores_zero_precision() {
        // Class 1 occurs but is never predicted → contributes 0.
        let preds = [0usize, 0];
        let labels = [0usize, 1];
        assert!((average_precision(&preds, &labels, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "roc_auc: length mismatch")]
    fn roc_auc_length_mismatch_panics() {
        let _ = roc_auc(&[0.1, 0.2, 0.3], &[true, false]);
    }

    #[test]
    #[should_panic(expected = "auc: row/label mismatch")]
    fn one_vs_rest_row_label_mismatch_panics() {
        let probs = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let _ = auc_one_vs_rest(&probs, &[0usize, 1, 0], 0);
    }

    #[test]
    #[should_panic]
    fn confusion_matrix_length_mismatch_panics() {
        let _ = confusion_matrix(&[0usize, 1], &[0usize], 2);
    }

    #[test]
    #[should_panic]
    fn average_precision_length_mismatch_panics() {
        // The macro-averaged precision path goes through the confusion
        // matrix, which rejects mismatched inputs.
        let _ = average_precision(&[0usize, 1, 0], &[0usize, 1], 2);
    }

    #[test]
    fn all_tied_scores_give_half_everywhere() {
        // Every score identical: no ranking information, AUC is exactly
        // 0.5 through the single-class, one-vs-rest, and macro paths.
        let probs = Matrix::from_vec(4, 2, vec![0.5; 8]);
        let labels = [0usize, 1, 0, 1];
        assert_eq!(auc_one_vs_rest(&probs, &labels, 0), 0.5);
        assert_eq!(auc_one_vs_rest(&probs, &labels, 1), 0.5);
        assert_eq!(macro_auc(&probs, &labels), 0.5);
    }

    #[test]
    fn single_class_input_returns_half() {
        // Only one class present: one-vs-rest has no negatives, so every
        // per-class AUC degenerates to 0.5 and so does the macro average.
        let probs = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.8, 0.2, 0.7, 0.3]);
        let labels = [0usize, 0, 0];
        assert_eq!(auc_one_vs_rest(&probs, &labels, 0), 0.5);
        assert_eq!(macro_auc(&probs, &labels), 0.5);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let probs = Matrix::zeros(0, 2);
        assert_eq!(macro_auc(&probs, &[]), 0.5);
        assert_eq!(average_precision(&[], &[], 2), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn roc_curve_endpoints_and_monotonicity() {
        let scores = [0.9, 0.7, 0.6, 0.3, 0.2];
        let pos = [true, false, true, false, true];
        let pts = roc_curve(&scores, &pos);
        assert_eq!(*pts.first().expect("first"), (0.0, 0.0));
        assert_eq!(*pts.last().expect("last"), (1.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1, "ROC must be monotone");
        }
    }

    #[test]
    fn auc_matches_trapezoid_under_roc_curve() {
        let scores = [0.9, 0.8, 0.75, 0.5, 0.4, 0.3, 0.1];
        let pos = [true, false, true, true, false, true, false];
        let pts = roc_curve(&scores, &pos);
        let mut area = 0.0;
        for w in pts.windows(2) {
            area += (w[1].0 - w[0].0) * (w[1].1 + w[0].1) / 2.0;
        }
        assert!((area - roc_auc(&scores, &pos)).abs() < 1e-9);
    }
}
